"""Tests for evaluation backends: spec round-trips and serial/parallel parity."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.backends import EvaluatorSpec, ProcessPoolBackend, SerialBackend
from repro.engine.engine import SearchEngine
from repro.engine.strategies import EvolutionaryStrategy
from repro.errors import ConfigurationError
from repro.search.evaluation import ConfigEvaluator
from repro.search.objectives import paper_objective


class TestEvaluatorSpec:
    def test_round_trip_builds_equivalent_evaluator(self, tiny_config_evaluator, tiny_space):
        spec = EvaluatorSpec.from_evaluator(tiny_config_evaluator)
        rebuilt = spec.build()
        config = tiny_space.sample(0)
        assert rebuilt.content_digest(config) == tiny_config_evaluator.content_digest(config)
        original = tiny_config_evaluator.evaluate(config)
        copy = rebuilt.evaluate(config)
        assert copy.latency_ms == pytest.approx(original.latency_ms)
        assert copy.energy_mj == pytest.approx(original.energy_mj)
        assert copy.accuracy == pytest.approx(original.accuracy)

    def test_spec_is_picklable(self, tiny_config_evaluator, tiny_space):
        spec = EvaluatorSpec.from_evaluator(tiny_config_evaluator)
        clone = pickle.loads(pickle.dumps(spec))
        config = tiny_space.sample(1)
        assert clone.build().content_digest(config) == tiny_config_evaluator.content_digest(config)


class TestSerialBackend:
    def test_preserves_order(self, tiny_config_evaluator, tiny_space):
        configs = [tiny_space.sample(i) for i in range(5)]
        backend = SerialBackend(tiny_config_evaluator)
        results = backend.evaluate(configs)
        for config, result in zip(configs, results):
            assert result.config is config

    def test_empty_batch(self, tiny_config_evaluator):
        assert SerialBackend(tiny_config_evaluator).evaluate([]) == []


class TestProcessPoolBackend:
    def test_invalid_arguments_rejected(self, tiny_config_evaluator):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(tiny_config_evaluator, n_workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(tiny_config_evaluator, chunksize=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend("not an evaluator")

    def test_empty_batch_without_pool(self, tiny_config_evaluator):
        backend = ProcessPoolBackend(tiny_config_evaluator, n_workers=2)
        assert backend.evaluate([]) == []
        assert backend._executor is None  # no pool was spun up
        backend.close()

    def test_matches_serial_results(self, tiny_config_evaluator, tiny_space):
        configs = [tiny_space.sample(i) for i in range(6)]
        serial = SerialBackend(tiny_config_evaluator).evaluate(configs)
        with ProcessPoolBackend(tiny_config_evaluator, n_workers=2) as backend:
            parallel = backend.evaluate(configs)
        assert len(parallel) == len(serial)
        for ours, theirs in zip(parallel, serial):
            assert ours.latency_ms == theirs.latency_ms
            assert ours.energy_mj == theirs.energy_mj
            assert ours.accuracy == theirs.accuracy

    def test_close_is_idempotent(self, tiny_config_evaluator, tiny_space):
        backend = ProcessPoolBackend(tiny_config_evaluator, n_workers=2)
        backend.evaluate([tiny_space.sample(0)])
        backend.close()
        backend.close()


class TestEngineBatchAccounting:
    def test_intra_batch_duplicates_count_once(self, tiny_config_evaluator, tiny_space):
        """[c, c, c] on a cold cache is exactly one miss and two hits."""
        config = tiny_space.sample(0)
        engine = SearchEngine(evaluator=tiny_config_evaluator)
        results = engine.evaluate_batch([config, config, config])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert engine.cache.stats.misses == 1
        assert engine.cache.stats.hits == 2

    def test_warm_batch_is_all_hits(self, tiny_config_evaluator, tiny_space):
        configs = [tiny_space.sample(i) for i in range(4)]
        engine = SearchEngine(evaluator=tiny_config_evaluator)
        engine.evaluate_batch(configs)
        snapshot = engine.cache.stats.snapshot()
        engine.evaluate_batch(configs)
        assert engine.cache.stats.window_hit_rate(snapshot) == 1.0


class TestSeedDeterminism:
    """Serial and process backends must produce identical search results."""

    def _run(self, network, platform, backend_factory):
        evaluator = ConfigEvaluator(network=network, platform=platform, seed=0)
        from repro.search.space import SearchSpace

        space = SearchSpace(network=network, platform=platform)
        strategy = EvolutionaryStrategy(
            space=space, population_size=8, generations=3, seed=0
        )
        backend = backend_factory(evaluator)
        try:
            engine = SearchEngine(evaluator=evaluator, backend=backend)
            return engine.run(strategy), evaluator
        finally:
            backend.close()

    def test_serial_and_process_find_identical_best(self, tiny_network, platform):
        serial_result, serial_eval = self._run(
            tiny_network, platform, SerialBackend
        )
        process_result, process_eval = self._run(
            tiny_network,
            platform,
            lambda evaluator: ProcessPoolBackend(evaluator, n_workers=2),
        )
        assert paper_objective(process_result.best) == paper_objective(serial_result.best)
        assert process_eval.content_digest(process_result.best.config) == serial_eval.content_digest(
            serial_result.best.config
        )
        assert process_result.best.latency_ms == serial_result.best.latency_ms
        assert process_result.best.energy_mj == serial_result.best.energy_mj
        assert process_result.num_evaluations == serial_result.num_evaluations
        assert len(process_result.pareto) == len(serial_result.pareto)
        assert [s.best_objective for s in process_result.generations] == [
            s.best_objective for s in serial_result.generations
        ]
