"""Tests for ask/tell strategies, NSGA-II front machinery and engine wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.engine import SearchEngine
from repro.engine.nsga import (
    NSGA2Strategy,
    crowding_distance,
    non_dominated_sort,
    objective_matrix,
)
from repro.engine.strategies import EvolutionaryStrategy, RandomStrategy
from repro.errors import ConfigurationError, SearchError
from repro.search.evolutionary import EvolutionarySearch
from repro.search.objectives import paper_objective
from repro.search.pareto import pareto_front


class TestNonDominatedSort:
    def test_first_front_matches_pareto_front(self, tiny_config_evaluator, tiny_space):
        evaluated = [tiny_config_evaluator.evaluate(tiny_space.sample(i)) for i in range(12)]
        # Deduplicate by content: pareto_front compares object identities.
        unique = list({tiny_config_evaluator.content_digest(e.config): e for e in evaluated}.values())
        fronts = non_dominated_sort(objective_matrix(unique))
        engine_front = {id(unique[i]) for i in fronts[0]}
        seed_front = {id(item) for item in pareto_front(unique)}
        assert engine_front == seed_front

    def test_fronts_partition_everything(self):
        values = np.array([[1.0, 2.0], [2.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        fronts = non_dominated_sort(values)
        flattened = sorted(i for front in fronts for i in front)
        assert flattened == [0, 1, 2, 3]
        assert fronts[0] == [0, 1]
        assert fronts[1] == [2]
        assert fronts[2] == [3]

    def test_single_candidate(self):
        assert non_dominated_sort(np.array([[1.0, 1.0]])) == [[0]]


class TestCrowdingDistance:
    def test_boundaries_are_infinite(self):
        values = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distance = crowding_distance(values)
        assert np.isinf(distance[0])
        assert np.isinf(distance[3])
        assert np.isfinite(distance[1])
        assert np.isfinite(distance[2])

    def test_tiny_fronts_all_infinite(self):
        assert np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))).all()

    def test_degenerate_objective_is_ignored(self):
        values = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        distance = crowding_distance(values)
        assert np.isfinite(distance[1])


class TestNSGA2Strategy:
    def test_search_produces_valid_result(self, tiny_config_evaluator, tiny_space):
        strategy = NSGA2Strategy(space=tiny_space, population_size=8, generations=4, seed=0)
        result = SearchEngine(evaluator=tiny_config_evaluator).run(strategy)
        assert len(result.generations) == 4
        assert 0 < result.num_evaluations <= 4 * 8
        assert result.pareto
        assert result.best in result.history
        # The result's front is internally consistent with the seed's Pareto
        # definition over the deduplicated history.
        recomputed = pareto_front(list(result.feasible or result.history))
        assert {id(e) for e in result.pareto} == {id(e) for e in recomputed}

    def test_deterministic_for_seed(self, tiny_config_evaluator, tiny_space):
        def run():
            strategy = NSGA2Strategy(space=tiny_space, population_size=8, generations=3, seed=5)
            return SearchEngine(evaluator=tiny_config_evaluator).run(strategy)

        first, second = run(), run()
        assert paper_objective(first.best) == paper_objective(second.best)
        assert first.num_evaluations == second.num_evaluations

    def test_invalid_hyperparameters_rejected(self, tiny_space):
        with pytest.raises(SearchError):
            NSGA2Strategy(space=tiny_space, population_size=1)
        with pytest.raises(SearchError):
            NSGA2Strategy(space=tiny_space, generations=0)
        with pytest.raises(SearchError):
            NSGA2Strategy(space=tiny_space, mutation_rate=1.5)


class TestRandomStrategy:
    def test_budget_and_result(self, tiny_config_evaluator, tiny_space):
        strategy = RandomStrategy(space=tiny_space, population_size=10, generations=3, seed=0)
        result = SearchEngine(evaluator=tiny_config_evaluator).run(strategy)
        assert len(result.generations) == 3
        assert result.num_evaluations <= 30
        assert result.best in result.history

    def test_invalid_budget_rejected(self, tiny_space):
        with pytest.raises(SearchError):
            RandomStrategy(space=tiny_space, population_size=1)


class TestEvolutionaryStrategyEquivalence:
    def test_matches_legacy_evolutionary_search(self, tiny_config_evaluator, tiny_space):
        """The strategy port and the facade consume RNG identically."""
        legacy = EvolutionarySearch(
            space=tiny_space,
            evaluator=tiny_config_evaluator,
            population_size=10,
            generations=4,
            seed=3,
        ).run()
        strategy = EvolutionaryStrategy(
            space=tiny_space, population_size=10, generations=4, seed=3
        )
        engine_result = SearchEngine(evaluator=tiny_config_evaluator).run(strategy)
        assert paper_objective(engine_result.best) == paper_objective(legacy.best)
        assert engine_result.num_evaluations == legacy.num_evaluations
        assert [s.best_objective for s in engine_result.generations] == [
            s.best_objective for s in legacy.generations
        ]

    def test_cache_hits_recorded_for_elites(self, tiny_config_evaluator, tiny_space):
        strategy = EvolutionaryStrategy(
            space=tiny_space, population_size=10, generations=5, seed=0
        )
        result = SearchEngine(evaluator=tiny_config_evaluator).run(strategy)
        assert result.generations[0].cache_hit_rate == 0.0
        # Elites carried over are cache hits from generation 1 onwards.
        assert any(s.cache_hit_rate > 0.0 for s in result.generations[1:])
        assert all(s.wall_clock_s >= 0.0 for s in result.generations)


class TestFrameworkStrategyWiring:
    @pytest.fixture()
    def framework(self, tiny_network, platform):
        from repro.core.framework import MapAndConquer

        return MapAndConquer(tiny_network, platform, seed=0)

    def test_named_strategies(self, framework):
        for name in ("evolutionary", "nsga2", "random"):
            result = framework.search(
                generations=2, population_size=6, seed=0, strategy=name
            )
            assert result.num_evaluations > 0

    def test_unknown_strategy_rejected(self, framework):
        with pytest.raises(ConfigurationError):
            framework.search(generations=2, population_size=6, strategy="annealing")

    def test_unknown_backend_rejected(self, framework):
        with pytest.raises(ConfigurationError):
            framework.search(generations=2, population_size=6, backend="threads")

    def test_backend_instance_conflicts_with_n_workers(self, framework):
        from repro.engine.backends import SerialBackend

        with pytest.raises(ConfigurationError):
            framework.search(
                generations=2,
                population_size=6,
                backend=SerialBackend(framework.evaluator),
                n_workers=2,
            )

    def test_strategy_instance_conflicts_with_loop_parameters(self, framework):
        strategy = RandomStrategy(space=framework.space, population_size=6, generations=2, seed=0)
        with pytest.raises(ConfigurationError, match="generations"):
            framework.search(generations=5, strategy=strategy)
        result = framework.search(strategy=strategy)
        assert len(result.generations) == 2

    def test_strategy_instance_objective_drives_result_ranking(self, framework):
        """The engine ranks with the instance strategy's own objective."""
        from repro.search.objectives import energy_oriented_objective

        strategy = EvolutionaryStrategy(
            space=framework.space,
            objective=energy_oriented_objective,
            population_size=8,
            generations=3,
            seed=0,
        )
        result = framework.search(strategy=strategy)
        pool = result.feasible if result.feasible else result.history
        assert energy_oriented_objective(result.best) == pytest.approx(
            min(energy_oriented_objective(item) for item in pool)
        )

    def test_zero_workers_rejected(self, framework):
        with pytest.raises(ConfigurationError):
            framework.search(generations=2, population_size=6, n_workers=0)

    def test_cache_accepts_path_objects(self, framework, tmp_path):
        result = framework.search(
            generations=2, population_size=6, seed=0, cache=tmp_path / "cache.jsonl"
        )
        assert (tmp_path / "cache.jsonl").exists()
        assert result.num_evaluations > 0


class TestInitialPopulation:
    """Warm-start seeding through every strategy (campaign transfer path)."""

    @pytest.fixture()
    def seeds(self, tiny_space):
        return [tiny_space.sample(i) for i in range(3)]

    @pytest.mark.parametrize(
        "strategy_cls", [EvolutionaryStrategy, RandomStrategy, NSGA2Strategy]
    )
    def test_seeds_lead_the_first_generation(self, tiny_space, seeds, strategy_cls):
        strategy = strategy_cls(
            space=tiny_space,
            population_size=6,
            generations=2,
            seed=0,
            initial_population=seeds,
        )
        first = strategy.ask()
        assert len(first) == 6
        assert first[: len(seeds)] == seeds

    @staticmethod
    def _same_config(first, second) -> bool:
        return (
            first.unit_names == second.unit_names
            and first.dvfs_indices == second.dvfs_indices
            and np.array_equal(first.partition.values, second.partition.values)
            and np.array_equal(first.indicator.values, second.indicator.values)
        )

    @pytest.mark.parametrize(
        "strategy_cls", [EvolutionaryStrategy, RandomStrategy, NSGA2Strategy]
    )
    def test_none_keeps_cold_start_bit_for_bit(self, tiny_space, strategy_cls):
        cold = strategy_cls(space=tiny_space, population_size=6, generations=1, seed=5)
        explicit = strategy_cls(
            space=tiny_space,
            population_size=6,
            generations=1,
            seed=5,
            initial_population=None,
        )
        cold_population = cold.ask()
        explicit_population = explicit.ask()
        assert len(cold_population) == len(explicit_population) == 6
        for ours, theirs in zip(cold_population, explicit_population):
            assert self._same_config(ours, theirs)

    def test_full_seed_population_samples_nothing(self, tiny_space):
        seeds = [tiny_space.sample(i) for i in range(4)]
        strategy = RandomStrategy(
            space=tiny_space,
            population_size=4,
            generations=1,
            seed=0,
            initial_population=seeds,
        )
        assert strategy.ask() == seeds

    def test_too_many_seeds_rejected(self, tiny_space, seeds):
        with pytest.raises(SearchError, match="initial_population"):
            EvolutionaryStrategy(
                space=tiny_space,
                population_size=2,
                generations=1,
                initial_population=seeds,
            )

    def test_non_config_seeds_rejected(self, tiny_space):
        with pytest.raises(SearchError, match="MappingConfig"):
            RandomStrategy(
                space=tiny_space,
                population_size=4,
                generations=1,
                initial_population=["not a config"],
            )

    def test_facade_threads_seeds_and_guards_instances(self, tiny_network, platform):
        from repro.core.framework import MapAndConquer

        framework = MapAndConquer(tiny_network, platform, seed=0)
        seeds = [framework.space.sample(i) for i in range(2)]
        result = framework.search(
            generations=2, population_size=6, seed=0, initial_population=seeds
        )
        digests = {
            framework.evaluator.content_digest(item.config) for item in result.history
        }
        for seed_config in seeds:
            assert framework.evaluator.content_digest(seed_config) in digests
        strategy = RandomStrategy(space=framework.space, population_size=6, generations=1)
        with pytest.raises(ConfigurationError, match="initial_population"):
            framework.search(strategy=strategy, initial_population=seeds)


class TestSeedRegression:
    """Pin the default search trajectory to the seed repository's numbers.

    These values were captured from the pre-engine implementation
    (``EvolutionarySearch.run`` evaluating inline); the engine-based default
    path must keep reproducing them bit for bit.
    """

    def test_visformer_seed0_trajectory(self, visformer_net, platform):
        from repro.core.framework import MapAndConquer

        framework = MapAndConquer(visformer_net, platform, seed=0)
        result = framework.search(generations=8, population_size=12, seed=0)
        assert paper_objective(result.best) == pytest.approx(4718194952.60551, rel=1e-9)
        assert result.best.config.describe() == (
            "3 stages [S1->gpu@3, S2->dla0@3, S3->dla1@1], reuse=61%"
        )
        assert len(result.pareto) == 25
        assert result.num_evaluations == 69
        assert result.best.latency_ms == pytest.approx(10.946672717022466, rel=1e-12)
        assert result.generations[0].best_objective == pytest.approx(
            8225183940.229785, rel=1e-9
        )
