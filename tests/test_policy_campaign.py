"""Tests for the policy axis of serving campaigns and measured objectives.

Covers the plumbing the golden file cannot attribute: the ``policies=``
validation surface, the per-cell :class:`PolicyOutcome` semantics (static
outcomes reuse the winner's metrics byte-for-byte; adaptive outcomes come
from real re-simulations), the checkpoint interplay (default-tagged
fingerprints keep pre-policy checkpoints restorable, a changed policy set
re-runs exactly the affected cells), old-pickle compatibility of cells
without the ``policy_outcomes`` field, :func:`build_policy`,
:meth:`WorkloadFamily.peak_member`, ``measured_serving_objectives`` and
``select_measured_serving``.
"""

from __future__ import annotations

import pytest

from repro.campaign import PolicyOutcome, run_serving_campaign
from repro.campaign.serving_runner import MemberOutcome, ServingCellResult
from repro.core.framework import MapAndConquer
from repro.core.report import policy_adaptivity_table, traffic_ranking_summary
from repro.errors import ConfigurationError, SearchError
from repro.search.objectives import (
    MeasuredWaitExtractor,
    measured_serving_objectives,
)
from repro.search.pareto import select_measured_serving
from repro.serving.families import (
    OnOffBurstFamily,
    SteadyPoissonFamily,
    member_traffic_seed,
)
from repro.serving.policies import (
    POLICY_KINDS,
    AdaptiveSwitchPolicy,
    Deployment,
    DvfsGovernorPolicy,
    StaticPolicy,
    build_policy,
)
from repro.serving.result_cache import ServingResultCache
from repro.soc.presets import get_platform

PLATFORMS = ("jetson-agx-xavier", "mobile-big-little")
FAMILY = SteadyPoissonFamily(rate_rps=40.0)
BUDGET = dict(
    members_per_family=2,
    duration_ms=600.0,
    generations=2,
    population_size=6,
    seed=3,
)


def _run(tiny_network, **overrides):
    options = {**BUDGET, **overrides}
    families = options.pop("families", (FAMILY,))
    return run_serving_campaign(tiny_network, PLATFORMS, families=families, **options)


class TestPolicyValidation:
    def test_empty_policies_raise(self, tiny_network):
        with pytest.raises(ConfigurationError, match="at least one policy kind"):
            _run(tiny_network, policies=())

    def test_unknown_policy_kind_raises(self, tiny_network):
        with pytest.raises(ConfigurationError, match="unknown policy kinds"):
            _run(tiny_network, policies=("static", "overclocker"))

    def test_duplicate_policy_kinds_raise(self, tiny_network):
        with pytest.raises(ConfigurationError, match="unique"):
            _run(tiny_network, policies=("static", "static"))

    def test_missing_static_baseline_raises(self, tiny_network):
        with pytest.raises(ConfigurationError, match="must include 'static'"):
            _run(tiny_network, policies=("dvfs-governor",))


@pytest.fixture(scope="module")
def policy_campaign(tiny_network):
    return _run(tiny_network, policies=POLICY_KINDS)


@pytest.fixture(scope="module")
def static_campaign(tiny_network):
    return _run(tiny_network)


class TestPolicyAxis:
    def test_result_records_the_swept_policies(self, policy_campaign):
        assert policy_campaign.policies == POLICY_KINDS

    def test_every_cell_replays_every_policy_per_member(self, policy_campaign):
        for cell in policy_campaign.cells:
            assert cell.policies == POLICY_KINDS
            assert len(cell.policy_outcomes) == len(POLICY_KINDS) * len(cell.members)
            assert all(
                isinstance(outcome, PolicyOutcome)
                for outcome in cell.policy_outcomes
            )

    def test_static_outcome_reuses_the_winner_metrics_byte_for_byte(
        self, policy_campaign
    ):
        """The static policy IS the ranked winner — no re-simulation, so the
        metrics must be the identical object state, not a near-equal rerun."""
        for cell in policy_campaign.cells:
            statics = [o for o in cell.policy_outcomes if o.policy == "static"]
            assert len(statics) == len(cell.members)
            for member, outcome in zip(cell.members, statics):
                assert outcome.metrics == member.metrics
                assert outcome.deployment == member.winner

    def test_adaptive_outcomes_are_real_resimulations(self, policy_campaign):
        for cell in policy_campaign.cells:
            for outcome in cell.policy_outcomes:
                if outcome.policy == "static":
                    continue
                assert outcome.metrics.policy != "static"
                assert outcome.served_p99_per_joule > 0.0

    def test_policy_score_and_mean(self, policy_campaign):
        cell = policy_campaign.cells[0]
        for policy in POLICY_KINDS:
            assert cell.policy_score(policy) > 0.0
            assert cell.policy_mean(policy, "p99_latency_ms") > 0.0
        with pytest.raises(ConfigurationError, match="replayed"):
            cell.policy_score("never-swept")

    def test_policy_matrix_covers_the_full_grid(self, policy_campaign):
        matrix = policy_campaign.policy_matrix()
        assert set(matrix) == {
            (platform, FAMILY.name, policy)
            for platform in PLATFORMS
            for policy in POLICY_KINDS
        }
        assert all(score > 0.0 for score in matrix.values())

    def test_adaptivity_wins_lists_only_beating_cells(self, policy_campaign):
        for policy in ("switcher", "dvfs-governor"):
            for platform, family in policy_campaign.adaptivity_wins(policy):
                cell = policy_campaign.cell(platform, family)
                assert cell.policy_score(policy) > cell.policy_score("static")

    def test_summary_gains_the_adaptivity_section(self, policy_campaign):
        summary = traffic_ranking_summary(policy_campaign)
        assert "policy adaptivity" in summary
        assert policy_adaptivity_table(policy_campaign) in summary


class TestStaticOnlyCampaign:
    def test_default_campaign_has_no_policy_outcomes(self, static_campaign):
        assert static_campaign.policies == ("static",)
        for cell in static_campaign.cells:
            assert cell.policy_outcomes == ()
            assert cell.policies == ()

    def test_default_summary_stays_free_of_the_adaptivity_section(
        self, static_campaign
    ):
        assert "policy adaptivity" not in traffic_ranking_summary(static_campaign)

    def test_policy_matrix_requires_a_policy_sweep(self, static_campaign):
        with pytest.raises(ConfigurationError, match="replayed"):
            static_campaign.cells[0].policy_score("static")


class TestCheckpointInterplay:
    def _calls(self, monkeypatch):
        calls = []
        import repro.campaign.serving_runner as serving_runner

        original = serving_runner._run_serving_cell
        monkeypatch.setattr(
            serving_runner,
            "_run_serving_cell",
            lambda task: calls.append(
                (task.platform.name, tuple(getattr(task, "policies", ("static",))))
            )
            or original(task),
        )
        return calls

    def test_explicit_static_matches_the_default_fingerprint(
        self, tiny_network, tmp_path, monkeypatch
    ):
        """``policies=("static",)`` is the default-tagged case: it must
        restore cells checkpointed by a pre-policy (default) run."""
        _run(tiny_network, checkpoint_dir=tmp_path)
        calls = self._calls(monkeypatch)
        _run(tiny_network, checkpoint_dir=tmp_path, policies=("static",))
        assert calls == []

    def test_changed_policy_set_reruns_every_affected_cell(
        self, tiny_network, tmp_path, monkeypatch
    ):
        first = _run(tiny_network, checkpoint_dir=tmp_path)
        calls = self._calls(monkeypatch)
        swept = _run(tiny_network, checkpoint_dir=tmp_path, policies=POLICY_KINDS)
        assert sorted(calls) == [
            (platform, POLICY_KINDS) for platform in sorted(PLATFORMS)
        ]
        # The re-run is a superset: same winners, plus the policy outcomes.
        for cell in swept.cells:
            assert cell.members == first.cell(cell.platform_name, cell.family_name).members
            assert cell.policy_outcomes != ()

    def test_same_policy_set_restores_from_checkpoint(
        self, tiny_network, tmp_path, monkeypatch
    ):
        first = _run(tiny_network, checkpoint_dir=tmp_path, policies=POLICY_KINDS)
        calls = self._calls(monkeypatch)
        resumed = _run(tiny_network, checkpoint_dir=tmp_path, policies=POLICY_KINDS)
        assert calls == []
        assert traffic_ranking_summary(resumed) == traffic_ranking_summary(first)


def _metrics_stub():
    from repro.serving.metrics import ServingMetrics

    return ServingMetrics(
        policy="static",
        num_requests=5,
        duration_ms=100.0,
        throughput_rps=50.0,
        mean_latency_ms=2.0,
        p50_latency_ms=2.0,
        p95_latency_ms=3.0,
        p99_latency_ms=4.0,
        max_latency_ms=5.0,
        mean_queueing_ms=0.5,
        deadline_miss_rate=0.0,
        accuracy=0.9,
        mean_stages=1.0,
        total_energy_mj=10.0,
        energy_per_request_mj=2.0,
        mean_in_flight=0.2,
        peak_in_flight=1,
        utilisation={"gpu": 0.1},
    )


class TestOldPickleCompatibility:
    def test_cells_without_the_field_read_as_policy_free(self):
        """Pickle restores ``__dict__`` directly, skipping dataclass
        defaults — a pre-policy cell simply lacks ``policy_outcomes`` and
        every reader must treat that as an empty sweep."""
        member = MemberOutcome(
            label="m0", traffic_seed=1, winner="pareto-1", metrics=_metrics_stub()
        )
        # Build the instance the way pickle does: allocate and restore the
        # old __dict__, never calling __init__ — the policy_outcomes field
        # is simply absent, exactly as in a pre-policy checkpoint payload.
        restored = object.__new__(ServingCellResult)
        restored.__dict__.update(
            platform_name="jetson-agx-xavier",
            family_name="steady-poisson",
            members=(member,),
        )
        assert "policy_outcomes" not in restored.__dict__
        assert restored.policy_outcomes == ()  # the class default fills in
        assert restored.policies == ()
        with pytest.raises(ConfigurationError, match="replayed"):
            restored.policy_score("static")
        assert restored.p99_latency_ms == member.metrics.p99_latency_ms


def _deployment(name: str, service_ms: float, energy_mj: float) -> Deployment:
    return Deployment(
        name=name,
        unit_names=("gpu",),
        service_ms=(service_ms,),
        energy_mj=(energy_mj,),
        stage_accuracies=(0.95,),
        dvfs_scales=(0.8,),
    )


class TestBuildPolicy:
    def test_static_serves_the_winner(self):
        winner = _deployment("w", 4.0, 6.0)
        policy = build_policy("static", winner, get_platform("jetson-agx-xavier"))
        assert isinstance(policy, StaticPolicy)
        assert policy.deployment is winner

    def test_switcher_picks_calm_and_surge_from_the_front(self):
        frugal = _deployment("frugal", 8.0, 1.0)
        fast = _deployment("fast", 1.0, 9.0)
        middle = _deployment("middle", 4.0, 4.0)
        policy = build_policy(
            "switcher",
            middle,
            get_platform("jetson-agx-xavier"),
            front=(frugal, fast, middle),
        )
        assert isinstance(policy, AdaptiveSwitchPolicy)
        assert policy.calm.name == "frugal"
        assert policy.surge.name == "fast"

    def test_switcher_with_no_front_degenerates_to_the_winner(self):
        winner = _deployment("w", 4.0, 6.0)
        policy = build_policy("switcher", winner, get_platform("jetson-agx-xavier"))
        assert policy.calm is winner and policy.surge is winner

    def test_governor_walks_the_winner_ladder(self):
        winner = _deployment("w", 4.0, 6.0)
        policy = build_policy(
            "dvfs-governor", winner, get_platform("jetson-agx-xavier")
        )
        assert isinstance(policy, DvfsGovernorPolicy)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError, match="unknown policy kind"):
            build_policy("turbo", _deployment("w", 4.0, 6.0), get_platform("jetson-agx-xavier"))


class TestPeakMember:
    def test_peak_member_is_deterministic_and_the_busiest(self):
        family = OnOffBurstFamily(
            burst_rps=120.0, idle_rps=5.0, burst_ms=400.0, idle_ms=600.0, jitter=0.3
        )
        index, process, traffic_seed = family.peak_member(3, 4, probe_ms=1000.0)
        again = family.peak_member(3, 4, probe_ms=1000.0)
        assert (index, traffic_seed) == (again[0], again[2])
        assert traffic_seed == member_traffic_seed(3, family.name, index)

        members = family.expand(3, 4)
        counts = [
            len(member.generate(1000.0, seed=member_traffic_seed(3, family.name, i)))
            for i, member in enumerate(members)
        ]
        assert counts[index] == max(counts)
        assert repr(process) == repr(members[index])

    def test_probe_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FAMILY.peak_member(0, 2, probe_ms=0.0)


class TestMeasuredObjectives:
    def test_set_extends_the_default_axes(self):
        objectives = measured_serving_objectives(
            FAMILY, get_platform("jetson-agx-xavier")
        )
        names = [spec.name for spec in objectives.specs]
        assert names[-1] == "measured_wait_ms"
        spec = objectives.specs[-1]
        assert spec.direction == "min"
        assert spec.transform == "log1p"
        assert isinstance(spec.extractor, MeasuredWaitExtractor)
        assert isinstance(spec.extractor.cache, ServingResultCache)

    def test_family_and_platform_are_validated(self):
        with pytest.raises(ConfigurationError, match="WorkloadFamily"):
            measured_serving_objectives("steady-poisson", get_platform("jetson-agx-xavier"))
        with pytest.raises(ConfigurationError, match="platform"):
            measured_serving_objectives(FAMILY, None)
        with pytest.raises(ConfigurationError, match="duration_ms"):
            measured_serving_objectives(
                FAMILY, get_platform("jetson-agx-xavier"), duration_ms=0.0
            )

    def test_cache_coercion(self, tmp_path):
        shared = ServingResultCache()
        objectives = measured_serving_objectives(
            FAMILY, get_platform("jetson-agx-xavier"), cache=shared
        )
        assert objectives.specs[-1].extractor.cache is shared

        path = tmp_path / "serving.jsonl"
        persistent = measured_serving_objectives(
            FAMILY, get_platform("jetson-agx-xavier"), cache=path
        )
        assert persistent.specs[-1].extractor.cache.path == path

    def test_cache_is_an_accelerator_not_an_identity(self):
        platform = get_platform("jetson-agx-xavier")
        with_cache = measured_serving_objectives(FAMILY, platform).specs[-1]
        with_other = measured_serving_objectives(
            FAMILY, platform, cache=ServingResultCache()
        ).specs[-1]
        assert "cache" not in repr(with_cache.extractor)
        assert repr(with_cache.extractor) == repr(with_other.extractor)
        assert with_cache.extractor == with_other.extractor

    def test_replay_identity_feeds_the_repr(self):
        platform = get_platform("jetson-agx-xavier")
        base = measured_serving_objectives(FAMILY, platform).specs[-1]
        longer = measured_serving_objectives(
            FAMILY, platform, duration_ms=800.0
        ).specs[-1]
        assert repr(base.extractor) != repr(longer.extractor)

    def test_extractor_simulates_once_per_deployment(self, tiny_network):
        platform = get_platform("jetson-agx-xavier")
        framework = MapAndConquer(tiny_network, platform, seed=0)
        evaluated = framework.evaluate(framework.space.sample(0))
        spec = measured_serving_objectives(FAMILY, platform).specs[-1]

        first = spec.extractor(evaluated)
        cache = spec.extractor.cache
        assert first >= 0.0
        assert cache.stats.misses == 1 and len(cache) == 1
        assert spec.extractor(evaluated) == first
        assert cache.stats.hits == 1 and len(cache) == 1
        assert cache.family(next(iter(dict(cache.items())))) == FAMILY.name


class TestSelectMeasuredServing:
    @pytest.fixture(scope="class")
    def searched(self, tiny_network):
        platform = get_platform("jetson-agx-xavier")
        framework = MapAndConquer(tiny_network, platform, seed=0)
        result = framework.search(generations=2, population_size=6, seed=0)
        return framework, platform, list(result.pareto)

    def test_pick_comes_from_the_front_and_is_stable(self, searched):
        framework, platform, front = searched
        cache = ServingResultCache()
        pick = select_measured_serving(
            front, platform, FAMILY, duration_ms=400.0, seed=0, cache=cache
        )
        assert pick in front
        assert cache.stats.misses > 0
        again = select_measured_serving(
            front, platform, FAMILY, duration_ms=400.0, seed=0, cache=cache
        )
        assert again is pick
        # The second pass re-simulated nothing.
        assert len(cache) == cache.stats.misses

    def test_facade_wrapper_agrees(self, searched):
        framework, platform, front = searched
        direct = select_measured_serving(
            front, platform, FAMILY, duration_ms=400.0, seed=0
        )
        assert framework.select_measured_serving(
            front, FAMILY, duration_ms=400.0
        ) == direct

    def test_empty_front_raises(self, searched):
        _, platform, _ = searched
        with pytest.raises(SearchError, match="empty"):
            select_measured_serving([], platform, FAMILY)
        with pytest.raises(SearchError, match="WorkloadFamily"):
            select_measured_serving(searched[2], platform, "steady-poisson")
