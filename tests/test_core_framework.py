"""Unit tests for the MapAndConquer facade and the report helpers."""

from __future__ import annotations

import pytest

from repro.core.framework import MapAndConquer
from repro.core.report import comparison_row, format_table, table2_row
from repro.errors import ConfigurationError
from repro.search.constraints import SearchConstraints


@pytest.fixture(scope="module")
def tiny_framework():
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer
    from repro.soc.platform import jetson_agx_xavier

    layers = (
        Conv2dLayer(
            name="conv1", width=16, in_width=3, kernel_size=3, stride=1,
            in_spatial=(8, 8), out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    network = NetworkGraph(
        name="tiny", layers=layers, input_shape=(3, 8, 8), num_classes=10,
        base_accuracy=0.9, family="vit",
    )
    return MapAndConquer(network, jetson_agx_xavier(), seed=0)


class TestMapAndConquer:
    def test_default_platform_is_xavier(self, tiny_framework):
        assert tiny_framework.platform.name == "jetson-agx-xavier"
        assert tiny_framework.space.num_stages == 3

    def test_sample_and_evaluate(self, tiny_framework):
        config = tiny_framework.sample(seed=1)
        evaluated = tiny_framework.evaluate(config)
        assert evaluated.latency_ms > 0
        assert evaluated.energy_mj > 0

    def test_baselines(self, tiny_framework):
        gpu = tiny_framework.baseline("gpu")
        dla = tiny_framework.baseline("dla0")
        static = tiny_framework.static_baseline()
        assert gpu.latency_ms < dla.latency_ms
        assert dla.energy_mj < gpu.energy_mj
        assert static.config.num_stages == 3

    def test_search_and_selection(self, tiny_framework):
        result = tiny_framework.search(generations=4, population_size=10)
        assert result.num_evaluations >= 10
        energy_pick = tiny_framework.select_energy_oriented(result.pareto)
        latency_pick = tiny_framework.select_latency_oriented(result.pareto)
        assert energy_pick.energy_mj <= latency_pick.energy_mj + 1e-9
        assert latency_pick.latency_ms <= energy_pick.latency_ms + 1e-9
        front = tiny_framework.pareto(result.history)
        assert front

    def test_search_with_constraints(self, tiny_framework):
        result = tiny_framework.search(
            generations=3,
            population_size=8,
            constraints=SearchConstraints(max_reuse_fraction=0.5),
        )
        assert all(item.reuse_fraction <= 0.5 + 1e-9 for item in result.feasible)

    def test_reuse_cap_in_constructor(self):
        from repro.nn.models import visformer
        framework = MapAndConquer(visformer(), max_reuse_fraction=0.5, seed=0)
        config = framework.sample(seed=0)
        assert config.reuse_fraction() <= 0.5 + 1e-9

    def test_cost_model_and_surrogate_mutually_exclusive(self):
        from repro.nn.models import visformer
        from repro.perf.layer_cost import AnalyticalCostModel

        with pytest.raises(ConfigurationError):
            MapAndConquer(visformer(), cost_model=AnalyticalCostModel(), use_surrogate=True)


class TestReport:
    def test_format_table_alignment_and_content(self, tiny_framework):
        gpu = tiny_framework.baseline("gpu")
        rows = [table2_row("None", "GPU", gpu, use_worst_case=True)]
        text = format_table(rows)
        assert "TOP-1 Acc (%)" in text
        assert "GPU" in text
        assert len(text.splitlines()) == 3

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_table2_row_worst_case_switch(self, tiny_framework):
        config = tiny_framework.sample(seed=2)
        evaluated = tiny_framework.evaluate(config)
        dynamic_row = table2_row("Ours", "dyn", evaluated, use_worst_case=False)
        static_row = table2_row("Ours", "dyn", evaluated, use_worst_case=True)
        assert dynamic_row["Avg. Lat. (ms)"] <= static_row["Avg. Lat. (ms)"] + 1e-9
        assert dynamic_row["Avg. Enrg. (mJ)"] <= static_row["Avg. Enrg. (mJ)"] + 1e-9

    def test_comparison_row_ratios(self, tiny_framework):
        gpu = tiny_framework.baseline("gpu")
        dla = tiny_framework.baseline("dla0")
        row = comparison_row("dla", reference=gpu, candidate=dla)
        assert row["speedup_x"] == pytest.approx(gpu.latency_ms / dla.latency_ms)
        assert row["energy_gain_x"] == pytest.approx(gpu.energy_mj / dla.energy_mj)
        assert row["energy_gain_x"] > 1.0
