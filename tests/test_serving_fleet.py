"""Integration and invariant tests for the fleet serving layer.

Pins the acceptance criteria of :mod:`repro.serving.fleet`:

* **conservation** — every generated request is either served by exactly one
  instance or explicitly dropped; global trace indices partition exactly,
* **fleet-of-1 identity** — a round-robin fleet of one instance replays the
  stream byte-identically to :func:`repro.serving.bridge.simulate_deployment`
  (same seed derivation, same records, same trace bytes),
* **Little's law at fleet scope** — time-averaged in-flight equals
  throughput x mean latency, measured independently of per-request numbers,
* **router determinism** — a hypothesis property: any registered router
  replayed with the same seed produces identical assignments and identical
  trace bytes,
* the autoscaler boots/stops instances deterministically, honours
  ``min_instances`` and charges idle energy for powered-but-idle units.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serving import (
    AutoscalerPolicy,
    Deployment,
    DiurnalArrivals,
    FleetInstance,
    FleetRouter,
    FleetSimulator,
    PoissonArrivals,
    compute_fleet_metrics,
    fleet_records,
    get_router,
    router_names,
    simulate_deployment,
    simulate_fleet,
)
from repro.soc.platform import jetson_agx_xavier
from repro.soc.presets import get_platform


@pytest.fixture()
def fast():
    return Deployment(
        name="fast",
        unit_names=("gpu",),
        service_ms=(6.0,),
        energy_mj=(80.0,),
        stage_accuracies=(0.9,),
        dvfs_scales=(1.0,),
    )


@pytest.fixture()
def frugal():
    return Deployment(
        name="frugal",
        unit_names=("dla0", "dla1"),
        service_ms=(12.0, 18.0),
        energy_mj=(8.0, 10.0),
        stage_accuracies=(0.6, 0.9),
        dvfs_scales=(1.0, 1.0),
    )


@pytest.fixture()
def duo(platform, fast, frugal):
    """A two-instance heterogeneous fleet on the same board model."""
    return (
        FleetInstance(name="fast-0", platform=platform, deployment=fast),
        FleetInstance(name="frugal-0", platform=platform, deployment=frugal),
    )


def _trio(platform, fast, frugal):
    return (
        FleetInstance(name="fast-0", platform=platform, deployment=fast),
        FleetInstance(name="fast-1", platform=platform, deployment=fast),
        FleetInstance(name="frugal-0", platform=platform, deployment=frugal),
    )


class TestFleetInstance:
    def test_validation(self, platform, fast):
        with pytest.raises(ConfigurationError):
            FleetInstance(name="", platform=platform, deployment=fast)
        with pytest.raises(ConfigurationError):
            FleetInstance(name="x", platform=platform, deployment=fast, boot_ms=0.0)
        alien = Deployment(
            name="alien",
            unit_names=("tpu",),
            service_ms=(1.0,),
            energy_mj=(1.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        with pytest.raises(ConfigurationError):
            FleetInstance(name="x", platform=platform, deployment=alien)

    def test_idle_power_defaults_to_platform_static(self, platform, fast):
        instance = FleetInstance(name="x", platform=platform, deployment=fast)
        static = {
            unit.name: unit.power.static_w for unit in platform.compute_units
        }
        # The whole powered board draws static power, not just the
        # deployment's own unit.
        assert instance.resolved_idle_power_w() == pytest.approx(sum(static.values()))
        override = FleetInstance(
            name="y", platform=platform, deployment=fast, idle_power_w=1.5
        )
        assert override.resolved_idle_power_w() == pytest.approx(1.5)

    def test_fleet_rejects_duplicate_names(self, platform, fast):
        twin = (
            FleetInstance(name="x", platform=platform, deployment=fast),
            FleetInstance(name="x", platform=platform, deployment=fast),
        )
        with pytest.raises(ConfigurationError):
            FleetSimulator(twin)


class TestRouterRegistry:
    def test_names_and_lookup(self):
        names = router_names()
        assert names == tuple(sorted(names))
        for expected in ("round-robin", "least-loaded", "deadline-aware", "energy-aware"):
            assert expected in names
            assert get_router(expected).name == expected

    def test_lookup_canonicalises(self):
        assert get_router("Round_Robin").name == "round-robin"
        assert get_router("  least loaded ").name == "least-loaded"

    def test_unknown_router_raises(self):
        with pytest.raises(ConfigurationError):
            get_router("teleport")

    def test_invalid_choice_is_rejected(self, duo):
        class Broken(FleetRouter):
            name = "broken"

            def route(self, request, now_ms, ready, view) -> int:
                return 99

        simulator = FleetSimulator(duo, router=Broken(), seed=0)
        with pytest.raises(ConfigurationError):
            simulator.run(PoissonArrivals(40.0), duration_ms=300.0)


class TestConservation:
    def test_every_request_served_or_dropped(self, platform, fast, frugal):
        result = simulate_fleet(
            _trio(platform, fast, frugal),
            PoissonArrivals(90.0),
            duration_ms=1200.0,
            router="least-loaded",
            seed=5,
        )
        served = sum(outcome.num_requests for outcome in result.outcomes)
        assert served == result.num_requests
        assert served + result.num_dropped == len(result.requests)
        assert result.num_dropped == 0  # nothing sheds without a backlog cap
        records = fleet_records(result)
        assert [record.index for record in records] == list(range(served))
        # Each instance's share matches the routing assignments exactly.
        for index, outcome in enumerate(result.outcomes):
            assert outcome.num_requests == sum(
                1 for assigned in result.assignments if assigned == index
            )

    def test_shedding_accounts_drops(self, platform, fast):
        solo = (FleetInstance(name="only", platform=platform, deployment=fast),)
        result = simulate_fleet(
            solo,
            PoissonArrivals(400.0),  # ~2.4x the instance's capacity
            duration_ms=1000.0,
            seed=2,
            shed_backlog_ms=50.0,
        )
        assert result.num_dropped > 0
        served = sum(outcome.num_requests for outcome in result.outcomes)
        assert served + result.num_dropped == len(result.requests)
        assert all(result.assignments[index] == -1 for index in result.dropped)
        metrics = compute_fleet_metrics(result)
        assert metrics.drop_rate == pytest.approx(
            result.num_dropped / len(result.requests)
        )


class TestFleetOfOneIdentity:
    def test_matches_simulate_deployment_byte_for_byte(
        self, platform, fast, tmp_path
    ):
        workload = PoissonArrivals(60.0)
        seed, duration = 11, 900.0
        single = simulate_deployment(
            fast, platform, workload, duration_ms=duration, seed=seed
        )
        fleet = simulate_fleet(
            (FleetInstance(name="only", platform=platform, deployment=fast),),
            workload,
            duration_ms=duration,
            router="round-robin",
            seed=seed,
        )
        assert fleet.outcomes[0].result.records == single.records
        assert fleet.outcomes[0].result.busy_ms == single.busy_ms
        # The fleet trace carries the same per-request numbers.
        from repro.serving import write_trace_jsonl

        single_path = tmp_path / "single.jsonl"
        fleet_path = tmp_path / "fleet.jsonl"
        write_trace_jsonl(single.records, single_path)
        fleet.write_trace(fleet_path)
        import json

        single_rows = [
            json.loads(line) for line in single_path.read_text().splitlines()
        ]
        fleet_rows = [
            json.loads(line) for line in fleet_path.read_text().splitlines()
        ]
        assert len(single_rows) == len(fleet_rows)
        for left, right in zip(single_rows, fleet_rows):
            assert right["instance"] == "only"
            for key, value in left.items():
                if key != "index":
                    assert right[key] == value


class TestFleetMetrics:
    def test_littles_law(self, platform, fast, frugal):
        result = simulate_fleet(
            _trio(platform, fast, frugal),
            PoissonArrivals(100.0),
            duration_ms=2000.0,
            router="least-loaded",
            seed=3,
        )
        metrics = compute_fleet_metrics(result)
        arrival_rate = metrics.num_requests - metrics.num_dropped
        arrival_rate /= metrics.duration_ms / 1000.0
        expected = arrival_rate * metrics.mean_latency_ms / 1000.0
        assert metrics.mean_in_flight == pytest.approx(expected, rel=1e-9)

    def test_idle_energy_charged_for_powered_idle_units(self, platform, fast):
        # A single near-idle instance: idle joules must dominate and equal
        # static power x (up time - busy time) on the deployment's unit.
        solo = (FleetInstance(name="only", platform=platform, deployment=fast),)
        result = simulate_fleet(
            solo, PoissonArrivals(5.0), duration_ms=2000.0, seed=4
        )
        outcome = result.outcomes[0]
        static_w = {
            unit.name: unit.power.static_w for unit in platform.compute_units
        }
        busy = outcome.result.busy_ms.get("gpu", 0.0)
        expected_gpu_idle = static_w["gpu"] * max(0.0, outcome.up_ms - busy)
        assert outcome.idle_energy_mj() >= expected_gpu_idle - 1e-9
        metrics = compute_fleet_metrics(result)
        assert metrics.idle_energy_mj == pytest.approx(outcome.idle_energy_mj())
        assert metrics.total_energy_mj == pytest.approx(
            metrics.dynamic_energy_mj + metrics.idle_energy_mj
        )
        assert metrics.idle_energy_mj > metrics.dynamic_energy_mj

    def test_summary_row_is_flat_and_complete(self, duo):
        metrics = compute_fleet_metrics(
            simulate_fleet(duo, PoissonArrivals(50.0), duration_ms=800.0, seed=1)
        )
        row = metrics.summary_row()
        assert row["router"] == "round-robin"
        assert row["instances"] == 2
        assert set(row) >= {"p50_ms", "p99_ms", "J_total", "mJ/req", "mean_active"}

    def test_routers_are_behaviourally_distinct(self, platform, fast, frugal):
        # Under asymmetric instances the four routers must not all collapse
        # to the same assignment vector.
        assignments = {}
        for name in router_names():
            result = simulate_fleet(
                _trio(platform, fast, frugal),
                DiurnalArrivals(peak_rps=120.0, trough_rps=10.0, period_ms=1000.0),
                duration_ms=1000.0,
                router=name,
                seed=9,
                deadline_ms=40.0,
            )
            assignments[name] = result.assignments
        assert len(set(assignments.values())) >= 2
        # Energy-aware prefers the frugal instance over the fast one.
        energy = assignments["energy-aware"]
        assert sum(1 for a in energy if a == 2) > sum(1 for a in energy if a == 0)


class TestAutoscaler:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(min_instances=0)
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(min_instances=3, max_instances=2)
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(target_utilisation=0.4, scale_down_utilisation=0.5)

    def test_min_instances_cannot_exceed_fleet(self, duo):
        with pytest.raises(ConfigurationError):
            FleetSimulator(duo, autoscaler=AutoscalerPolicy(min_instances=3))

    def test_diurnal_load_boots_and_stops(self, platform, fast, frugal):
        result = simulate_fleet(
            _trio(platform, fast, frugal),
            DiurnalArrivals(peak_rps=220.0, trough_rps=5.0, period_ms=1500.0),
            duration_ms=3000.0,
            router="least-loaded",
            autoscaler=AutoscalerPolicy(
                min_instances=1,
                target_utilisation=0.6,
                scale_down_utilisation=0.2,
                decision_interval_ms=100.0,
                window_ms=400.0,
            ),
            seed=6,
        )
        actions = [event.action for event in result.events]
        assert "boot" in actions and "stop" in actions
        assert result.initial_active == 1
        metrics = compute_fleet_metrics(result)
        assert metrics.boots >= 1
        assert 1.0 <= metrics.mean_active_instances < 3.0
        assert metrics.peak_active_instances <= 3
        # Event stream is time-ordered with a consistent active count.
        times = [event.time_ms for event in result.events]
        assert times == sorted(times)
        active = result.initial_active
        for event in result.events:
            active += 1 if event.action == "boot" else -1
            assert event.active == active
            assert 1 <= active <= 3

    def test_boot_latency_delays_first_service(self, platform, fast):
        # With a huge boot latency the second instance never becomes ready
        # inside the window, so everything lands on the warm one.
        fleet = (
            FleetInstance(name="warm", platform=platform, deployment=fast),
            FleetInstance(
                name="cold", platform=platform, deployment=fast, boot_ms=10_000.0
            ),
        )
        result = simulate_fleet(
            fleet,
            PoissonArrivals(200.0),
            duration_ms=1500.0,
            router="least-loaded",
            autoscaler=AutoscalerPolicy(min_instances=1, window_ms=300.0),
            seed=8,
        )
        assert all(choice == 0 for choice in result.assignments if choice >= 0)

    def test_always_on_keeps_everyone_powered(self, duo):
        result = simulate_fleet(
            duo, PoissonArrivals(30.0), duration_ms=1000.0, seed=0
        )
        metrics = compute_fleet_metrics(result)
        assert result.events == ()
        assert metrics.mean_active_instances == pytest.approx(2.0)
        assert metrics.boots == 0


class TestRouterDeterminismProperty:
    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        router=st.sampled_from(router_names()),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_same_seed_same_assignments_and_trace(self, router, seed):
        platform = jetson_agx_xavier()
        fast = Deployment(
            name="fast",
            unit_names=("gpu",),
            service_ms=(6.0,),
            energy_mj=(80.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        frugal = Deployment(
            name="frugal",
            unit_names=("dla0", "dla1"),
            service_ms=(12.0, 18.0),
            energy_mj=(8.0, 10.0),
            stage_accuracies=(0.6, 0.9),
            dvfs_scales=(1.0, 1.0),
        )
        fleet = (
            FleetInstance(name="fast-0", platform=platform, deployment=fast),
            FleetInstance(name="frugal-0", platform=platform, deployment=frugal),
        )

        def run():
            return simulate_fleet(
                fleet,
                PoissonArrivals(70.0),
                duration_ms=400.0,
                router=router,
                seed=seed,
            )

        first, second = run(), run()
        assert first.assignments == second.assignments
        assert first.records() == second.records()
        first_metrics = compute_fleet_metrics(first)
        second_metrics = compute_fleet_metrics(second)
        assert first_metrics == second_metrics


class TestCrossPlatformFleet:
    def test_mixed_boards_serve_one_stream(self, fast):
        xavier = get_platform("jetson-agx-xavier")
        nano = get_platform("jetson-nano-class")
        nano_units = tuple(unit.name for unit in nano.compute_units)
        assert "gpu" in nano_units  # the fast deployment must map onto it
        fleet = (
            FleetInstance(name="xavier-0", platform=xavier, deployment=fast),
            FleetInstance(name="nano-0", platform=nano, deployment=fast),
        )
        result = simulate_fleet(
            fleet, PoissonArrivals(80.0), duration_ms=1000.0,
            router="least-loaded", seed=12,
        )
        served = sum(outcome.num_requests for outcome in result.outcomes)
        assert served == result.num_requests
        assert all(outcome.num_requests > 0 for outcome in result.outcomes)
        metrics = compute_fleet_metrics(result)
        assert metrics.num_instances == 2
        assert metrics.instance_requests == {
            outcome.instance.name: outcome.num_requests
            for outcome in result.outcomes
        }
        assert all(
            0.0 <= u <= 1.0 + 1e-9 for u in metrics.instance_utilisation.values()
        )
        assert np.isfinite(metrics.energy_per_request_mj)
