"""Unit tests for the runtime confidence-threshold exit controller."""

from __future__ import annotations

import pytest

from repro.dynamics.accuracy import AccuracyModel
from repro.dynamics.controller import ThresholdExitController
from repro.dynamics.inference import simulate_dynamic_inference
from repro.errors import ConfigurationError


@pytest.fixture()
def profile(tiny_dynamic, mapping_evaluator):
    return mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (9, 5, 5))


@pytest.fixture()
def stage_accuracies(tiny_dynamic):
    return AccuracyModel().stage_accuracies(tiny_dynamic)


class TestThresholdExitController:
    def test_result_is_a_distribution(self, stage_accuracies, profile):
        controller = ThresholdExitController(threshold=0.7, seed=0)
        result = controller.simulate(stage_accuracies, profile, num_samples=2000)
        assert sum(result.exit_fractions) == pytest.approx(1.0)
        assert 1.0 <= result.expected_stages <= len(stage_accuracies)
        assert 0.0 < result.accuracy <= 1.0
        assert result.num_samples == 2000

    def test_deterministic_per_seed(self, stage_accuracies, profile):
        first = ThresholdExitController(seed=3).simulate(stage_accuracies, profile, 1000)
        second = ThresholdExitController(seed=3).simulate(stage_accuracies, profile, 1000)
        assert first.accuracy == second.accuracy
        assert first.exit_fractions == second.exit_fractions

    def test_higher_threshold_defers_more_samples(self, stage_accuracies, profile):
        eager = ThresholdExitController(threshold=0.3, seed=0).simulate(
            stage_accuracies, profile, 4000
        )
        cautious = ThresholdExitController(threshold=0.95, seed=0).simulate(
            stage_accuracies, profile, 4000
        )
        assert cautious.expected_stages >= eager.expected_stages
        assert cautious.expected_energy_mj >= eager.expected_energy_mj - 1e-9

    def test_cautious_controller_reduces_premature_exits(self, stage_accuracies, profile):
        eager = ThresholdExitController(threshold=0.3, seed=0).simulate(
            stage_accuracies, profile, 4000
        )
        cautious = ThresholdExitController(threshold=0.95, seed=0).simulate(
            stage_accuracies, profile, 4000
        )
        assert cautious.premature_exit_fraction <= eager.premature_exit_fraction + 1e-9

    def test_metrics_bounded_by_profile(self, stage_accuracies, profile):
        result = ThresholdExitController(seed=0).simulate(stage_accuracies, profile, 2000)
        assert result.expected_latency_ms <= profile.latency_ms + 1e-9
        assert result.expected_energy_mj <= profile.total_energy_mj + 1e-9

    def test_realistic_controller_close_to_ideal_mapping(
        self, tiny_dynamic, stage_accuracies, profile
    ):
        """A low-noise, well-tuned controller approaches the ideal analysis."""
        ideal = simulate_dynamic_inference(tiny_dynamic, profile)
        realistic = ThresholdExitController(
            threshold=0.6, confidence_noise=0.02, seed=0
        ).simulate(stage_accuracies, profile, 8000)
        assert realistic.accuracy == pytest.approx(ideal.accuracy, abs=0.08)
        assert realistic.expected_energy_mj == pytest.approx(
            ideal.expected_energy_mj, rel=0.5
        )

    def test_noisier_confidence_costs_accuracy(self, stage_accuracies, profile):
        clean = ThresholdExitController(threshold=0.7, confidence_noise=0.0, seed=0).simulate(
            stage_accuracies, profile, 4000
        )
        noisy = ThresholdExitController(threshold=0.7, confidence_noise=0.4, seed=0).simulate(
            stage_accuracies, profile, 4000
        )
        assert noisy.accuracy <= clean.accuracy + 0.02

    def test_invalid_parameters_rejected(self, stage_accuracies, profile):
        with pytest.raises(ConfigurationError):
            ThresholdExitController(threshold=1.5)
        with pytest.raises(ConfigurationError):
            ThresholdExitController(confidence_noise=-0.1)
        controller = ThresholdExitController()
        with pytest.raises(ConfigurationError):
            controller.simulate([], profile)
        with pytest.raises(ConfigurationError):
            controller.simulate([0.9, 0.5], profile)
        with pytest.raises(ConfigurationError):
            controller.simulate(stage_accuracies, profile, num_samples=0)
        with pytest.raises(ConfigurationError):
            controller.simulate(stage_accuracies[:2], profile)
