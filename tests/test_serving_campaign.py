"""Tests for the serving-campaign runner (family sweeps over platform fronts)."""

from __future__ import annotations

import pytest

from repro.campaign import run_serving_campaign
from repro.core.framework import MapAndConquer
from repro.core.report import serving_campaign_table, traffic_ranking_summary
from repro.errors import ConfigurationError
from repro.serving.families import OnOffBurstFamily, SteadyPoissonFamily
from repro.utils import geometric_mean

PLATFORMS = ("jetson-agx-xavier", "mobile-big-little")
FAMILIES = (
    SteadyPoissonFamily(rate_rps=40.0),
    OnOffBurstFamily(burst_rps=90.0, idle_rps=5.0, burst_ms=300.0, idle_ms=500.0),
)
BUDGET = dict(
    members_per_family=2,
    duration_ms=600.0,
    generations=2,
    population_size=6,
    seed=3,
)


@pytest.fixture(scope="module")
def serving(tiny_network):
    return run_serving_campaign(tiny_network, PLATFORMS, families=FAMILIES, **BUDGET)


class TestResultStructure:
    def test_one_cell_per_platform_family_pair_family_major(self, serving):
        assert len(serving.cells) == len(PLATFORMS) * len(FAMILIES)
        assert [(c.family_name, c.platform_name) for c in serving.cells] == [
            (family.name, platform) for family in FAMILIES for platform in PLATFORMS
        ]

    def test_cell_accessor_and_unknown_key(self, serving):
        cell = serving.cell("mobile-big-little", "steady-poisson")
        assert cell.platform_name == "mobile-big-little"
        assert len(cell.members) == BUDGET["members_per_family"]
        with pytest.raises(ConfigurationError, match="no serving cell"):
            serving.cell("mobile-big-little", "weekend")

    def test_every_member_winner_comes_from_the_front(self, serving):
        for cell in serving.cells:
            front_size = len(serving.campaign.front(cell.platform_name))
            for outcome in cell.members:
                position = int(outcome.winner.rsplit("-", 1)[1])
                assert outcome.winner.startswith("pareto-")
                assert 0 <= position < front_size

    def test_ranking_is_sorted_best_first(self, serving):
        for family in serving.family_names:
            scores = [cell.served_p99_per_joule for cell in serving.ranking(family)]
            assert scores == sorted(scores, reverse=True)
            assert serving.best_platform(family) == serving.ranking(family)[0].platform_name
        with pytest.raises(ConfigurationError, match="no serving cells"):
            serving.ranking("weekend")

    def test_traffic_matrix_covers_the_grid(self, serving):
        matrix = serving.traffic_matrix()
        assert set(matrix) == {
            (platform, family.name) for platform in PLATFORMS for family in FAMILIES
        }
        assert all(score > 0.0 for score in matrix.values())

    def test_isolated_energy_best_is_a_campaign_platform(self, serving):
        assert serving.isolated_energy_best() in serving.platform_names

    def test_underlying_campaign_is_exposed(self, serving):
        assert serving.campaign.platform_names == serving.platform_names
        assert serving.network_name == serving.campaign.network_name


class TestScoreArithmetic:
    def test_member_score_is_requests_per_joule_over_p99(self, serving):
        outcome = serving.cells[0].members[0]
        requests_per_joule = 1000.0 / outcome.metrics.energy_per_request_mj
        assert outcome.served_p99_per_joule == pytest.approx(
            requests_per_joule / outcome.metrics.p99_latency_ms
        )
        assert outcome.joules_per_request == pytest.approx(
            outcome.metrics.energy_per_request_mj / 1000.0
        )

    def test_cell_aggregates_members(self, serving):
        cell = serving.cells[0]
        members = cell.members
        assert cell.p99_latency_ms == pytest.approx(
            sum(m.metrics.p99_latency_ms for m in members) / len(members)
        )
        assert cell.deadline_miss_rate == pytest.approx(
            sum(m.metrics.deadline_miss_rate for m in members) / len(members)
        )
        assert cell.served_p99_per_joule == pytest.approx(
            geometric_mean([m.served_p99_per_joule for m in members])
        )


class TestDeterminismAndParallelism:
    def test_serial_rerun_is_byte_identical(self, tiny_network, serving):
        again = run_serving_campaign(tiny_network, PLATFORMS, families=FAMILIES, **BUDGET)
        assert traffic_ranking_summary(again) == traffic_ranking_summary(serving)

    def test_cell_parallel_is_byte_identical(self, tiny_network, serving):
        parallel = run_serving_campaign(
            tiny_network, PLATFORMS, families=FAMILIES, cell_workers=2, **BUDGET
        )
        assert traffic_ranking_summary(parallel) == traffic_ranking_summary(serving)

    def test_different_seed_changes_the_replay(self, tiny_network, serving):
        other = run_serving_campaign(
            tiny_network,
            PLATFORMS,
            families=FAMILIES,
            **{**BUDGET, "seed": 4},
        )
        assert traffic_ranking_summary(other) != traffic_ranking_summary(serving)


class TestValidation:
    def test_zero_members_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError, match="members_per_family"):
            run_serving_campaign(
                tiny_network, PLATFORMS, **{**BUDGET, "members_per_family": 0}
            )

    def test_unknown_metric_rejected_before_any_search(self, tiny_network):
        with pytest.raises(ConfigurationError, match="unknown or unrankable"):
            run_serving_campaign(
                tiny_network, PLATFORMS, metric="p99_latency", **BUDGET
            )

    def test_non_positive_duration_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError, match="duration_ms"):
            run_serving_campaign(
                tiny_network, PLATFORMS, **{**BUDGET, "duration_ms": 0.0}
            )


class TestReports:
    def test_table_has_one_row_per_cell(self, serving):
        table = serving_campaign_table(serving)
        # header + separator + one line per cell
        assert len(table.splitlines()) == 2 + len(serving.cells)
        assert "served_p99/J" in table

    def test_summary_contains_rankings_and_isolated_comparison(self, serving):
        summary = traffic_ranking_summary(serving)
        assert summary.startswith("serving campaign: tiny x 2 platforms x 2 families")
        assert "traffic ranking (served-p99-per-joule, best first):" in summary
        assert f"isolated-energy best: {serving.isolated_energy_best()}" in summary
        for family in serving.family_names:
            assert f"  {family}: " in summary


class TestFacade:
    def test_serving_campaign_prepends_own_platform(self, tiny_network):
        framework = MapAndConquer(tiny_network, seed=3)  # defaults to the Xavier
        serving = framework.serving_campaign(
            ["mobile-big-little"],
            families=(SteadyPoissonFamily(rate_rps=30.0),),
            members_per_family=1,
            duration_ms=400.0,
            generations=2,
            population_size=6,
        )
        assert serving.platform_names == ("jetson-agx-xavier", "mobile-big-little")

    def test_surrogate_framework_is_rejected(self, tiny_network):
        framework = MapAndConquer(
            tiny_network, seed=0, use_surrogate=True, surrogate_samples=40
        )
        with pytest.raises(ConfigurationError, match="cost model"):
            framework.serving_campaign(["mobile-big-little"])
