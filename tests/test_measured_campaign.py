"""Measured-objective campaigns: differential, cache, checkpoint and degenerate tests.

Covers the measured-serving campaign path end to end:

* **Differential** — a campaign run with ``measured_objectives=`` must produce,
  cell for cell, exactly the front a hand-rolled per-platform
  ``search(objectives=measured_serving_objectives(...))`` loop produces under
  the same seeds.  The campaign adds fan-out, caching and checkpointing around
  the search; none of it may change a single front member.
* **Shared cache** — deterministic per-cell lookup/unique statistics, byte
  identity between serial and cell-parallel runs, and JSONL persistence that
  later runs actually reload.
* **Checkpoint refresh** — an unchanged measured recipe restores every cell;
  changing the replay budget re-runs exactly the affected cells.
* **Conflicting store** (bugfix) — ``ServingResultCache.store`` on an existing
  digest with *different* measured numbers logs a warning instead of silently
  dropping the payload.
* **Degenerate cells** (bugfix) — zero-completion replays collapse to the
  canonical :meth:`ServingMetrics.degenerate` aggregates, score exactly 0.0
  and rank strictly last instead of raising ``ZeroDivisionError`` /
  ``ConfigurationError`` and killing the campaign.
"""

from __future__ import annotations

import dataclasses
import logging
import math

import pytest

import repro.campaign.runner as runner_module
import repro.campaign.serving_runner as serving_runner_module
from repro.campaign import run_campaign, run_serving_campaign
from repro.campaign.serving_runner import (
    MemberOutcome,
    ServingCellResult,
    served_p99_per_joule,
)
from repro.core.framework import MapAndConquer
from repro.core.report import campaign_summary, traffic_ranking_summary
from repro.errors import ConfigurationError
from repro.search import MeasuredObjectives
from repro.search.objectives import measured_serving_objectives
from repro.serving.families import SteadyPoissonFamily
from repro.serving.fleet import FleetInstance, FleetResult, InstanceOutcome
from repro.serving.fleet_metrics import compute_fleet_metrics
from repro.serving.metrics import ServingMetrics, compute_metrics
from repro.serving.policies import Deployment, StaticPolicy
from repro.serving.result_cache import MeasuredCellStats, ServingResultCache
from repro.serving.simulator import TrafficSimulator
from repro.serving.workload import Request
from repro.soc.presets import get_platform

PLATFORMS = ("jetson-agx-xavier", "mobile-big-little")
FAMILY = SteadyPoissonFamily(rate_rps=40.0)
MEASURED = MeasuredObjectives(family=FAMILY, duration_ms=250.0, members=2)
BUDGET = dict(num_stages=2, generations=2, population_size=6, seed=3)


def _front_signature(result):
    """Order-preserving value signature of a search result's Pareto front."""
    return [member.summary_row() for member in result.pareto]


@pytest.fixture(scope="module")
def measured_campaign(tiny_network):
    return run_campaign(
        tiny_network, PLATFORMS, measured_objectives=MEASURED, **BUDGET
    )


class TestMeasuredCampaignDifferential:
    def test_cells_match_direct_measured_search(self, measured_campaign, tiny_network):
        """The campaign is exactly the per-platform measured-search loop."""
        for cell in measured_campaign.cells:
            platform = get_platform(cell.platform_name)
            framework = MapAndConquer(
                tiny_network,
                platform,
                num_stages=BUDGET["num_stages"],
                seed=BUDGET["seed"],
            )
            direct = framework.search(
                generations=BUDGET["generations"],
                population_size=BUDGET["population_size"],
                seed=BUDGET["seed"],
                objectives=measured_serving_objectives(
                    FAMILY,
                    platform,
                    duration_ms=MEASURED.duration_ms,
                    seed=BUDGET["seed"],
                    members=MEASURED.members,
                ),
            )
            assert _front_signature(cell.result) == _front_signature(direct)
            assert cell.result.num_evaluations == direct.num_evaluations

    def test_mutual_exclusion_with_plain_objectives(self, tiny_network):
        platform = get_platform(PLATFORMS[0])
        ready = measured_serving_objectives(FAMILY, platform)
        with pytest.raises(ConfigurationError, match="not both"):
            run_campaign(
                tiny_network,
                PLATFORMS,
                objectives=ready,
                measured_objectives=MEASURED,
                **BUDGET,
            )

    def test_factory_type_is_validated(self, tiny_network):
        with pytest.raises(ConfigurationError, match="MeasuredObjectives"):
            run_campaign(
                tiny_network, PLATFORMS, measured_objectives="steady-poisson", **BUDGET
            )

    def test_factory_rejects_bad_recipe(self):
        with pytest.raises(ConfigurationError, match="WorkloadFamily"):
            MeasuredObjectives(family="steady-poisson")
        with pytest.raises(ConfigurationError, match="duration_ms"):
            MeasuredObjectives(family=FAMILY, duration_ms=0.0)
        with pytest.raises(ConfigurationError, match="members"):
            MeasuredObjectives(family=FAMILY, members=0)


class TestSharedServingCache:
    def test_deterministic_cell_stats_attached(self, measured_campaign):
        for cell in measured_campaign.cells:
            stats = cell.measured_cache_stats
            assert isinstance(stats, MeasuredCellStats)
            assert stats.lookups > 0
            assert 1 <= stats.unique <= stats.lookups
            assert stats.avoided == stats.lookups - stats.unique

    def test_cell_parallel_matches_serial(self, measured_campaign, tiny_network):
        parallel = run_campaign(
            tiny_network,
            PLATFORMS,
            measured_objectives=MEASURED,
            cell_workers=2,
            **BUDGET,
        )
        assert campaign_summary(parallel) == campaign_summary(measured_campaign)
        for serial_cell, parallel_cell in zip(measured_campaign.cells, parallel.cells):
            assert _front_signature(serial_cell.result) == _front_signature(
                parallel_cell.result
            )
            assert serial_cell.measured_cache_stats == parallel_cell.measured_cache_stats

    def test_summary_renders_cache_efficiency(self, measured_campaign):
        text = campaign_summary(measured_campaign)
        assert "sim_cache" in text
        assert "measured serving cache:" in text
        total_lookups = sum(
            cell.measured_cache_stats.lookups for cell in measured_campaign.cells
        )
        total_unique = sum(
            cell.measured_cache_stats.unique for cell in measured_campaign.cells
        )
        assert f"{total_lookups - total_unique}/{total_lookups} lookups" in text

    def test_proxy_campaign_summary_has_no_cache_column(self, tiny_network):
        proxy = run_campaign(tiny_network, PLATFORMS, **BUDGET)
        text = campaign_summary(proxy)
        assert "sim_cache" not in text
        assert "measured serving cache:" not in text
        assert all(cell.measured_cache_stats is None for cell in proxy.cells)

    def test_persistent_cache_is_reloaded(self, tiny_network, tmp_path):
        cache_path = tmp_path / "serving_cache.jsonl"
        first = run_campaign(
            tiny_network,
            PLATFORMS,
            measured_objectives=MEASURED,
            serving_cache=cache_path,
            **BUDGET,
        )
        assert cache_path.exists()
        reloaded = ServingResultCache(path=cache_path)
        assert len(reloaded) > 0
        assert reloaded.stats.loaded == len(reloaded)
        # A second campaign over the warm cache reuses the persisted replays
        # and still produces byte-identical cells and statistics: the cache
        # removes simulator invocations, never results.
        second = run_campaign(
            tiny_network,
            PLATFORMS,
            measured_objectives=MEASURED,
            serving_cache=reloaded,
            **BUDGET,
        )
        assert campaign_summary(second) == campaign_summary(first)
        # Everything was already cached: the warm run stored nothing new.
        assert reloaded.export_session() == ()


class TestCheckpointRefresh:
    def _counting(self, monkeypatch):
        calls = []
        real = runner_module._run_cell

        def counting(task, cache=None, framework=None, **kwargs):
            calls.append(task.platform.name)
            return real(task, cache, framework, **kwargs)

        monkeypatch.setattr(runner_module, "_run_cell", counting)
        return calls

    def test_unchanged_recipe_restores_changed_budget_refreshes(
        self, tiny_network, tmp_path, monkeypatch
    ):
        checkpoint_dir = tmp_path / "ckpt"
        first = run_campaign(
            tiny_network,
            PLATFORMS,
            measured_objectives=MEASURED,
            checkpoint_dir=checkpoint_dir,
            **BUDGET,
        )

        calls = self._counting(monkeypatch)
        resumed = run_campaign(
            tiny_network,
            PLATFORMS,
            measured_objectives=MEASURED,
            checkpoint_dir=checkpoint_dir,
            **BUDGET,
        )
        assert calls == []  # every cell restored, none re-run
        assert campaign_summary(resumed) == campaign_summary(first)

        # A changed replay budget changes every bound per-platform descriptor,
        # so every cell is refreshed (re-run) instead of silently restored.
        changed = dataclasses.replace(MEASURED, duration_ms=300.0)
        run_campaign(
            tiny_network,
            PLATFORMS,
            measured_objectives=changed,
            checkpoint_dir=checkpoint_dir,
            **BUDGET,
        )
        assert sorted(calls) == sorted(PLATFORMS)

    def test_proxy_checkpoint_unaffected_by_measured_wiring(
        self, tiny_network, tmp_path, monkeypatch
    ):
        """Pre-measured (proxy) checkpoints keep restoring byte-identically."""
        checkpoint_dir = tmp_path / "ckpt"
        first = run_campaign(
            tiny_network, PLATFORMS, checkpoint_dir=checkpoint_dir, **BUDGET
        )
        calls = self._counting(monkeypatch)
        resumed = run_campaign(
            tiny_network, PLATFORMS, checkpoint_dir=checkpoint_dir, **BUDGET
        )
        assert calls == []
        assert campaign_summary(resumed) == campaign_summary(first)


class TestConflictingStoreWarning:
    """Bugfix: a conflicting payload under an existing digest must not vanish."""

    def _metrics(self, p99: float) -> ServingMetrics:
        return dataclasses.replace(
            ServingMetrics.degenerate("static(d)", 100.0),
            num_requests=10,
            p99_latency_ms=p99,
            mean_queueing_ms=1.0,
            energy_per_request_mj=2.0,
            throughput_rps=50.0,
        )

    def test_conflicting_payload_logs_and_keeps_first(self, caplog):
        cache = ServingResultCache()
        first = self._metrics(p99=5.0)
        cache.store("digest-under-test", first)
        with caplog.at_level(logging.WARNING, logger="repro.serving.result_cache"):
            cache.store("digest-under-test", self._metrics(p99=9.0))
        assert "conflicting" in caplog.text
        assert "digest-under-test"[:16] in caplog.text
        assert cache.peek("digest-under-test") is first

    def test_identical_payload_stays_silent(self, caplog):
        cache = ServingResultCache()
        cache.store("digest-under-test", self._metrics(p99=5.0))
        with caplog.at_level(logging.WARNING, logger="repro.serving.result_cache"):
            cache.store("digest-under-test", self._metrics(p99=5.0))
        assert caplog.records == []


def _deployment() -> Deployment:
    platform = get_platform("jetson-agx-xavier")
    return Deployment(
        name="probe",
        unit_names=(platform.unit_names[0],),
        service_ms=(2.0,),
        energy_mj=(3.0,),
        stage_accuracies=(0.9,),
        dvfs_scales=(1.0,),
    )


class TestDegenerateCells:
    """Bugfix: zero-completion replays rank last instead of crashing."""

    def test_degenerate_aggregates(self):
        metrics = ServingMetrics.degenerate("static(d)", 500.0)
        assert metrics.completed == 0
        assert metrics.p99_latency_ms == math.inf
        assert metrics.energy_per_request_mj == math.inf
        assert metrics.deadline_miss_rate == 1.0
        assert metrics.throughput_rps == 0.0
        assert metrics.accuracy == 0.0

    def test_compute_metrics_empty_completion_set_is_degenerate(self):
        deployment = _deployment()
        platform = get_platform("jetson-agx-xavier")
        simulator = TrafficSimulator(
            platform=platform, policy=StaticPolicy(deployment), seed=7
        )
        result = simulator.run([Request(arrival_ms=5.0)], duration_ms=100.0)
        metrics = compute_metrics(result, tenant="nobody-sends-this")
        assert metrics.completed == 0
        assert metrics.p99_latency_ms == math.inf
        # The non-degenerate reduction of the same result still works.
        assert compute_metrics(result).completed == 1

    def test_score_never_divides_by_zero(self):
        degenerate = ServingMetrics.degenerate("static(d)", 500.0)
        assert served_p99_per_joule(degenerate) == 0.0
        zero_energy = dataclasses.replace(
            degenerate, num_requests=10, p99_latency_ms=4.0, energy_per_request_mj=0.0
        )
        assert served_p99_per_joule(zero_energy) == 0.0
        zero_p99 = dataclasses.replace(
            degenerate, num_requests=10, p99_latency_ms=0.0, energy_per_request_mj=2.0
        )
        assert served_p99_per_joule(zero_p99) == 0.0

    def test_one_drowned_member_sinks_the_cell_without_raising(self):
        real = dataclasses.replace(
            ServingMetrics.degenerate("static(d)", 500.0),
            num_requests=10,
            p99_latency_ms=4.0,
            energy_per_request_mj=2.0,
        )
        cell = ServingCellResult(
            platform_name="p",
            family_name="f",
            members=(
                MemberOutcome(
                    label="f[0]", traffic_seed=0, winner="pareto-0", metrics=real
                ),
                MemberOutcome(
                    label="f[1]",
                    traffic_seed=1,
                    winner="pareto-0",
                    metrics=ServingMetrics.degenerate("static(d)", 500.0),
                ),
            ),
        )
        # geometric_mean would raise ConfigurationError on the 0.0 member
        # score; the cell must collapse to 0.0 instead.
        assert cell.served_p99_per_joule == 0.0

    def test_compute_fleet_metrics_every_request_dropped(self):
        instance = FleetInstance(
            name="i0",
            platform=get_platform("jetson-agx-xavier"),
            deployment=_deployment(),
        )
        requests = tuple(Request(arrival_ms=float(i)) for i in range(5))
        result = FleetResult(
            router="round-robin",
            requests=requests,
            outcomes=(
                InstanceOutcome(
                    instance=instance, assigned=(), result=None, up_ms=500.0, boots=0
                ),
            ),
            assignments=(-1,) * len(requests),
            dropped=tuple(range(len(requests))),
            events=(),
            initial_active=1,
            duration_ms=500.0,
        )
        metrics = compute_fleet_metrics(result)
        assert metrics.completed == 0
        assert metrics.num_dropped == len(requests)
        assert metrics.drop_rate == 1.0
        assert metrics.p99_latency_ms == math.inf
        assert metrics.energy_per_request_mj == math.inf
        # Warm silicon still burns idle power even while shedding everything.
        assert metrics.idle_energy_mj > 0.0
        assert metrics.total_energy_mj == metrics.idle_energy_mj

    def test_saturated_platform_ranks_last_and_summary_renders(
        self, tiny_network, monkeypatch
    ):
        """End to end: one platform sheds everything, the campaign survives."""
        real = serving_runner_module.measured_serving_metrics

        def drowning(deployment, platform, process, duration_ms, **kwargs):
            if platform.name == "mobile-big-little":
                return ServingMetrics.degenerate("static(shed)", duration_ms)
            return real(deployment, platform, process, duration_ms, **kwargs)

        monkeypatch.setattr(
            serving_runner_module, "measured_serving_metrics", drowning
        )
        serving = run_serving_campaign(
            tiny_network,
            PLATFORMS,
            families=(FAMILY,),
            members_per_family=2,
            duration_ms=250.0,
            generations=2,
            population_size=6,
            seed=3,
            serving_cache=ServingResultCache(),
        )
        ranking = serving.ranking(FAMILY.name)
        assert ranking[-1].platform_name == "mobile-big-little"
        assert ranking[-1].served_p99_per_joule == 0.0
        assert ranking[0].served_p99_per_joule > 0.0
        assert serving.best_platform(FAMILY.name) == ranking[0].platform_name
        for member in serving.cell("mobile-big-little", FAMILY.name).members:
            assert member.metrics.completed == 0
        # The summary renders the degenerate cell (inf axes) without raising.
        text = traffic_ranking_summary(serving)
        assert "mobile-big-little" in text


class TestFleetMeasuredCampaign:
    """Fleet campaigns accept the same measured recipe and shed-to-last rule."""

    @pytest.fixture(scope="class")
    def fleet(self, tiny_network):
        from repro.campaign import FleetMix, run_fleet_campaign

        mixes = (
            FleetMix(name="roomy", counts=(("jetson-agx-xavier", 2),)),
            # One starved instance behind an aggressive shedding bound: every
            # request that arrives while it is busy gets dropped.
            FleetMix(
                name="starved",
                counts=(("jetson-agx-xavier", 1),),
                shed_backlog_ms=0.01,
            ),
        )
        return run_fleet_campaign(
            tiny_network,
            mixes,
            families=(FAMILY,),
            members_per_family=1,
            duration_ms=250.0,
            p99_slo_ms=400.0,
            num_stages=2,
            generations=2,
            population_size=6,
            seed=3,
            measured_objectives=MEASURED,
        )

    def test_search_cells_carry_measured_stats(self, fleet):
        for cell in fleet.campaign.cells:
            stats = cell.measured_cache_stats
            assert isinstance(stats, MeasuredCellStats)
            assert stats.lookups > 0
            assert 1 <= stats.unique <= stats.lookups

    def test_shedding_mix_drops_and_ranks_last(self, fleet):
        from repro.core.report import fleet_summary

        starved = fleet.cell("starved", FAMILY.name)
        assert starved.drop_rate > 0.0
        assert not starved.within_slo
        ranking = fleet.ranking(FAMILY.name)
        assert [cell.mix_name for cell in ranking] == ["roomy", "starved"]
        assert ranking[0].within_slo
        assert fleet.best_mix(FAMILY.name) == "roomy"
        # The summary renders both cells — including the shedder — without
        # raising.
        text = fleet_summary(fleet)
        assert "starved" in text and "roomy" in text
