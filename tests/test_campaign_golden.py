"""Golden-file regression pin of ``campaign_summary`` bytes.

A small 2-platform x 2-scenario grid at a fixed seed must render the exact
bytes stored in ``tests/data/campaign_summary_golden.txt`` — through the
serial path, the process evaluation backend, and the cell-parallel runner
alike.  Any change to search semantics, evaluation numerics, translation
rules or report formatting shows up here as a diff against a file a reviewer
can read, instead of as silent drift.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/test_campaign_golden.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.campaign import CampaignScenario, run_campaign
from repro.core.report import campaign_summary

GOLDEN_PATH = Path(__file__).parent / "data" / "campaign_summary_golden.txt"

GRID = ("jetson-agx-xavier", "mobile-big-little")
SCENARIOS = (
    CampaignScenario(name="unconstrained"),
    CampaignScenario(name="half-reuse", max_reuse_fraction=0.5),
)
SEED = 3
BUDGET = dict(generations=2, population_size=6)


def _tiny_network():
    # Mirrors the conftest fixture; duplicated so --regenerate works as a
    # plain script outside pytest.
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )

    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


def _render(**overrides) -> str:
    network = overrides.pop("network", None) or _tiny_network()
    campaign = run_campaign(
        network, GRID, scenarios=SCENARIOS, seed=SEED, **BUDGET, **overrides
    )
    return campaign_summary(campaign) + "\n"


@pytest.fixture(scope="module")
def golden() -> str:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name} --regenerate`"
    )
    return GOLDEN_PATH.read_text()


def test_serial_path_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network) == golden


def test_process_backend_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, backend="process", n_workers=2) == golden


def test_cell_parallel_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, cell_workers=2) == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(_render())
    print(f"wrote {GOLDEN_PATH}")
