"""Fleet campaign behaviour: determinism, checkpoints, ranking semantics.

The fleet campaign stacks a third record kind (``fleet``) onto the shared
JSONL checkpoint.  These tests pin:

* serial, cell-parallel and checkpoint-resumed sweeps produce identical
  cells and identical :func:`repro.core.report.fleet_summary` bytes,
* a resumed sweep restores every fleet cell without recomputing, while an
  edited mix definition re-runs exactly the affected cells,
* a fleet checkpoint written under another seed refuses to load,
* mix validation (duplicate names, unknown routers/selections, aliased
  platform names) fails fast, before any search tokens are spent,
* the ranking is lexicographic — SLO first, joules second — and
  ``best_mix`` refuses to crown a violator.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import FleetMix, run_fleet_campaign, select_front_point
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.core.report import fleet_summary, fleet_table
from repro.errors import ConfigurationError
from repro.serving import AutoscalerPolicy
from repro.serving.families import DiurnalFamily, SteadyPoissonFamily
from repro.soc.presets import get_platform


def _mixes():
    return (
        FleetMix(name="xavier-solo", counts=(("jetson-agx-xavier", 1),)),
        FleetMix(
            name="hetero",
            counts=(("jetson-agx-xavier", 1), ("jetson-nano-class", 1)),
            selection="balanced",
            router="energy-aware",
            autoscaler=AutoscalerPolicy(min_instances=1, window_ms=400.0),
        ),
    )


def _families():
    return (
        SteadyPoissonFamily(rate_rps=40.0),
        DiurnalFamily(peak_rps=70.0, trough_fraction=0.2, period_ms=800.0),
    )


BUDGET = dict(
    members_per_family=2,
    duration_ms=600.0,
    p99_slo_ms=150.0,
    generations=2,
    population_size=6,
    seed=3,
)


def _run(tiny_network, **overrides):
    options = {**BUDGET, **overrides}
    mixes = options.pop("mixes", _mixes())
    families = options.pop("families", _families())
    return run_fleet_campaign(tiny_network, mixes, families=families, **options)


class TestDeterminism:
    def test_serial_parallel_resume_identical(self, tiny_network, tmp_path):
        serial = _run(tiny_network)
        parallel = _run(tiny_network, cell_workers=2)
        checkpointed = _run(tiny_network, checkpoint_dir=tmp_path)
        resumed = _run(tiny_network, checkpoint_dir=tmp_path)
        reference = fleet_summary(serial)
        assert fleet_summary(parallel) == reference
        assert fleet_summary(checkpointed) == reference
        assert fleet_summary(resumed) == reference
        # Cell payloads agree structurally, not just in rendering.
        for left, right in zip(serial.cells, resumed.cells):
            assert left == right

    def test_cells_come_out_family_major(self, tiny_network):
        fleet = _run(tiny_network)
        expected = [
            (mix, family)
            for family in fleet.family_names
            for mix in fleet.mix_names
        ]
        assert [
            (cell.mix_name, cell.family_name) for cell in fleet.cells
        ] == expected
        assert fleet.members_per_family == BUDGET["members_per_family"]
        for cell in fleet.cells:
            assert len(cell.members) == BUDGET["members_per_family"]
            seeds = [outcome.traffic_seed for outcome in cell.members]
            assert len(set(seeds)) == len(seeds)


class TestCheckpoint:
    def test_resume_restores_every_fleet_cell(
        self, tiny_network, tmp_path, monkeypatch
    ):
        first = _run(tiny_network, checkpoint_dir=tmp_path)

        calls = []
        import repro.campaign.fleet_runner as fleet_runner

        original = fleet_runner._run_fleet_cell
        monkeypatch.setattr(
            fleet_runner,
            "_run_fleet_cell",
            lambda task: calls.append(task) or original(task),
        )
        resumed = _run(tiny_network, checkpoint_dir=tmp_path)
        assert calls == []  # every fleet cell came from the checkpoint
        assert fleet_summary(resumed) == fleet_summary(first)

    def test_checkpoint_holds_fleet_records(self, tiny_network, tmp_path):
        _run(tiny_network, checkpoint_dir=tmp_path)
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / CampaignCheckpoint.FILENAME)
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        assert kinds.count("fleet") == len(_mixes()) * len(_families())

    def test_edited_mix_reruns_only_its_cells(
        self, tiny_network, tmp_path, monkeypatch
    ):
        first = _run(tiny_network, checkpoint_dir=tmp_path)

        calls = []
        import repro.campaign.fleet_runner as fleet_runner

        original = fleet_runner._run_fleet_cell
        monkeypatch.setattr(
            fleet_runner,
            "_run_fleet_cell",
            lambda task: calls.append((task.mix_name, task.family.name))
            or original(task),
        )
        edited = (
            _mixes()[0],
            dataclasses.replace(_mixes()[1], router="deadline-aware"),
        )
        changed = _run(tiny_network, checkpoint_dir=tmp_path, mixes=edited)
        assert sorted(calls) == sorted(
            ("hetero", family.name) for family in _families()
        )
        for family in changed.family_names:
            assert (
                changed.cell("xavier-solo", family)
                == first.cell("xavier-solo", family)
            )

    def test_fleet_seed_mismatch_raises(self, tiny_network, tmp_path):
        _run(tiny_network, checkpoint_dir=tmp_path)
        path = tmp_path / CampaignCheckpoint.FILENAME
        fleet_lines = [
            line
            for line in path.read_text(encoding="utf-8").splitlines()
            if json.loads(line)["kind"] == "fleet"
        ]
        path.write_text("\n".join(fleet_lines) + "\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="refusing to mix seeds"):
            _run(tiny_network, checkpoint_dir=tmp_path, seed=4)


class TestValidation:
    def test_mix_validation(self):
        with pytest.raises(ConfigurationError):
            FleetMix(name="", counts=(("jetson-agx-xavier", 1),))
        with pytest.raises(ConfigurationError):
            FleetMix(name="x", counts=())
        with pytest.raises(ConfigurationError):
            FleetMix(name="x", counts=(("jetson-agx-xavier", 0),))
        with pytest.raises(ConfigurationError):
            FleetMix(
                name="x", counts=(("jetson-agx-xavier", 1),), selection="fastest"
            )
        with pytest.raises(ConfigurationError):
            FleetMix(
                name="x", counts=(("jetson-agx-xavier", 1),), router="teleport"
            )
        assert FleetMix(
            name="x", counts=(("jetson-agx-xavier", 2),)
        ).total_instances == 2

    def test_campaign_input_validation(self, tiny_network):
        with pytest.raises(ConfigurationError, match="at least one mix"):
            run_fleet_campaign(tiny_network, ())
        duplicated = (_mixes()[0], _mixes()[0])
        with pytest.raises(ConfigurationError, match="distinct names"):
            run_fleet_campaign(tiny_network, duplicated)
        with pytest.raises(ConfigurationError, match="FleetMix"):
            run_fleet_campaign(tiny_network, ("jetson-agx-xavier",))
        with pytest.raises(ConfigurationError, match="members_per_family"):
            _run(tiny_network, members_per_family=0)

    def test_aliased_platform_name_rejected(self, tiny_network):
        xavier = get_platform("jetson-agx-xavier")
        impostor = dataclasses.replace(
            get_platform("jetson-nano-class"), name=xavier.name
        )
        mixes = (
            FleetMix(name="real", counts=((xavier, 1),)),
            FleetMix(name="fake", counts=((impostor, 1),)),
        )
        with pytest.raises(ConfigurationError, match="same-named boards"):
            run_fleet_campaign(tiny_network, mixes)


class TestRanking:
    @pytest.fixture(scope="class")
    def fleet(self, request, tmp_path_factory):
        tiny_network = request.getfixturevalue("tiny_network")
        return _run(tiny_network)

    def test_selection_modes_pick_from_the_front(self, fleet):
        scenario = fleet.campaign.scenario_names[0]
        front = fleet.campaign.front("jetson-agx-xavier", scenario)
        energy = select_front_point(front, "energy")
        latency = select_front_point(front, "latency")
        balanced = select_front_point(front, "balanced")
        for chosen in (energy, latency, balanced):
            assert chosen in front
        assert latency.latency_ms <= energy.latency_ms
        assert energy.energy_mj <= latency.energy_mj
        assert balanced.latency_ms <= energy.latency_ms + 1e-9
        assert balanced.energy_mj <= latency.energy_mj + 1e-9
        with pytest.raises(ConfigurationError):
            select_front_point(front, "fastest")
        with pytest.raises(ConfigurationError):
            select_front_point((), "energy")

    def test_deployments_cover_used_selections(self, fleet):
        assert set(fleet.deployments) == {
            ("jetson-agx-xavier", "energy"),
            ("jetson-agx-xavier", "balanced"),
            ("jetson-nano-class", "balanced"),
        }
        for (platform_name, selection), deployment in fleet.deployments.items():
            assert deployment.name == f"{platform_name}:{selection}"

    def test_ranking_is_slo_gated(self, fleet):
        for family in fleet.family_names:
            ranked = fleet.ranking(family)
            assert sorted(cell.mix_name for cell in ranked) == sorted(
                fleet.mix_names
            )
            # Within-SLO cells precede violators; joules ascend inside the
            # within-SLO block.
            flags = [cell.within_slo for cell in ranked]
            assert flags == sorted(flags, reverse=True)
            within = [cell.total_joules for cell in ranked if cell.within_slo]
            assert within == sorted(within)
            if ranked[0].within_slo:
                assert fleet.best_mix(family) == ranked[0].mix_name

    def test_best_mix_refuses_slo_violators(self, fleet):
        # Tighten every cell's SLO until nothing passes: best_mix must raise
        # rather than crown the least-bad violator.
        squeezed = dataclasses.replace(
            fleet,
            cells=tuple(
                dataclasses.replace(cell, p99_slo_ms=1e-6) for cell in fleet.cells
            ),
            p99_slo_ms=1e-6,
        )
        family = squeezed.family_names[0]
        assert all(not cell.within_slo for cell in squeezed.ranking(family))
        with pytest.raises(ConfigurationError, match="no swept mix"):
            squeezed.best_mix(family)

    def test_cell_lookup_and_errors(self, fleet):
        cell = fleet.cell("hetero", "diurnal")
        assert cell.mix_name == "hetero"
        assert cell.daily_joules(2_000_000.0) == pytest.approx(
            2.0 * cell.daily_joules()
        )
        with pytest.raises(ConfigurationError):
            fleet.cell("nonexistent", "diurnal")
        with pytest.raises(ConfigurationError):
            fleet.ranking("nonexistent")

    def test_report_renders_every_cell(self, fleet):
        table = fleet_table(fleet)
        summary = fleet_summary(fleet)
        for mix in fleet.mix_names:
            assert mix in table and mix in summary
        for family in fleet.family_names:
            assert family in table and family in summary
        assert "fleet ranking (joules within p99 SLO, best first):" in summary
