"""Regression: non-ASCII platform/family names survive every JSONL store.

``EvaluationCache`` and ``CampaignCheckpoint`` write their JSONL with
``ensure_ascii=False`` through an explicitly ``utf-8`` handle (a
locale-dependent default encoding would crash or mojibake on Windows), so a
platform derived with a non-ASCII name — entirely legal via
:func:`repro.soc.presets.derive` — must round-trip byte-identically through
persistent caches and checkpoints.
"""

from __future__ import annotations

import pytest

from repro.campaign import run_campaign, run_serving_campaign
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.core.report import campaign_summary, traffic_ranking_summary
from repro.engine.cache import EvaluationCache
from repro.serving.families import SteadyPoissonFamily
from repro.soc.presets import derive, get_platform

#: Mixed scripts on purpose: Cyrillic, CJK and a micro sign.
NON_ASCII_NAMES = ("ксавьер-µ", "移动端-低功耗")


@pytest.fixture(scope="module")
def non_ascii_platforms():
    return (
        derive(get_platform("jetson-nano-class"), NON_ASCII_NAMES[0]),
        derive(get_platform("mobile-big-little"), NON_ASCII_NAMES[1], power_scale=0.8),
    )


BUDGET = dict(generations=2, population_size=6, seed=1)


class TestNonAsciiCampaign:
    def test_checkpointed_campaign_round_trips(self, tiny_network, tmp_path, non_ascii_platforms):
        cache_path = tmp_path / "cache.jsonl"
        first = run_campaign(
            tiny_network,
            non_ascii_platforms,
            cache=cache_path,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        # The names are stored as readable UTF-8, not \\u escapes.
        raw = (tmp_path / CampaignCheckpoint.FILENAME).read_bytes()
        for name in NON_ASCII_NAMES:
            assert name.encode("utf-8") in raw
        # The persistent cache reloads cleanly (no malformed-line recovery).
        reloaded = EvaluationCache(path=cache_path)
        assert reloaded.stats.loaded == len(reloaded)
        assert len(reloaded) > 0
        # Resuming from the checkpoint reproduces the summary byte for byte.
        resumed = run_campaign(
            tiny_network,
            non_ascii_platforms,
            cache=tmp_path / "cache2.jsonl",
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        assert campaign_summary(resumed) == campaign_summary(first)
        assert NON_ASCII_NAMES[0] in campaign_summary(first)

    def test_serving_campaign_with_non_ascii_family_name(
        self, tiny_network, tmp_path, non_ascii_platforms
    ):
        family = SteadyPoissonFamily(rate_rps=30.0, name="стабильный-поток")
        kwargs = dict(
            families=(family,),
            members_per_family=1,
            duration_ms=400.0,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        first = run_serving_campaign(tiny_network, non_ascii_platforms, **kwargs)
        raw = (tmp_path / CampaignCheckpoint.FILENAME).read_bytes()
        assert family.name.encode("utf-8") in raw
        resumed = run_serving_campaign(tiny_network, non_ascii_platforms, **kwargs)
        assert traffic_ranking_summary(resumed) == traffic_ranking_summary(first)
        assert family.name in traffic_ranking_summary(first)
