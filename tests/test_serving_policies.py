"""Unit tests for deployments, serving policies and the per-request controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.controller import ThresholdExitController
from repro.errors import ConfigurationError
from repro.serving.policies import (
    AdaptiveSwitchPolicy,
    Deployment,
    DvfsGovernorPolicy,
    StaticPolicy,
    rescale_deployment,
)


@pytest.fixture()
def frugal():
    return Deployment(
        name="frugal",
        unit_names=("dla0", "dla1"),
        service_ms=(30.0, 45.0),
        energy_mj=(8.0, 10.0),
        stage_accuracies=(0.6, 0.85),
        dvfs_scales=(1.0, 1.0),
    )


@pytest.fixture()
def fast():
    return Deployment(
        name="fast",
        unit_names=("gpu",),
        service_ms=(6.0,),
        energy_mj=(80.0,),
        stage_accuracies=(0.85,),
        dvfs_scales=(1.0,),
    )


class TestDeployment:
    def test_cumulative_views(self, frugal):
        assert frugal.cumulative_latency_ms(0) == 30.0
        assert frugal.cumulative_latency_ms(1) == 45.0
        assert frugal.cumulative_energy_mj(1) == pytest.approx(18.0)
        assert frugal.bottleneck_service_ms == 45.0
        assert frugal.capacity_rps() == pytest.approx(1000.0 / 45.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Deployment(
                name="bad",
                unit_names=("gpu",),
                service_ms=(1.0, 2.0),
                energy_mj=(1.0,),
                stage_accuracies=(0.5,),
                dvfs_scales=(1.0,),
            )
        with pytest.raises(ConfigurationError):
            Deployment(
                name="bad",
                unit_names=("gpu", "dla0"),
                service_ms=(1.0, 2.0),
                energy_mj=(1.0, 1.0),
                stage_accuracies=(0.9, 0.5),  # decreasing
                dvfs_scales=(1.0, 1.0),
            )

    def test_from_evaluated(self, tiny_config_evaluator, tiny_mapping_config):
        evaluated = tiny_config_evaluator.evaluate(tiny_mapping_config)
        deployment = Deployment.from_evaluated(evaluated, name="searched")
        assert deployment.name == "searched"
        assert deployment.unit_names == ("gpu", "dla0", "dla1")
        assert deployment.num_stages == evaluated.profile.num_stages
        for stage in range(deployment.num_stages):
            assert deployment.cumulative_latency_ms(stage) == pytest.approx(
                evaluated.profile.cumulative_latency_ms(stage)
            )
            assert deployment.cumulative_energy_mj(stage) == pytest.approx(
                evaluated.profile.cumulative_energy_mj(stage)
            )


class TestRescaleDeployment:
    def test_identity_at_reference_point(self, frugal, platform):
        rescaled = rescale_deployment(frugal, platform, 1.0)
        assert rescaled.service_ms == frugal.service_ms
        assert rescaled.energy_mj == frugal.energy_mj
        assert rescaled.dvfs_scales == (1.0, 1.0)

    def test_downscaling_follows_power_model(self, fast, platform):
        unit = platform.unit("gpu")
        rescaled = rescale_deployment(fast, platform, 0.5)
        index = unit.dvfs.nearest_index(0.5)
        scale = unit.dvfs.scale(index)
        assert rescaled.dvfs_scales == (scale,)
        assert rescaled.service_ms[0] == pytest.approx(6.0 / scale)
        expected_energy = 80.0 * (1.0 / scale) * (
            unit.power.power_w(scale) / unit.power.power_w(1.0)
        )
        assert rescaled.energy_mj[0] == pytest.approx(expected_energy)
        assert rescaled.service_ms[0] > fast.service_ms[0]

    def test_nearest_index_snaps_and_validates(self, platform):
        table = platform.unit("gpu").dvfs
        scales = table.scales()
        for target in (0.3, 0.5, 0.77, 1.0):
            snapped = table.scale(table.nearest_index(target))
            assert min(abs(s - target) for s in scales) == pytest.approx(
                abs(snapped - target)
            )
        assert table.nearest_index(1.0) == len(table) - 1
        with pytest.raises(ConfigurationError):
            table.nearest_index(0.0)
        with pytest.raises(ConfigurationError):
            table.nearest_index(1.5)


class TestStaticPolicy:
    def test_always_same_deployment(self, frugal):
        policy = StaticPolicy(frugal)
        assert policy.select(0, 0.0) is frugal
        assert policy.select(100, 5.0) is frugal


class TestAdaptiveSwitchPolicy:
    def test_hysteresis_band(self, frugal, fast):
        policy = AdaptiveSwitchPolicy(frugal, fast, high_watermark=8, low_watermark=2)
        assert policy.select(0, 0.0) is frugal
        assert policy.select(7, 1.0) is frugal  # below high watermark
        assert policy.select(8, 2.0) is fast  # crosses the high watermark
        assert policy.select(5, 3.0) is fast  # inside the dead band: stays
        assert policy.select(3, 4.0) is fast
        assert policy.select(2, 5.0) is frugal  # drains to the low watermark
        assert policy.switches == 2

    def test_reset_clears_state(self, frugal, fast):
        policy = AdaptiveSwitchPolicy(frugal, fast, high_watermark=4, low_watermark=1)
        policy.select(10, 0.0)
        assert policy.surging
        policy.reset()
        assert not policy.surging
        assert policy.switches == 0
        assert policy.select(2, 0.0) is frugal

    def test_watermark_validation(self, frugal, fast):
        with pytest.raises(ConfigurationError):
            AdaptiveSwitchPolicy(frugal, fast, high_watermark=2, low_watermark=2)
        with pytest.raises(ConfigurationError):
            AdaptiveSwitchPolicy(frugal, fast, high_watermark=1, low_watermark=-1)


class TestDvfsGovernorPolicy:
    def test_walks_one_rung_at_a_time(self, fast, platform):
        policy = DvfsGovernorPolicy(
            fast, platform, levels=(0.4, 0.7, 1.0), high_watermark=4, low_watermark=1
        )
        assert policy.rung == 0
        slow = policy.select(0, 0.0)
        assert policy.rung == 0
        policy.select(5, 1.0)
        assert policy.rung == 1
        policy.select(9, 2.0)
        assert policy.rung == 2
        fast_rung = policy.select(9, 3.0)  # already at the top
        assert policy.rung == 2
        assert fast_rung.service_ms[0] < slow.service_ms[0]
        policy.select(0, 4.0)
        assert policy.rung == 1

    def test_rungs_ordered_by_speed(self, fast, platform):
        policy = DvfsGovernorPolicy(fast, platform, levels=(0.4, 0.6, 0.8, 1.0))
        services = [rung.service_ms[0] for rung in policy.rungs]
        assert services == sorted(services, reverse=True)

    def test_validation(self, fast, platform):
        with pytest.raises(ConfigurationError):
            DvfsGovernorPolicy(fast, platform, levels=())
        with pytest.raises(ConfigurationError):
            DvfsGovernorPolicy(fast, platform, high_watermark=1, low_watermark=1)


class TestControllerDecide:
    def test_ideal_controller_reproduces_ideal_mapping(self):
        controller = ThresholdExitController(threshold=0.5, confidence_noise=0.0, seed=0)
        accuracies = (0.5, 0.7, 0.9)
        # Difficulty below the first stage's accuracy: exits immediately.
        assert controller.decide(0.3, accuracies).stage == 0
        # Between stage 1 and 2: exits at stage 1, correctly.
        decision = controller.decide(0.6, accuracies)
        assert decision.stage == 1 and decision.correct and not decision.premature
        # Harder than every stage: traverses the cascade and is wrong.
        decision = controller.decide(0.95, accuracies)
        assert decision.stage == 2 and not decision.correct

    def test_decide_matches_simulate_statistics(self, tiny_dynamic, mapping_evaluator):
        from repro.dynamics.accuracy import AccuracyModel

        accuracies = AccuracyModel().stage_accuracies(tiny_dynamic)
        profile = mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (9, 5, 5))
        controller = ThresholdExitController(threshold=0.7, confidence_noise=0.1, seed=0)
        aggregate = controller.simulate(accuracies, profile, num_samples=4000)

        rng = np.random.default_rng(0)
        solo = ThresholdExitController(threshold=0.7, confidence_noise=0.1, seed=1)
        difficulties = rng.random(4000)
        decisions = [solo.decide(d, accuracies, rng=rng) for d in difficulties]
        accuracy = float(np.mean([decision.correct for decision in decisions]))
        stages = float(np.mean([decision.stage + 1 for decision in decisions]))
        assert accuracy == pytest.approx(aggregate.accuracy, abs=0.03)
        assert stages == pytest.approx(aggregate.expected_stages, abs=0.1)

    def test_decide_validation(self):
        controller = ThresholdExitController(seed=0)
        with pytest.raises(ConfigurationError):
            controller.decide(1.5, (0.5, 0.9))
        with pytest.raises(ConfigurationError):
            controller.decide(0.5, ())
        with pytest.raises(ConfigurationError):
            controller.decide(0.5, (0.9, 0.5))


class TestQueueingApproximation:
    """The M/D/1 helpers must agree with the discrete-event simulator."""

    def test_stage_visit_fractions_and_bottleneck(self, frugal):
        # Every request pays stage 0; only the 40% the first exit cannot
        # classify reach stage 1 — making stage 0 the serving bottleneck
        # (30.0 > 45.0 * 0.4) even though stage 1 is slower in isolation.
        assert frugal.stage_visit_fractions == (1.0, pytest.approx(0.4))
        assert frugal.bottleneck_busy_ms == pytest.approx(30.0)
        assert frugal.effective_capacity_rps() == pytest.approx(1000.0 / 30.0)
        # Early exits buy throughput over the all-stages worst case.
        assert frugal.effective_capacity_rps() > frugal.capacity_rps()

    def test_single_stage_reduces_to_service_time(self, fast):
        assert fast.bottleneck_busy_ms == pytest.approx(6.0)
        assert fast.effective_capacity_rps() == pytest.approx(fast.capacity_rps())
        assert fast.expected_energy_per_request_mj == pytest.approx(80.0)

    def test_expected_energy_is_visit_weighted(self, frugal):
        assert frugal.expected_energy_per_request_mj == pytest.approx(
            8.0 + 0.4 * 10.0
        )

    def test_expected_wait_shape(self, fast):
        # Zero at zero load, strictly increasing, infinite at saturation.
        assert fast.expected_wait_ms(0.0) == 0.0
        waits = [fast.expected_wait_ms(rate) for rate in (20.0, 60.0, 100.0, 150.0)]
        assert all(a < b for a, b in zip(waits, waits[1:]))
        assert fast.expected_wait_ms(1000.0 / 6.0) == float("inf")
        assert fast.expected_wait_ms(400.0) == float("inf")

    def test_wait_budget_capacity_inverts_expected_wait(self, frugal):
        # effective_capacity_rps(W) is exactly the rate whose predicted mean
        # wait is W, and tightening the budget shrinks the headroom.
        for budget in (2.0, 10.0, 40.0):
            rate = frugal.effective_capacity_rps(max_wait_ms=budget)
            assert rate < frugal.effective_capacity_rps()
            assert frugal.expected_wait_ms(rate) == pytest.approx(budget)
        assert frugal.effective_capacity_rps(max_wait_ms=2.0) < (
            frugal.effective_capacity_rps(max_wait_ms=40.0)
        )
        with pytest.raises(ConfigurationError):
            frugal.effective_capacity_rps(max_wait_ms=0.0)

    @pytest.mark.parametrize(
        "rate_rps, rel",
        [
            (30.0, 0.40),  # rho = 0.3: short queues, wide relative tolerance
            (80.0, 0.30),  # rho = 0.8: heavy load, waits dominated by rho
        ],
    )
    def test_expected_wait_matches_simulator(self, platform, rate_rps, rel):
        from repro.serving import PoissonArrivals, StaticPolicy, TrafficSimulator
        from repro.serving.metrics import compute_metrics

        # Single deterministic stage on one unit: a textbook M/D/1 queue.
        deployment = Deployment(
            name="md1",
            unit_names=("gpu",),
            service_ms=(10.0,),
            energy_mj=(25.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        simulator = TrafficSimulator(platform, StaticPolicy(deployment), seed=7)
        result = simulator.run(
            PoissonArrivals(rate_rps).generate(duration_ms=120_000.0, seed=7)
        )
        measured = compute_metrics(result).mean_queueing_ms
        predicted = deployment.expected_wait_ms(rate_rps)
        assert measured == pytest.approx(predicted, rel=rel)

    def test_effective_capacity_matches_saturated_throughput(self, platform):
        from repro.serving import ConstantRate, StaticPolicy, TrafficSimulator
        from repro.serving.metrics import compute_metrics

        # Cascade with early exits: visit fractions (1.0, 0.5, 0.3) put the
        # bottleneck on dla0 at 20 * 0.5 = 10 ms/request, not the 30 ms
        # final stage — so the fleet estimate is ~100 rps, 3x the
        # all-stages worst case.  Overload the queue and check the event
        # loop actually drains at that rate.
        deployment = Deployment(
            name="cascade",
            unit_names=("gpu", "dla0", "dla1"),
            service_ms=(5.0, 20.0, 30.0),
            energy_mj=(40.0, 10.0, 12.0),
            stage_accuracies=(0.5, 0.7, 0.9),
            dvfs_scales=(1.0, 1.0, 1.0),
        )
        assert deployment.effective_capacity_rps() == pytest.approx(100.0)
        simulator = TrafficSimulator(platform, StaticPolicy(deployment), seed=11)
        result = simulator.run(
            ConstantRate(250.0).generate(duration_ms=20_000.0, seed=11)
        )
        measured = compute_metrics(result).throughput_rps
        assert measured == pytest.approx(
            deployment.effective_capacity_rps(), rel=0.10
        )
        # ... and the estimate is far closer than the worst-case bound.
        assert measured > 2.0 * deployment.capacity_rps()
