"""Property tests for cross-platform config translation (hypothesis).

Round-tripping a mapping A -> B -> A cannot restore information that B's
vocabulary cannot hold (a platform without accelerators erases "this stage
ran on a DLA"), so the properties are stated exactly at the strength that
*is* guaranteed, for every ordered preset pair in the registry:

* structure always survives: stage count, distinct units, valid DVFS
  indices, and the platform-agnostic partition/indicator matrices;
* kinds survive translation: for every architectural kind, at least as many
  stages regain it on the round trip as kept it on the way out;
* DVFS rebinds by nearest scale: whenever the source operating point lies
  within the intermediate unit's ladder range, the round-tripped scaling
  factor stays within one ladder step of the original, where a "step" is
  the widest gap of the coarser ladder involved (each nearest-scale hop
  quantises with at most half that error);
* the round trip is idempotent: applying A -> B -> A a second time is a
  fixed point, so repeated transfers cannot drift.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import translate_config
from repro.nn.graph import NetworkGraph
from repro.nn.layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer
from repro.search.space import SearchSpace
from repro.soc.presets import platform_registry

#: Built once: hypothesis re-runs the test body hundreds of times.
_PLATFORMS = {name: factory() for name, factory in platform_registry().items()}

_PAIRS = sorted(
    (a, b) for a in _PLATFORMS for b in _PLATFORMS if a != b
)


def _tiny_network() -> NetworkGraph:
    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny-roundtrip",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


_NETWORK = _tiny_network()
_SPACES = {}


def _space_for(source_name: str, target_name: str) -> SearchSpace:
    """Search space on the source, sized so the mapping transfers both ways."""
    source = _PLATFORMS[source_name]
    target = _PLATFORMS[target_name]
    stages = min(source.num_units, target.num_units)
    key = (source_name, stages)
    if key not in _SPACES:
        _SPACES[key] = SearchSpace(network=_NETWORK, platform=source, num_stages=stages)
    return _SPACES[key]


@settings(max_examples=200, deadline=None)
@given(pair=st.sampled_from(_PAIRS), sample_seed=st.integers(0, 2**32 - 1))
def test_roundtrip_properties(pair, sample_seed):
    source_name, target_name = pair
    source, target = _PLATFORMS[source_name], _PLATFORMS[target_name]
    config = _space_for(source_name, target_name).sample(sample_seed)

    outbound = translate_config(config, source, target)
    roundtrip = translate_config(outbound, target, source)

    # -- structure ----------------------------------------------------------
    for translated, platform in ((outbound, target), (roundtrip, source)):
        assert translated.num_stages == config.num_stages
        assert len(set(translated.unit_names)) == len(translated.unit_names)
        assert set(translated.unit_names) <= set(platform.unit_names)
        for name, index in zip(translated.unit_names, translated.dvfs_indices):
            assert 0 <= index < platform.unit(name).num_dvfs_points()
        # P and I describe the network, not the board: they never change.
        assert translated.partition is config.partition
        assert translated.indicator is config.indicator

    # -- kinds survive translation (counted per kind) -----------------------
    survived = Counter(
        source.unit(original).kind
        for original, via in zip(config.unit_names, outbound.unit_names)
        if target.unit(via).kind == source.unit(original).kind
    )
    regained = Counter(source.unit(name).kind for name in roundtrip.unit_names)
    for kind, count in survived.items():
        assert regained[kind] >= count, (
            f"{count} stages kept kind {kind} via {target_name} but only "
            f"{regained[kind]} regained it on {source_name}"
        )

    # -- DVFS rebinds by nearest scale, within one ladder step --------------
    def max_gap(scales):
        return max(
            (b - a for a, b in zip(scales, scales[1:])), default=0.0
        )

    for stage in range(config.num_stages):
        source_unit = source.unit(config.unit_names[stage])
        via_unit = target.unit(outbound.unit_names[stage])
        back_unit = source.unit(roundtrip.unit_names[stage])
        original_scale = source_unit.dvfs.scale(config.dvfs_indices[stage])
        via_scale = via_unit.dvfs.scale(outbound.dvfs_indices[stage])
        back_scale = back_unit.dvfs.scale(roundtrip.dvfs_indices[stage])
        # Each hop snaps to the nearest point of the next ladder.
        assert outbound.dvfs_indices[stage] == via_unit.dvfs.nearest_index(original_scale)
        assert roundtrip.dvfs_indices[stage] == back_unit.dvfs.nearest_index(via_scale)
        if original_scale < via_unit.dvfs.scales()[0]:
            # Below the intermediate ladder: clamped to its slowest point,
            # the original operating speed is genuinely unrepresentable.
            continue
        step = max(max_gap(via_unit.dvfs.scales()), max_gap(back_unit.dvfs.scales()))
        assert abs(back_scale - original_scale) <= step + 1e-12

    # -- idempotence --------------------------------------------------------
    second = translate_config(
        translate_config(roundtrip, source, target), target, source
    )
    assert second == roundtrip


@pytest.mark.parametrize("name", sorted(_PLATFORMS))
def test_self_translation_is_identity(name):
    """A -> A must be a no-op for any sampled config."""
    platform = _PLATFORMS[name]
    space = SearchSpace(network=_NETWORK, platform=platform)
    config = space.sample(0)
    assert translate_config(config, platform, platform) == config
