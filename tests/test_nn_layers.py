"""Unit tests for the symbolic layer descriptors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import (
    BYTES_PER_ELEMENT,
    AttentionLayer,
    Conv2dLayer,
    FeedForwardLayer,
    LinearLayer,
)


def make_conv(**overrides):
    defaults = dict(
        name="conv",
        width=64,
        in_width=32,
        kernel_size=3,
        stride=1,
        in_spatial=(16, 16),
        out_spatial=(16, 16),
    )
    defaults.update(overrides)
    return Conv2dLayer(**defaults)


class TestConv2dLayer:
    def test_flops_formula(self):
        layer = make_conv()
        expected = 2 * 3 * 3 * 32 * 64 * 16 * 16
        assert layer.flops() == pytest.approx(expected)

    def test_flops_scale_linearly_with_out_units(self):
        layer = make_conv()
        assert layer.flops(out_units=32) == pytest.approx(layer.flops() / 2)

    def test_flops_scale_linearly_with_in_units(self):
        layer = make_conv()
        assert layer.flops(in_units=16) == pytest.approx(layer.flops() / 2)

    def test_grouped_convolution_reduces_flops(self):
        dense = make_conv()
        grouped = make_conv(groups=8)
        assert grouped.flops() == pytest.approx(dense.flops() / 8)

    def test_fused_overhead_multiplies_flops(self):
        plain = make_conv()
        fused = make_conv(fused_overhead=1.10)
        assert fused.flops() == pytest.approx(plain.flops() * 1.10)

    def test_params_include_weights_and_norm(self):
        layer = make_conv()
        assert layer.params() == pytest.approx(3 * 3 * 32 * 64 + 3 * 64)

    def test_output_elements_and_bytes(self):
        layer = make_conv()
        assert layer.output_elements() == 64 * 16 * 16
        assert layer.output_bytes() == 64 * 16 * 16 * BYTES_PER_ELEMENT

    def test_input_elements_use_input_spatial(self):
        layer = make_conv(in_spatial=(32, 32), out_spatial=(16, 16), stride=2)
        assert layer.input_elements() == 32 * 32 * 32
        assert layer.input_elements(16) == 16 * 32 * 32

    def test_out_units_out_of_range_rejected(self):
        layer = make_conv()
        with pytest.raises(ConfigurationError):
            layer.flops(out_units=65)
        with pytest.raises(ConfigurationError):
            layer.flops(out_units=0)

    def test_in_units_out_of_range_rejected(self):
        layer = make_conv()
        with pytest.raises(ConfigurationError):
            layer.flops(in_units=33)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            make_conv(kernel_size=0)
        with pytest.raises(ConfigurationError):
            make_conv(out_spatial=(0, 16))
        with pytest.raises(ConfigurationError):
            make_conv(groups=0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            make_conv(width=0)
        with pytest.raises(ConfigurationError):
            make_conv(in_width=0)

    def test_fused_overhead_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            make_conv(fused_overhead=0.9)

    def test_kind_and_granularity(self):
        layer = make_conv()
        assert layer.kind == "conv2d"
        assert layer.partition_granularity == 1

    def test_with_name_returns_renamed_copy(self):
        layer = make_conv()
        renamed = layer.with_name("other")
        assert renamed.name == "other"
        assert renamed.width == layer.width
        assert layer.name == "conv"


class TestLinearLayer:
    def test_flops_formula(self):
        layer = LinearLayer(name="fc", width=100, in_width=512, tokens=1)
        assert layer.flops() == pytest.approx(2 * 512 * 100)

    def test_tokens_scale_flops(self):
        one = LinearLayer(name="fc", width=64, in_width=64, tokens=1)
        many = LinearLayer(name="fc", width=64, in_width=64, tokens=16)
        assert many.flops() == pytest.approx(16 * one.flops())

    def test_params(self):
        layer = LinearLayer(name="fc", width=100, in_width=512)
        assert layer.params() == 512 * 100 + 100

    def test_output_and_input_elements(self):
        layer = LinearLayer(name="fc", width=100, in_width=512, tokens=4)
        assert layer.output_elements() == 4 * 100
        assert layer.input_elements() == 4 * 512

    def test_invalid_tokens_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearLayer(name="fc", width=10, in_width=10, tokens=0)


class TestAttentionLayer:
    def make(self, **overrides):
        defaults = dict(name="attn", width=192, in_width=192, tokens=64, num_heads=6)
        defaults.update(overrides)
        return AttentionLayer(**defaults)

    def test_head_dim_and_granularity(self):
        layer = self.make()
        assert layer.head_dim == 32
        assert layer.partition_granularity == 32

    def test_width_must_divide_heads(self):
        with pytest.raises(ConfigurationError):
            self.make(width=190)

    def test_flops_formula(self):
        layer = self.make()
        tokens, dim = 64, 192
        qkv = 3 * 2 * tokens * dim * dim
        attention = 4 * tokens * tokens * dim
        projection = 2 * tokens * dim * dim
        assert layer.flops() == pytest.approx(qkv + attention + projection)

    def test_partial_heads_cost_less(self):
        layer = self.make()
        assert layer.flops(out_units=96) < layer.flops()

    def test_output_elements(self):
        layer = self.make()
        assert layer.output_elements() == 64 * 192
        assert layer.output_elements(96) == 64 * 96

    def test_params_positive_and_monotone(self):
        layer = self.make()
        assert layer.params(out_units=64) < layer.params()

    def test_kind(self):
        assert self.make().kind == "attention"


class TestFeedForwardLayer:
    def make(self, **overrides):
        defaults = dict(name="mlp", width=192, in_width=192, tokens=64, expansion=4.0)
        defaults.update(overrides)
        return FeedForwardLayer(**defaults)

    def test_hidden_units_follow_expansion(self):
        layer = self.make()
        assert layer.hidden_units() == 768
        assert layer.hidden_units(96) == 384

    def test_flops_formula(self):
        layer = self.make()
        expected = 2 * 64 * 192 * 768 + 2 * 64 * 768 * 192
        assert layer.flops() == pytest.approx(expected)

    def test_invalid_expansion_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(expansion=0.0)

    def test_output_elements(self):
        layer = self.make()
        assert layer.output_elements() == 64 * 192

    def test_partial_width_reduces_all_costs(self):
        layer = self.make()
        assert layer.flops(out_units=96) < layer.flops()
        assert layer.params(out_units=96) < layer.params()
        assert layer.output_bytes(96) < layer.output_bytes()

    def test_kind(self):
        assert self.make().kind == "feedforward"
