"""Unit tests for DVFS tables and the linear power model (Eq. 10)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.dvfs import DvfsTable, OperatingPoint, PowerModel


class TestOperatingPoint:
    def test_valid_point(self):
        point = OperatingPoint(frequency_mhz=1377.0, voltage_mv=900.0)
        assert point.frequency_mhz == 1377.0

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(frequency_mhz=0.0)
        with pytest.raises(ConfigurationError):
            OperatingPoint(frequency_mhz=-100.0)

    def test_negative_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(frequency_mhz=100.0, voltage_mv=-1.0)


class TestDvfsTable:
    def test_from_frequencies_sorts(self):
        table = DvfsTable.from_frequencies([900, 300, 600])
        assert [p.frequency_mhz for p in table.points] == [300, 600, 900]

    def test_scale_is_relative_to_max(self):
        table = DvfsTable.from_frequencies([300, 600, 1200])
        assert table.scale(0) == pytest.approx(0.25)
        assert table.scale(2) == pytest.approx(1.0)
        assert table.scales() == pytest.approx((0.25, 0.5, 1.0))

    def test_len_and_getitem(self):
        table = DvfsTable.from_frequencies([300, 600])
        assert len(table) == 2
        assert table[1].frequency_mhz == 600

    def test_linspace(self):
        table = DvfsTable.linspace(100, 1000, 10)
        assert len(table) == 10
        assert table.max_frequency_mhz == pytest.approx(1000)

    def test_out_of_range_index_rejected(self):
        table = DvfsTable.from_frequencies([300, 600])
        with pytest.raises(ConfigurationError):
            table.scale(5)
        with pytest.raises(ConfigurationError):
            table.scale(-1)

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsTable(points=())

    def test_from_frequencies_deduplicates(self):
        """Duplicate frequencies collapse to one operating point on build."""
        table = DvfsTable.from_frequencies([300, 300, 600, 600, 600, 900])
        assert [p.frequency_mhz for p in table.points] == [300, 600, 900]

    def test_direct_construction_rejects_duplicates(self):
        points = (OperatingPoint(300.0), OperatingPoint(300.0), OperatingPoint(600.0))
        with pytest.raises(ConfigurationError):
            DvfsTable(points=points)

    def test_nearest_index_tie_prefers_faster_neighbour(self):
        table = DvfsTable.from_frequencies([300, 600, 900, 1200])
        # 0.375 is exactly between the 0.25 and 0.5 scales: the tie must
        # resolve to the faster point.
        assert table.nearest_index(0.375) == 1
        assert table.scale(table.nearest_index(0.375)) == pytest.approx(0.5)

    def test_nearest_index_after_duplicate_dedup(self):
        """Regression: duplicates used to neutralise the faster-on-tie bump.

        With ``[300, 600, 600, 1200]`` the two middle points share scale 0.5,
        so bumping from the first to the second changed nothing; after
        deduplication the tie at 0.375 lands on the genuine 600 MHz point.
        """
        table = DvfsTable.from_frequencies([300, 600, 600, 1200])
        assert len(table) == 3
        index = table.nearest_index(0.375)
        assert table[index].frequency_mhz == pytest.approx(600.0)

    def test_unsorted_points_rejected(self):
        points = (OperatingPoint(600.0), OperatingPoint(300.0))
        with pytest.raises(ConfigurationError):
            DvfsTable(points=points)

    def test_linspace_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            DvfsTable.linspace(0, 100, 5)
        with pytest.raises(ConfigurationError):
            DvfsTable.linspace(100, 50, 5)
        with pytest.raises(ConfigurationError):
            DvfsTable.linspace(100, 200, 0)


class TestPowerModel:
    def test_power_is_linear_in_scale(self):
        model = PowerModel(static_w=2.0, dynamic_w=8.0)
        assert model.power_w(1.0) == pytest.approx(10.0)
        assert model.power_w(0.5) == pytest.approx(6.0)
        assert model.max_power_w == pytest.approx(10.0)

    def test_energy_units_are_millijoules(self):
        model = PowerModel(static_w=0.0, dynamic_w=10.0)
        # 10 W for 5 ms = 50 mJ.
        assert model.energy_mj(latency_ms=5.0, scale=1.0) == pytest.approx(50.0)

    def test_lower_scale_reduces_power(self):
        model = PowerModel(static_w=1.0, dynamic_w=9.0)
        assert model.power_w(0.3) < model.power_w(0.9)

    def test_invalid_scale_rejected(self):
        model = PowerModel(static_w=1.0, dynamic_w=1.0)
        with pytest.raises(ConfigurationError):
            model.power_w(0.0)
        with pytest.raises(ConfigurationError):
            model.power_w(1.5)

    def test_zero_model_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(static_w=0.0, dynamic_w=0.0)

    def test_negative_components_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(static_w=-1.0, dynamic_w=1.0)
