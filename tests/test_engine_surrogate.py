"""Tests for the surrogate-accelerated search subsystem."""

from __future__ import annotations

import pytest

from repro.core.framework import MapAndConquer
from repro.engine.cache import EvaluationCache
from repro.engine.strategies import EvolutionaryStrategy
from repro.engine.surrogate import (
    SurrogateAssistedStrategy,
    SurrogateEvaluationBackend,
    SurrogateObjective,
    SurrogatePrediction,
    SurrogateReport,
    SurrogateSettings,
    _spearman,
)
from repro.errors import ConfigurationError
from repro.search.constraints import SearchConstraints
from repro.search.objectives import paper_objective
from repro.search.pareto import pareto_front

#: Small enough to run in seconds, large enough that the surrogate phase
#: actually engages (two bootstrap generations of six feed eight rows).
SURROGATE = SurrogateSettings(
    bootstrap_generations=2,
    validate_every=3,
    validation_cap=4,
    min_training_rows=8,
)
BUDGET = dict(generations=8, population_size=6)


@pytest.fixture()
def framework(tiny_network, platform):
    return MapAndConquer(tiny_network, platform, seed=0)


def _prediction(latency=1.0, energy=2.0, accuracy=0.8, objective=3.0, config=None):
    return SurrogatePrediction(
        config=config,
        latency_ms=latency,
        energy_mj=energy,
        accuracy=accuracy,
        worst_case_latency_ms=latency * 2,
        worst_case_energy_mj=energy * 2,
        reuse_fraction=0.5,
        stored_feature_bytes=1024,
        base_accuracy=0.9,
        objective_value=objective,
    )


class TestSettings:
    def test_defaults_valid(self):
        SurrogateSettings()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bootstrap_generations=0),
            dict(validate_every=0),
            dict(validation_cap=0),
            dict(min_training_rows=1),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SurrogateSettings(**kwargs)


class TestPrediction:
    def test_duck_types_evaluated_config(self):
        prediction = _prediction()
        assert prediction.accuracy_drop == pytest.approx(0.1)
        # Constraint checks read the same attribute names the oracle results
        # carry, so predictions flow through feasibility filtering unchanged.
        constraints = SearchConstraints(latency_target_ms=3.0, max_accuracy_drop=0.2)
        assert constraints.is_feasible(prediction)
        tight = SearchConstraints(latency_target_ms=1.0)
        assert not tight.is_feasible(prediction)

    def test_sorts_through_pareto_front(self):
        good = _prediction(latency=1.0, energy=1.0, accuracy=0.9)
        dominated = _prediction(latency=2.0, energy=2.0, accuracy=0.8)
        front = pareto_front([dominated, good])
        assert front == [good]

    def test_objective_dispatch(self):
        wrapper = SurrogateObjective(paper_objective)
        assert wrapper(_prediction(objective=42.0)) == 42.0


class TestSpearman:
    def test_perfect_and_reversed(self):
        assert _spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert _spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_use_average_ranks(self):
        value = _spearman([1.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert -1.0 < value < 1.0

    def test_degenerate_inputs(self):
        assert _spearman([], []) == 0.0
        assert _spearman([1.0], [2.0]) == 1.0
        assert _spearman([1.0, 1.0], [1.0, 2.0]) == 0.0


class TestFrameworkSearch:
    def test_rejects_bad_surrogate_argument(self, framework):
        with pytest.raises(ConfigurationError):
            framework.search(**BUDGET, surrogate="yes please")

    def test_rejects_strategy_instances(self, framework):
        strategy = EvolutionaryStrategy(
            space=framework.space, population_size=6, generations=4, seed=0
        )
        with pytest.raises(ConfigurationError):
            framework.search(strategy=strategy, surrogate=SURROGATE)

    def test_plain_search_has_no_report(self, framework):
        result = framework.search(**BUDGET, seed=0)
        assert result.surrogate is None

    def test_surrogate_search_reports_and_saves_oracle_calls(self, framework):
        baseline = framework.search(**BUDGET, seed=0)
        result = framework.search(**BUDGET, seed=0, surrogate=SURROGATE)
        report = result.surrogate
        assert isinstance(report, SurrogateReport)
        assert report.oracle_evaluations == result.num_evaluations
        assert report.oracle_evaluations < baseline.num_evaluations
        assert report.surrogate_evaluations > 0
        assert report.throughput_multiplier > 1.0
        assert report.validations >= 1
        assert report.settings == SURROGATE
        # The result's history contains exclusively oracle evaluations.
        assert all(
            not isinstance(item, SurrogatePrediction) for item in result.history
        )

    def test_deterministic_across_runs_and_backends(self, tiny_network, platform):
        def run(backend):
            framework = MapAndConquer(tiny_network, platform, seed=0)
            result = framework.search(
                **BUDGET, seed=0, surrogate=SURROGATE, backend=backend
            )
            return (
                [
                    (item.latency_ms, item.energy_mj, item.accuracy)
                    for item in result.history
                ],
                result.surrogate,
            )

        serial_history, serial_report = run("serial")
        repeat_history, repeat_report = run("serial")
        assert serial_history == repeat_history
        assert serial_report == repeat_report
        process_history, process_report = run("process")
        assert process_history == serial_history
        assert process_report == serial_report


class TestBackend:
    def test_rejects_non_backend_inner(self, framework):
        with pytest.raises(ConfigurationError):
            SurrogateEvaluationBackend(
                inner="nope",
                evaluator=framework.evaluator,
                settings=SURROGATE,
                objective=paper_objective,
            )

    def test_harvest_ignores_foreign_entries(self, framework):
        space = framework.space
        evaluator = framework.evaluator
        config = space.sample(0)
        evaluated = evaluator.evaluate(config)
        cache = EvaluationCache()
        cache.store(evaluator.content_digest(config), evaluated)
        # A cache row stored under a digest the evaluator does not reproduce
        # (e.g. another platform's entry) must not train this model.
        cache.store("deadbeef" * 8, evaluated)
        backend = SurrogateEvaluationBackend(
            inner=framework._build_backend(None, None)[0],
            evaluator=evaluator,
            settings=SURROGATE,
            objective=paper_objective,
        )
        assert backend.harvest(cache) == 1
        assert len(backend.model) == 1


class TestStrategyProtocol:
    def test_tell_without_ask_rejected(self, framework):
        inner = EvolutionaryStrategy(
            space=framework.space, population_size=6, generations=4, seed=0
        )
        backend = SurrogateEvaluationBackend(
            inner=framework._build_backend(None, None)[0],
            evaluator=framework.evaluator,
            settings=SURROGATE,
            objective=paper_objective,
        )
        strategy = SurrogateAssistedStrategy(
            inner=inner,
            backend=backend,
            settings=SURROGATE,
            objective=paper_objective,
        )
        with pytest.raises(ConfigurationError):
            strategy.tell([])
