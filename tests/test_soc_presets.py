"""Property tests for the platform zoo (repro.soc.presets).

Every registry preset must uphold the calibration invariants the mapping
method exploits — these tests are the contract a new preset signs up to.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlatformError
from repro.soc import (
    ComputeUnit,
    ComputeUnitKind,
    DvfsTable,
    Platform,
    PowerModel,
    derive,
    get_platform,
    jetson_agx_xavier,
    platform_names,
    platform_registry,
)

ALL_PRESETS = platform_names()


def conv_throughput(unit: ComputeUnit) -> float:
    """Sustained conv2d GFLOP/s at the top DVFS point."""
    return unit.effective_gflops("conv2d", scale=1.0)


def conv_efficiency(unit: ComputeUnit) -> float:
    """Sustained conv2d GFLOP/s per watt at the top DVFS point."""
    return conv_throughput(unit) / unit.power.max_power_w


class TestRegistry:
    def test_registry_has_xavier_plus_four_new_presets(self):
        assert "jetson-agx-xavier" in ALL_PRESETS
        assert len(ALL_PRESETS) >= 5

    def test_registry_copy_is_safe_to_mutate(self):
        registry = platform_registry()
        registry.clear()
        assert len(platform_registry()) == len(ALL_PRESETS)

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_round_trip_through_get_platform(self, name):
        first = get_platform(name)
        assert first.name == name
        assert first == platform_registry()[name]()
        # Name resolution is case- and separator-insensitive.
        assert get_platform(name.upper().replace("-", "_")) == first

    def test_unknown_preset_raises(self):
        with pytest.raises(PlatformError, match="unknown platform preset"):
            get_platform("jetson-agx-mars")

    def test_xavier_entry_is_the_paper_factory(self):
        assert get_platform("jetson-agx-xavier") == jetson_agx_xavier()


class TestCalibrationInvariants:
    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_heterogeneous_with_nondegenerate_dvfs(self, name):
        platform = get_platform(name)
        assert platform.num_units >= 2
        assert platform.dvfs_space_size() > 1
        for unit in platform.compute_units:
            assert unit.num_dvfs_points() > 1

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_gpu_is_the_fastest_conv_unit(self, name):
        platform = get_platform(name)
        gpus = platform.units_of_kind(ComputeUnitKind.GPU)
        if not gpus:
            pytest.skip(f"{name} has no GPU in its mapping space")
        fastest = max(platform.compute_units, key=conv_throughput)
        assert fastest.kind == ComputeUnitKind.GPU

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_accelerators_are_most_energy_efficient(self, name):
        platform = get_platform(name)
        accelerators = platform.units_of_kind(ComputeUnitKind.DLA)
        others = [u for u in platform.compute_units if u.kind != ComputeUnitKind.DLA]
        if not accelerators or not others:
            pytest.skip(f"{name} has no accelerator/other split")
        worst_accelerator = min(conv_efficiency(u) for u in accelerators)
        best_other = max(conv_efficiency(u) for u in others)
        assert worst_accelerator > best_other

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_accelerators_are_weak_on_attention(self, name):
        platform = get_platform(name)
        accelerators = platform.units_of_kind(ComputeUnitKind.DLA)
        others = [u for u in platform.compute_units if u.kind != ComputeUnitKind.DLA]
        if not accelerators or not others:
            pytest.skip(f"{name} has no accelerator/other split")
        assert max(u.utilisation_for("attention") for u in accelerators) < min(
            u.utilisation_for("attention") for u in others
        )

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_describe_smoke(self, name):
        platform = get_platform(name)
        text = platform.describe()
        assert name in text
        for unit in platform.compute_units:
            assert unit.name in text

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_platform_survives_pickling(self, name):
        """Presets cross process boundaries inside EvaluatorSpec."""
        platform = get_platform(name)
        clone = pickle.loads(pickle.dumps(platform))
        assert clone == platform
        for index, unit in enumerate(clone.compute_units):
            assert clone.unit(unit.name) is unit
            assert clone.unit_index(unit.name) == index


class TestDerive:
    def test_scales_apply_uniformly(self):
        base = get_platform("jetson-agx-xavier")
        variant = derive(base, "xavier-2x", gflops_scale=2.0, power_scale=0.5)
        assert variant.name == "xavier-2x"
        for original, scaled in zip(base.compute_units, variant.compute_units):
            assert scaled.peak_gflops == pytest.approx(2.0 * original.peak_gflops)
            assert scaled.power.max_power_w == pytest.approx(0.5 * original.power.max_power_w)
            assert scaled.dvfs == original.dvfs

    def test_dvfs_resampling(self):
        base = get_platform("jetson-agx-orin")
        variant = derive(base, "orin-coarse", dvfs_points=3)
        for original, scaled in zip(base.compute_units, variant.compute_units):
            assert scaled.num_dvfs_points() == 3
            assert scaled.dvfs.max_frequency_mhz == pytest.approx(
                original.dvfs.max_frequency_mhz
            )

    def test_extra_units_appended(self):
        base = get_platform("jetson-nano-class")
        extra = ComputeUnit(
            name="npu",
            kind=ComputeUnitKind.DLA,
            peak_gflops=8.0,
            memory_bandwidth_gbs=20.0,
            launch_overhead_ms=0.2,
            power=PowerModel(static_w=0.2, dynamic_w=0.6),
            dvfs=DvfsTable.from_frequencies((400, 800)),
            utilisation={"conv2d": 1.0, "attention": 0.2},
        )
        variant = derive(base, "nano-plus-npu", extra_units=(extra,))
        assert variant.num_units == base.num_units + 1
        assert variant.unit("npu") == extra

    def test_invalid_factors_rejected(self):
        base = get_platform("server-gpu")
        with pytest.raises(PlatformError):
            derive(base, "broken", gflops_scale=0.0)
        with pytest.raises(PlatformError):
            derive(base, "broken", feature_budget_scale=0.0)

    def test_degenerate_dvfs_resampling_rejected(self):
        """A single-point ladder would break the non-degenerate-theta invariant."""
        base = get_platform("server-gpu")
        with pytest.raises(PlatformError, match="dvfs_points"):
            derive(base, "broken", dvfs_points=1)

    @settings(max_examples=25, deadline=None)
    @given(
        gflops=st.floats(min_value=0.1, max_value=10.0),
        power=st.floats(min_value=0.1, max_value=10.0),
        bandwidth=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_uniform_scaling_preserves_invariants(self, gflops, power, bandwidth):
        """Any positive uniform scaling keeps the calibration ordering."""
        base = jetson_agx_xavier()
        variant = derive(
            base,
            "xavier-variant",
            gflops_scale=gflops,
            power_scale=power,
            bandwidth_scale=bandwidth,
        )
        assert isinstance(variant, Platform)
        fastest = max(variant.compute_units, key=conv_throughput)
        assert fastest.kind == ComputeUnitKind.GPU
        accelerators = variant.units_of_kind(ComputeUnitKind.DLA)
        others = [u for u in variant.compute_units if u.kind != ComputeUnitKind.DLA]
        assert min(conv_efficiency(u) for u in accelerators) > max(
            conv_efficiency(u) for u in others
        )
        assert variant.dvfs_space_size() == base.dvfs_space_size()
