"""Unit tests for the workload-family registry and expansion protocol."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serving.families import (
    DiurnalFamily,
    MultiTenantMixFamily,
    OnOffBurstFamily,
    SteadyPoissonFamily,
    default_families,
    family_names,
    family_registry,
    get_family,
    resolve_families,
)
from repro.serving.workload import (
    DiurnalArrivals,
    MultiTenantStream,
    OnOffBursts,
    PoissonArrivals,
)


class TestRegistry:
    def test_registry_names_sorted_and_complete(self):
        assert family_names() == (
            "diurnal",
            "multi-tenant-mix",
            "on-off-bursts",
            "steady-poisson",
        )
        assert set(family_registry()) == set(family_names())

    def test_get_family_is_case_and_separator_insensitive(self):
        assert get_family("Steady_Poisson").name == "steady-poisson"
        assert get_family(" ON-OFF-BURSTS ").name == "on-off-bursts"

    def test_get_family_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown workload family"):
            get_family("weekend-traffic")

    def test_default_families_cover_the_registry(self):
        assert tuple(family.name for family in default_families()) == (
            "steady-poisson",
            "on-off-bursts",
            "diurnal",
            "multi-tenant-mix",
        )

    def test_resolve_families_mixes_names_and_instances(self):
        resolved = resolve_families(["diurnal", SteadyPoissonFamily(rate_rps=10.0)])
        assert [family.name for family in resolved] == ["diurnal", "steady-poisson"]

    def test_resolve_families_rejects_duplicates_and_empty(self):
        with pytest.raises(ConfigurationError, match="distinct names"):
            resolve_families(["diurnal", DiurnalFamily()])
        with pytest.raises(ConfigurationError, match="not an empty list"):
            resolve_families([])


class TestExpansion:
    def test_members_have_the_right_process_types(self):
        assert all(
            isinstance(p, PoissonArrivals)
            for p in SteadyPoissonFamily().expand(0, 3)
        )
        assert all(isinstance(p, OnOffBursts) for p in OnOffBurstFamily().expand(0, 3))
        assert all(isinstance(p, DiurnalArrivals) for p in DiurnalFamily().expand(0, 3))
        assert all(
            isinstance(p, MultiTenantStream)
            for p in MultiTenantMixFamily().expand(0, 3)
        )

    def test_members_jitter_around_the_base_rate(self):
        family = SteadyPoissonFamily(rate_rps=100.0, jitter=0.25)
        rates = [member.rate_rps for member in family.expand(7, 8)]
        assert all(75.0 <= rate <= 125.0 for rate in rates)
        assert len(set(rates)) > 1  # members genuinely differ

    def test_zero_jitter_collapses_members_to_the_base(self):
        family = SteadyPoissonFamily(rate_rps=50.0, jitter=0.0)
        assert all(member.rate_rps == 50.0 for member in family.expand(3, 4))

    def test_deadline_propagates_to_members(self):
        family = SteadyPoissonFamily(rate_rps=20.0, deadline_ms=40.0)
        assert all(member.deadline_ms == 40.0 for member in family.expand(0, 2))

    def test_expand_rejects_zero_members(self):
        with pytest.raises(ConfigurationError, match=">= 1 members"):
            SteadyPoissonFamily().expand(0, 0)

    def test_member_labels(self):
        assert DiurnalFamily().member_labels(2) == ("diurnal#0", "diurnal#1")

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            SteadyPoissonFamily(rate_rps=-1.0)
        with pytest.raises(ConfigurationError, match="jitter"):
            SteadyPoissonFamily(jitter=1.0)
        with pytest.raises(ConfigurationError, match="trough_fraction"):
            DiurnalFamily(trough_fraction=1.5)
        with pytest.raises(ConfigurationError):
            OnOffBurstFamily(burst_ms=0.0)
        with pytest.raises(ConfigurationError):
            MultiTenantMixFamily(steady_rps=0.0)

    def test_repr_carries_the_parameters(self):
        # The serving-campaign checkpoint fingerprints the family repr;
        # a parameter tweak must be visible there.
        assert repr(SteadyPoissonFamily(rate_rps=10.0)) != repr(
            SteadyPoissonFamily(rate_rps=20.0)
        )
