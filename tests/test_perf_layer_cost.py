"""Unit tests for layer workloads and the analytical / noisy cost models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import AttentionLayer, Conv2dLayer
from repro.perf.layer_cost import AnalyticalCostModel, LayerWorkload, NoisyCostModel


@pytest.fixture()
def conv_layer():
    return Conv2dLayer(
        name="conv",
        width=64,
        in_width=32,
        kernel_size=3,
        stride=1,
        in_spatial=(16, 16),
        out_spatial=(16, 16),
    )


@pytest.fixture()
def conv_workload(conv_layer):
    return LayerWorkload.from_layer(conv_layer)


class TestLayerWorkload:
    def test_from_layer_matches_layer_accounting(self, conv_layer, conv_workload):
        assert conv_workload.kind == "conv2d"
        assert conv_workload.flops == pytest.approx(conv_layer.flops())
        assert conv_workload.output_bytes == conv_layer.output_bytes()
        assert conv_workload.input_bytes == conv_layer.input_bytes()
        assert conv_workload.weight_bytes == pytest.approx(conv_layer.params() * 2)

    def test_partial_slice_has_smaller_workload(self, conv_layer):
        full = LayerWorkload.from_layer(conv_layer)
        half = LayerWorkload.from_layer(conv_layer, in_units=16, out_units=32)
        assert half.flops < full.flops
        assert half.output_bytes < full.output_bytes

    def test_from_sublayer(self, tiny_dynamic):
        sub = tiny_dynamic.stages[0].sublayers[0]
        workload = LayerWorkload.from_sublayer(sub)
        assert workload.flops == pytest.approx(sub.flops())
        assert workload.output_bytes == sub.output_bytes()

    def test_feature_vector_shape_and_one_hot(self, conv_workload):
        features = conv_workload.features()
        assert features.shape == (8,)
        assert features[4] == 1.0  # conv2d one-hot
        assert features[5:].sum() == 0.0

    def test_attention_one_hot(self):
        layer = AttentionLayer(name="a", width=64, in_width=64, tokens=16, num_heads=2)
        features = LayerWorkload.from_layer(layer).features()
        assert features[5] == 1.0

    def test_total_bytes(self, conv_workload):
        assert conv_workload.total_bytes == pytest.approx(
            conv_workload.input_bytes + conv_workload.output_bytes + conv_workload.weight_bytes
        )

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerWorkload(kind="conv2d", flops=-1, input_bytes=0, output_bytes=0, weight_bytes=0)


class TestAnalyticalCostModel:
    def test_latency_positive_and_has_overhead_floor(self, conv_workload, platform):
        model = AnalyticalCostModel()
        gpu = platform.unit("gpu")
        latency = model.latency_ms(conv_workload, gpu, 1.0)
        assert latency > gpu.launch_overhead_ms

    def test_latency_decreases_with_scale(self, conv_workload, platform):
        model = AnalyticalCostModel()
        gpu = platform.unit("gpu")
        assert model.latency_ms(conv_workload, gpu, 1.0) < model.latency_ms(
            conv_workload, gpu, 0.3
        )

    def test_gpu_faster_than_dla(self, conv_workload, platform):
        model = AnalyticalCostModel()
        assert model.latency_ms(conv_workload, platform.unit("gpu"), 1.0) < model.latency_ms(
            conv_workload, platform.unit("dla0"), 1.0
        )

    def test_dla_more_energy_efficient(self, conv_workload, platform):
        model = AnalyticalCostModel()
        assert model.energy_mj(conv_workload, platform.unit("dla0"), 1.0) < model.energy_mj(
            conv_workload, platform.unit("gpu"), 1.0
        )

    def test_energy_equals_latency_times_power(self, conv_workload, platform):
        model = AnalyticalCostModel()
        gpu = platform.unit("gpu")
        for scale in (0.5, 1.0):
            assert model.energy_mj(conv_workload, gpu, scale) == pytest.approx(
                model.latency_ms(conv_workload, gpu, scale) * gpu.power_w(scale)
            )

    def test_bigger_workload_costs_more(self, conv_layer, platform):
        model = AnalyticalCostModel()
        gpu = platform.unit("gpu")
        full = LayerWorkload.from_layer(conv_layer)
        half = LayerWorkload.from_layer(conv_layer, out_units=32)
        assert model.latency_ms(half, gpu, 1.0) <= model.latency_ms(full, gpu, 1.0)

    def test_invalid_scale_rejected(self, conv_workload, platform):
        model = AnalyticalCostModel()
        with pytest.raises(ConfigurationError):
            model.latency_ms(conv_workload, platform.unit("gpu"), 0.0)

    def test_dvfs_energy_tradeoff_exists(self, conv_workload, platform):
        # Lowering the DLA clock should reduce power enough that energy per
        # inference does not explode -- the property DVFS search exploits.
        model = AnalyticalCostModel()
        dla = platform.unit("dla0")
        energy_high = model.energy_mj(conv_workload, dla, 1.0)
        energy_low = model.energy_mj(conv_workload, dla, dla.scale_for_point(0))
        assert energy_low < energy_high * 1.5


class TestNoisyCostModel:
    def test_noise_is_reproducible_per_seed(self, conv_workload, platform):
        gpu = platform.unit("gpu")
        first = NoisyCostModel(noise_std=0.1, seed=7)
        second = NoisyCostModel(noise_std=0.1, seed=7)
        assert first.latency_ms(conv_workload, gpu, 1.0) == pytest.approx(
            second.latency_ms(conv_workload, gpu, 1.0)
        )

    def test_zero_noise_matches_base(self, conv_workload, platform):
        gpu = platform.unit("gpu")
        base = AnalyticalCostModel()
        noisy = NoisyCostModel(noise_std=0.0, seed=0)
        assert noisy.latency_ms(conv_workload, gpu, 1.0) == pytest.approx(
            base.latency_ms(conv_workload, gpu, 1.0)
        )

    def test_noise_stays_close_to_base(self, conv_workload, platform):
        gpu = platform.unit("gpu")
        base = AnalyticalCostModel().latency_ms(conv_workload, gpu, 1.0)
        noisy = NoisyCostModel(noise_std=0.05, seed=3)
        samples = [noisy.latency_ms(conv_workload, gpu, 1.0) for _ in range(50)]
        assert all(0.7 * base < value < 1.4 * base for value in samples)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            NoisyCostModel(noise_std=-0.1)
