"""Unit tests for the static-to-dynamic multi-exit transformation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.nn.multiexit import build_dynamic_network
from repro.nn.partition import IndicatorMatrix, PartitionMatrix


def build(network, ranking, num_stages=3, reuse=True, reorder=True):
    num_layers = 3
    indicator = (
        IndicatorMatrix.full(num_stages, num_layers)
        if reuse
        else IndicatorMatrix.none(num_stages, num_layers)
    )
    if reuse:
        values = indicator.values.copy()
        values[-1, :] = 0
        indicator = IndicatorMatrix(values)
    return build_dynamic_network(
        network,
        partition=PartitionMatrix.uniform(num_stages, num_layers),
        indicator=indicator,
        ranking=ranking,
        reorder=reorder,
    )


class TestDynamicNetworkStructure:
    def test_number_of_stages_and_sublayers(self, tiny_dynamic):
        assert tiny_dynamic.num_stages == 3
        assert tiny_dynamic.num_layers == 3
        for stage in tiny_dynamic.stages:
            assert stage.num_sublayers == 3

    def test_sublayer_names_qualified(self, tiny_dynamic):
        names = [sub.name for sub in tiny_dynamic.stages[0].sublayers]
        assert names == ["conv1@stage0", "attn@stage0", "mlp@stage0"]

    def test_exit_heads_classify_to_num_classes(self, tiny_dynamic, tiny_network):
        for stage in tiny_dynamic.stages:
            assert stage.exit_head.width == tiny_network.num_classes

    def test_exit_head_input_grows_with_stage(self, tiny_dynamic):
        widths = [stage.exit_head.in_width for stage in tiny_dynamic.stages]
        assert widths[0] <= widths[1] <= widths[2]

    def test_stage_flops_include_exit_head(self, tiny_dynamic):
        stage = tiny_dynamic.stages[0]
        sub_total = sum(sub.flops() for sub in stage.sublayers)
        assert stage.flops() == pytest.approx(sub_total + stage.exit_head.flops())

    def test_imported_bytes_zero_for_first_stage(self, tiny_dynamic):
        assert tiny_dynamic.stages[0].imported_bytes() == 0
        assert tiny_dynamic.stages[2].imported_bytes() > 0

    def test_total_flops_through_is_cumulative(self, tiny_dynamic):
        one = tiny_dynamic.total_flops_through(0)
        two = tiny_dynamic.total_flops_through(1)
        three = tiny_dynamic.total_flops_through(2)
        assert one < two < three
        assert three == pytest.approx(sum(stage.flops() for stage in tiny_dynamic.stages))

    def test_summary_mentions_every_stage(self, tiny_dynamic):
        text = tiny_dynamic.summary()
        assert "stage 0" in text and "stage 2" in text

    def test_invalid_stage_index_rejected(self, tiny_dynamic):
        with pytest.raises(ConfigurationError):
            tiny_dynamic.total_flops_through(7)
        with pytest.raises(ConfigurationError):
            tiny_dynamic.stage_coverage(-1)


class TestStageCoverage:
    def test_coverage_increases_with_stage_under_full_reuse(self, tiny_dynamic):
        coverages = [tiny_dynamic.stage_coverage(i) for i in range(3)]
        assert coverages[0] < coverages[1] < coverages[2]

    def test_last_stage_full_coverage_with_full_reuse(self, tiny_dynamic):
        assert tiny_dynamic.stage_coverage(2) == pytest.approx(1.0, abs=1e-9)

    def test_no_reuse_reduces_late_stage_coverage(self, tiny_network, tiny_ranking):
        reuse = build(tiny_network, tiny_ranking, reuse=True)
        isolated = build(tiny_network, tiny_ranking, reuse=False)
        assert isolated.stage_coverage(2) < reuse.stage_coverage(2)

    def test_reordering_boosts_first_stage_coverage(self, tiny_network, tiny_ranking):
        ordered = build(tiny_network, tiny_ranking, reorder=True)
        unordered = build(tiny_network, tiny_ranking, reorder=False)
        assert ordered.stage_coverage(0) > unordered.stage_coverage(0)

    def test_unordered_coverage_equals_width_fraction(self, tiny_network, tiny_ranking):
        unordered = build(tiny_network, tiny_ranking, reuse=False, reorder=False)
        # Uniform split without reuse: each stage sees ~1/3 of every layer.
        assert unordered.stage_coverage(0) == pytest.approx(1 / 3, abs=0.12)

    def test_coverage_without_ranking_falls_back_to_fractions(self, tiny_network):
        dynamic = build_dynamic_network(
            tiny_network,
            partition=PartitionMatrix.uniform(3, 3),
            indicator=IndicatorMatrix.none(3, 3),
            ranking=None,
        )
        assert dynamic.reordered is False
        assert dynamic.stage_coverage(0) == pytest.approx(1 / 3, abs=0.12)


class TestReuseAccounting:
    def test_reuse_fraction_matches_indicator(self, tiny_network, tiny_ranking):
        dynamic = build(tiny_network, tiny_ranking, reuse=True)
        assert dynamic.reuse_fraction() == pytest.approx(1.0)
        isolated = build(tiny_network, tiny_ranking, reuse=False)
        assert isolated.reuse_fraction() == 0.0

    def test_stored_feature_bytes_consistent_with_scheme(self, tiny_dynamic):
        assert tiny_dynamic.stored_feature_bytes() == (
            tiny_dynamic.scheme.stored_feature_bytes()
        )


class TestVisformerDynamic:
    def test_three_stage_visformer(self, visformer_net, visformer_ranking):
        num_layers = len(visformer_net) - 1
        dynamic = build_dynamic_network(
            visformer_net,
            partition=PartitionMatrix.uniform(3, num_layers),
            indicator=IndicatorMatrix.full(3, num_layers),
            ranking=visformer_ranking,
        )
        assert dynamic.num_stages == 3
        assert dynamic.num_layers == num_layers
        # Partitioned stages are each cheaper than the full static model.
        static_flops = visformer_net.total_flops()
        for stage in dynamic.stages:
            assert stage.flops() < static_flops
