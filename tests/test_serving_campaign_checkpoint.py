"""Checkpoint/serving interplay: resume fidelity and stale-family refresh.

The serving campaign persists two record kinds into one JSONL checkpoint
(search cells and serving cells).  These tests pin the interplay:

* a resumed serving campaign restores *every* cell and renders bytes
  identical to the uninterrupted run — including after a SIGKILL lands
  mid-sweep in a separate process;
* a stale family definition (or a grown family list) re-runs exactly the
  affected cells instead of reusing stale records;
* legacy checkpoint lines written before the ``kind`` field existed are
  still restored as search cells;
* a serving checkpoint written under another seed refuses to load.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.campaign import run_serving_campaign
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.core.report import traffic_ranking_summary
from repro.errors import ConfigurationError

PLATFORMS = ("jetson-agx-xavier", "mobile-big-little")


def _families(steady_rps: float = 150.0):
    from repro.serving.families import OnOffBurstFamily, SteadyPoissonFamily

    return (
        SteadyPoissonFamily(rate_rps=steady_rps),
        OnOffBurstFamily(burst_rps=250.0, idle_rps=20.0, burst_ms=400.0, idle_ms=400.0),
    )


BUDGET = dict(
    members_per_family=2,
    duration_ms=2500.0,
    generations=2,
    population_size=6,
    seed=3,
)


def _run(tiny_network, **overrides):
    options = {**BUDGET, **overrides}
    families = options.pop("families", _families())
    return run_serving_campaign(tiny_network, PLATFORMS, families=families, **options)


class TestResume:
    def test_resume_restores_every_cell_without_recomputing(
        self, tiny_network, tmp_path, monkeypatch
    ):
        first = _run(tiny_network, checkpoint_dir=tmp_path)

        calls = []
        import repro.campaign.serving_runner as serving_runner

        original = serving_runner._run_serving_cell
        monkeypatch.setattr(
            serving_runner,
            "_run_serving_cell",
            lambda task: calls.append(task) or original(task),
        )
        resumed = _run(tiny_network, checkpoint_dir=tmp_path)
        assert calls == []  # every serving cell came from the checkpoint
        assert traffic_ranking_summary(resumed) == traffic_ranking_summary(first)

    def test_checkpoint_file_holds_both_record_kinds(self, tiny_network, tmp_path):
        _run(tiny_network, checkpoint_dir=tmp_path)
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / CampaignCheckpoint.FILENAME)
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        assert kinds.count("search") == len(PLATFORMS)
        assert kinds.count("serving") == len(PLATFORMS) * len(_families())

    def test_serving_seed_mismatch_raises(self, tiny_network, tmp_path):
        _run(tiny_network, checkpoint_dir=tmp_path)
        path = tmp_path / CampaignCheckpoint.FILENAME
        # Keep only the serving records so the failure is attributable to
        # load_serving, not the search loader.
        serving_lines = [
            line
            for line in path.read_text(encoding="utf-8").splitlines()
            if json.loads(line)["kind"] == "serving"
        ]
        path.write_text("\n".join(serving_lines) + "\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="refusing to mix seeds"):
            _run(tiny_network, checkpoint_dir=tmp_path, seed=4)


class TestStaleFamilies:
    def test_stale_family_definition_reruns_only_its_cells(
        self, tiny_network, tmp_path, monkeypatch
    ):
        first = _run(tiny_network, checkpoint_dir=tmp_path)

        calls = []
        import repro.campaign.serving_runner as serving_runner

        original = serving_runner._run_serving_cell
        monkeypatch.setattr(
            serving_runner,
            "_run_serving_cell",
            lambda task: calls.append((task.platform.name, task.family.name))
            or original(task),
        )
        changed = _run(
            tiny_network, checkpoint_dir=tmp_path, families=_families(steady_rps=80.0)
        )
        # Exactly the redefined family's cells were recomputed...
        assert sorted(calls) == [
            (platform, "steady-poisson") for platform in sorted(PLATFORMS)
        ]
        # ...with genuinely fresh records (different offered load), while the
        # untouched family's cells were restored bit for bit.
        for platform in PLATFORMS:
            assert (
                changed.cell(platform, "steady-poisson").members
                != first.cell(platform, "steady-poisson").members
            )
            assert (
                changed.cell(platform, "on-off-bursts").members
                == first.cell(platform, "on-off-bursts").members
            )

    def test_superseded_stale_lines_stop_counting_as_refreshed(
        self, tiny_network, tmp_path, monkeypatch, caplog
    ):
        import logging

        _run(tiny_network, checkpoint_dir=tmp_path)
        changed_families = _families(steady_rps=80.0)
        # Appends fresh lines for the redefined family; the old mismatching
        # lines stay in the append-only file.
        _run(tiny_network, checkpoint_dir=tmp_path, families=changed_families)

        calls = []
        import repro.campaign.serving_runner as serving_runner

        original = serving_runner._run_serving_cell
        monkeypatch.setattr(
            serving_runner,
            "_run_serving_cell",
            lambda task: calls.append(task) or original(task),
        )
        with caplog.at_level(logging.INFO, logger="repro.campaign.checkpoint"):
            _run(tiny_network, checkpoint_dir=tmp_path, families=changed_families)
        # Everything restores from the superseding lines: nothing re-runs and
        # the loader must not claim otherwise.
        assert calls == []
        assert not [
            record for record in caplog.records if "re-running" in record.message
        ]

    def test_grown_family_list_runs_only_new_cells(
        self, tiny_network, tmp_path, monkeypatch
    ):
        from repro.serving.families import DiurnalFamily

        first = _run(tiny_network, checkpoint_dir=tmp_path)
        calls = []
        import repro.campaign.serving_runner as serving_runner

        original = serving_runner._run_serving_cell
        monkeypatch.setattr(
            serving_runner,
            "_run_serving_cell",
            lambda task: calls.append(task.family.name) or original(task),
        )
        grown = _run(
            tiny_network,
            checkpoint_dir=tmp_path,
            families=_families() + (DiurnalFamily(peak_rps=120.0, period_ms=800.0),),
        )
        assert calls == ["diurnal"] * len(PLATFORMS)
        for cell in first.cells:
            assert (
                grown.cell(cell.platform_name, cell.family_name).members
                == cell.members
            )


class TestLegacyFormat:
    def test_search_lines_without_kind_field_still_restore(
        self, tiny_network, tmp_path
    ):
        # PR 4 wrote search cells with no "kind" field; stripping it must not
        # orphan the records.
        from repro.campaign import run_campaign

        first = run_campaign(
            tiny_network,
            PLATFORMS,
            generations=2,
            population_size=6,
            seed=3,
            checkpoint_dir=tmp_path,
        )
        path = tmp_path / CampaignCheckpoint.FILENAME
        stripped = []
        for line in path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            record.pop("kind")
            stripped.append(json.dumps(record, ensure_ascii=False))
        path.write_text("\n".join(stripped) + "\n", encoding="utf-8")

        from repro.core.report import campaign_summary

        resumed = run_campaign(
            tiny_network,
            PLATFORMS,
            generations=2,
            population_size=6,
            seed=3,
            checkpoint_dir=tmp_path,
        )
        assert campaign_summary(resumed) == campaign_summary(first)


_CHILD_SCRIPT = textwrap.dedent(
    """
    from repro.campaign import run_serving_campaign
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )
    from repro.serving.families import OnOffBurstFamily, SteadyPoissonFamily

    layers = (
        Conv2dLayer(
            name="conv1", width=16, in_width=3, kernel_size=3, stride=1,
            in_spatial=(8, 8), out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    network = NetworkGraph(
        name="tiny", layers=layers, input_shape=(3, 8, 8),
        num_classes=10, base_accuracy=0.9, family="vit",
    )
    run_serving_campaign(
        network,
        {platforms!r},
        families=(
            SteadyPoissonFamily(rate_rps=150.0),
            OnOffBurstFamily(
                burst_rps=250.0, idle_rps=20.0, burst_ms=400.0, idle_ms=400.0
            ),
        ),
        members_per_family={members},
        duration_ms={duration},
        generations={generations},
        population_size={population},
        seed={seed},
        checkpoint_dir={checkpoint_dir!r},
    )
    """
)


class TestSigkillResume:
    def test_sigkill_mid_sweep_then_resume_is_byte_identical(
        self, tiny_network, tmp_path
    ):
        uninterrupted = traffic_ranking_summary(_run(tiny_network))

        checkpoint_dir = tmp_path / "checkpoints"
        checkpoint_file = checkpoint_dir / CampaignCheckpoint.FILENAME
        total_serving = len(PLATFORMS) * len(_families())
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )

        def serving_lines() -> int:
            if not checkpoint_file.exists():
                return 0
            return checkpoint_file.read_text(encoding="utf-8").count('"kind": "serving"')

        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CHILD_SCRIPT.format(
                    platforms=PLATFORMS,
                    members=BUDGET["members_per_family"],
                    duration=BUDGET["duration_ms"],
                    generations=BUDGET["generations"],
                    population=BUDGET["population_size"],
                    seed=BUDGET["seed"],
                    checkpoint_dir=str(checkpoint_dir),
                ),
            ],
            env=env,
        )
        try:
            # Kill as soon as the first serving cell lands — mid-sweep,
            # after the search cells but before the grid completes.
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if serving_lines() >= 1:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.002)
            else:
                raise AssertionError("first serving checkpoint never appeared")
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait()

        finished = serving_lines()
        assert finished >= 1
        assert finished < total_serving, "child finished before the kill landed"

        resumed = _run(tiny_network, checkpoint_dir=checkpoint_dir)
        assert traffic_ranking_summary(resumed) == uninterrupted
