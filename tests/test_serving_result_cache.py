"""Tests for the serving-result cache: keys, persistence, crash recovery.

The :class:`~repro.serving.result_cache.ServingResultCache` sits inside the
measured-objective search loop, so its edge cases are load-bearing: a
truncated JSONL line must not abort a resumed search, non-ASCII family
labels must survive a round trip readably, and hit/miss statistics must be
exact even when process-pool workers each carry their own handle to a
shared file.
"""

from __future__ import annotations

import json
import logging
import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.serving.metrics import ServingMetrics
from repro.serving.policies import Deployment
from repro.serving.result_cache import (
    ServingResultCache,
    deployment_digest,
    serving_digest,
)
from repro.serving.workload import PoissonArrivals
from repro.soc.presets import get_platform

PLATFORM = get_platform("jetson-agx-xavier")
WORKLOAD = PoissonArrivals(rate_rps=50.0)


def _metrics(policy: str = "static", p99: float = 10.0) -> ServingMetrics:
    return ServingMetrics(
        policy=policy,
        num_requests=10,
        duration_ms=1000.0,
        throughput_rps=10.0,
        mean_latency_ms=5.0,
        p50_latency_ms=5.0,
        p95_latency_ms=9.0,
        p99_latency_ms=p99,
        max_latency_ms=12.0,
        mean_queueing_ms=1.0,
        deadline_miss_rate=0.0,
        accuracy=0.9,
        mean_stages=1.0,
        total_energy_mj=50.0,
        energy_per_request_mj=5.0,
        mean_in_flight=0.5,
        peak_in_flight=2,
        utilisation={"gpu": 0.5},
    )


def _deployment(name: str = "dep", service_ms: float = 4.0) -> Deployment:
    return Deployment(
        name=name,
        unit_names=("gpu",),
        service_ms=(service_ms,),
        energy_mj=(5.0,),
        stage_accuracies=(0.95,),
        dvfs_scales=(1.0,),
    )


class TestDigests:
    def test_deployment_digest_ignores_the_display_name(self):
        assert deployment_digest(_deployment("a")) == deployment_digest(
            _deployment("b")
        )

    def test_deployment_digest_covers_serving_content(self):
        assert deployment_digest(_deployment(service_ms=4.0)) != deployment_digest(
            _deployment(service_ms=5.0)
        )

    def test_serving_digest_changes_with_every_budget_axis(self):
        deployment = _deployment()
        base = serving_digest(deployment, PLATFORM, WORKLOAD, 1000.0, 0)
        assert base == serving_digest(deployment, PLATFORM, WORKLOAD, 1000.0, 0)
        assert base != serving_digest(deployment, PLATFORM, WORKLOAD, 2000.0, 0)
        assert base != serving_digest(deployment, PLATFORM, WORKLOAD, 1000.0, 1)
        assert base != serving_digest(
            deployment, PLATFORM, WORKLOAD, 1000.0, 0, deadline_ms=50.0
        )
        assert base != serving_digest(
            deployment, PLATFORM, WORKLOAD, 1000.0, 0, policy_tag="dvfs-governor"
        )
        assert base != serving_digest(
            deployment, PLATFORM, PoissonArrivals(rate_rps=60.0), 1000.0, 0
        )


class TestInMemory:
    def test_lookup_miss_then_hit(self):
        cache = ServingResultCache()
        assert cache.lookup("k") is None
        cache.store("k", _metrics())
        assert cache.lookup("k").p99_latency_ms == 10.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_peek_and_items_do_not_touch_stats(self):
        cache = ServingResultCache()
        cache.store("k", _metrics())
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        assert dict(cache.items())["k"].policy == "static"
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_store_rejects_foreign_values(self):
        cache = ServingResultCache()
        with pytest.raises(ConfigurationError, match="ServingMetrics"):
            cache.store("k", {"p99": 1.0})

    def test_duplicate_store_is_idempotent(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ServingResultCache(path)
        cache.store("k", _metrics(p99=10.0))
        cache.store("k", _metrics(p99=99.0))
        assert cache.lookup("k").p99_latency_ms == 10.0
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1

    def test_family_label_round_trip(self):
        cache = ServingResultCache()
        cache.store("k", _metrics(), family="steady-poisson")
        cache.store("other", _metrics())
        assert cache.family("k") == "steady-poisson"
        assert cache.family("other") == ""
        assert cache.family("missing") == ""


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = ServingResultCache(path)
        first.store("k1", _metrics(p99=10.0), family="fam")
        first.store("k2", _metrics(policy="dvfs-governor", p99=20.0))

        second = ServingResultCache(path)
        assert len(second) == 2
        assert second.stats.loaded == 2
        assert second.peek("k1").p99_latency_ms == 10.0
        assert second.peek("k2").policy == "dvfs-governor"
        assert second.family("k1") == "fam"

    def test_lines_are_human_readable_json(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ServingResultCache(path).store("k", _metrics(), family="fam")
        record = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert record["version"] == 1
        assert record["key"] == "k"
        assert record["family"] == "fam"
        assert record["policy"] == "static"
        assert record["metrics"]["p99_latency_ms"] == 10.0

    def test_non_ascii_family_names_stay_raw_in_the_file(self, tmp_path):
        """``ensure_ascii=False`` + an explicit utf-8 handle: the label is
        stored as readable characters, not ``\\uXXXX`` escapes, and round-trips."""
        path = tmp_path / "cache.jsonl"
        family = "визформер-蒸留-家族"
        ServingResultCache(path).store("k", _metrics(), family=family)

        raw = path.read_text(encoding="utf-8")
        assert family in raw
        assert "\\u" not in raw.split('"payload"')[0]

        reloaded = ServingResultCache(path)
        assert reloaded.family("k") == family

    def test_truncated_trailing_line_is_recovered_and_logged(self, tmp_path, caplog):
        """A SIGKILL mid-append leaves a half-written last line; the reload
        must keep every complete entry and say exactly what it skipped."""
        path = tmp_path / "cache.jsonl"
        writer = ServingResultCache(path)
        writer.store("k1", _metrics())
        writer.store("k2", _metrics())
        full = path.read_text(encoding="utf-8")
        last_line = full.splitlines()[-1]
        path.write_text(full + last_line[: len(last_line) // 2], encoding="utf-8")

        with caplog.at_level(logging.WARNING, logger="repro.serving.result_cache"):
            recovered = ServingResultCache(path)

        assert len(recovered) == 2
        assert recovered.stats.loaded == 2
        assert "recovered 2 entries" in caplog.text
        assert "skipped 1 malformed" in caplog.text

    def test_malformed_and_foreign_lines_are_skipped_with_counts(
        self, tmp_path, caplog
    ):
        path = tmp_path / "cache.jsonl"
        writer = ServingResultCache(path)
        writer.store("good", _metrics())
        with path.open("a", encoding="utf-8") as stream:
            stream.write("not json at all\n")
            stream.write(json.dumps({"version": 99, "key": "future"}) + "\n")
            stream.write(
                json.dumps({"version": 1, "key": "no-payload"}) + "\n"
            )
            stream.write("\n")  # blank lines are not an error

        with caplog.at_level(logging.WARNING, logger="repro.serving.result_cache"):
            recovered = ServingResultCache(path)

        assert len(recovered) == 1
        assert recovered.peek("good") is not None
        assert "recovered 1 entries" in caplog.text
        assert "skipped 3 malformed" in caplog.text

    def test_clean_load_does_not_warn(self, tmp_path, caplog):
        path = tmp_path / "cache.jsonl"
        ServingResultCache(path).store("k", _metrics())
        with caplog.at_level(logging.WARNING, logger="repro.serving.result_cache"):
            ServingResultCache(path)
        assert caplog.text == ""

    def test_missing_file_starts_empty(self, tmp_path):
        cache = ServingResultCache(tmp_path / "never-written.jsonl")
        assert len(cache) == 0
        assert cache.stats.loaded == 0


SEED_DIGESTS = ("seed-0", "seed-1", "seed-2")


def _pool_worker(args):
    """Open a worker-local handle on the shared file and exercise it.

    Module-level so the fork-context pool can pickle it.  Returns the
    worker's own statistics — each handle counts its *own* hits and misses,
    which must be exact regardless of what the siblings do.
    """
    path, worker_id = args
    cache = ServingResultCache(path)
    hits = sum(cache.lookup(digest) is not None for digest in SEED_DIGESTS)
    misses = sum(
        cache.lookup(f"unknown-{worker_id}-{i}") is None for i in range(2)
    )
    cache.store(f"worker-{worker_id}", _metrics(p99=float(worker_id)))
    return {
        "loaded": cache.stats.loaded,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "entries": len(cache),
    }


class TestProcessPoolWorkers:
    def test_worker_stats_are_exact_and_stores_accumulate(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        seed_cache = ServingResultCache(path)
        for digest in SEED_DIGESTS:
            seed_cache.store(digest, _metrics())

        context = multiprocessing.get_context("fork")
        with context.Pool(2) as pool:
            reports = pool.map(_pool_worker, [(str(path), 0), (str(path), 1)])

        for report in reports:
            # A worker may also see a sibling's store if it opened the file
            # second — but its *own* hit/miss counts are exact regardless.
            assert report["loaded"] in (3, 4)
            assert report["hits"] == 3
            assert report["misses"] == 2
            assert report["entries"] == report["loaded"] + 1

        merged = ServingResultCache(path)
        assert len(merged) == 5  # 3 seeded + one per worker
        assert merged.stats.loaded == 5
        assert merged.peek("worker-0").p99_latency_ms == 0.0
        assert merged.peek("worker-1").p99_latency_ms == 1.0
