"""Unit tests for evaluation, objectives, constraints, operators and Pareto."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.constraints import SearchConstraints
from repro.search.evaluation import ConfigEvaluator
from repro.search.objectives import (
    energy_oriented_objective,
    latency_oriented_objective,
    paper_objective,
)
from repro.search.operators import crossover, mutate
from repro.search.pareto import (
    dominates,
    pareto_front,
    select_energy_oriented,
    select_latency_oriented,
)
from repro.errors import SearchError


@pytest.fixture()
def evaluated_samples(tiny_space, tiny_config_evaluator):
    rng = np.random.default_rng(0)
    configs = [tiny_space.sample(rng) for _ in range(12)]
    return tiny_config_evaluator.evaluate_many(configs)


class TestConfigEvaluator:
    def test_evaluate_produces_consistent_metrics(self, tiny_config_evaluator, tiny_space):
        evaluated = tiny_config_evaluator.evaluate(tiny_space.sample(seed=0))
        assert evaluated.latency_ms > 0
        assert evaluated.energy_mj > 0
        assert 0 < evaluated.accuracy < 1
        assert evaluated.latency_ms <= evaluated.worst_case_latency_ms + 1e-9
        assert evaluated.energy_mj <= evaluated.worst_case_energy_mj + 1e-9

    def test_cache_returns_same_object(self, tiny_config_evaluator, tiny_space):
        config = tiny_space.sample(seed=3)
        first = tiny_config_evaluator.evaluate(config)
        second = tiny_config_evaluator.evaluate(config)
        assert first is second
        assert tiny_config_evaluator.evaluations == 1

    def test_summary_row_fields(self, tiny_config_evaluator, tiny_space):
        row = tiny_config_evaluator.evaluate(tiny_space.sample(seed=1)).summary_row()
        assert set(row) == {
            "mapping",
            "accuracy_pct",
            "avg_energy_mj",
            "avg_latency_ms",
            "reuse_pct",
        }

    def test_accuracy_drop_sign(self, tiny_config_evaluator, tiny_space, tiny_network):
        evaluated = tiny_config_evaluator.evaluate(tiny_space.sample(seed=2))
        assert evaluated.accuracy_drop == pytest.approx(
            tiny_network.base_accuracy - evaluated.accuracy
        )

    def test_reordering_strengthens_the_first_exit(self, tiny_network, platform, tiny_space):
        # Channel reordering assigns the most important channels to the first
        # stage (Sect. V-D), so its exit must be at least as accurate as
        # without reordering; that is what lets more samples terminate early.
        ordered = ConfigEvaluator(tiny_network, platform, reorder_channels=True, seed=0)
        unordered = ConfigEvaluator(tiny_network, platform, reorder_channels=False, seed=0)
        config = tiny_space.sample(seed=5)
        ordered_first = ordered.evaluate(config).inference.exit_statistics.stage_accuracies[0]
        unordered_first = unordered.evaluate(config).inference.exit_statistics.stage_accuracies[0]
        assert ordered_first >= unordered_first - 1e-9


class TestObjectives:
    def test_paper_objective_positive_and_finite(self, evaluated_samples):
        for item in evaluated_samples:
            value = paper_objective(item)
            assert value > 0
            assert np.isfinite(value)

    def test_paper_objective_deterministic(self, evaluated_samples):
        for item in evaluated_samples:
            assert paper_objective(item) == paper_objective(item)

    def test_paper_objective_rewards_cheaper_stages(self, tiny_config_evaluator, tiny_mapping_config):
        # Same partition and mapping, but running every unit at its lowest
        # DVFS point increases stage latencies, which the Eq. 16 latency and
        # energy terms must reflect (energy may drop, but latency dominates
        # here because static power still accrues over the longer runtime).
        from dataclasses import replace

        fast = tiny_config_evaluator.evaluate(tiny_mapping_config)
        slow = tiny_config_evaluator.evaluate(
            replace(tiny_mapping_config, dvfs_indices=(0, 0, 0))
        )
        assert slow.latency_ms > fast.latency_ms

    def test_oriented_objectives_track_their_metric(self, evaluated_samples):
        by_latency = min(evaluated_samples, key=latency_oriented_objective)
        by_energy = min(evaluated_samples, key=energy_oriented_objective)
        assert by_latency.latency_ms <= min(e.latency_ms for e in evaluated_samples) * 1.5
        assert by_energy.energy_mj <= min(e.energy_mj for e in evaluated_samples) * 1.5


class TestConstraints:
    def test_unconstrained_is_always_feasible(self, evaluated_samples, platform):
        gate = SearchConstraints()
        assert all(gate.is_feasible(item, platform=platform) for item in evaluated_samples)

    def test_latency_target_filters(self, evaluated_samples):
        tight = SearchConstraints(latency_target_ms=1e-6)
        assert all(not tight.is_feasible(item) for item in evaluated_samples)
        loose = SearchConstraints(latency_target_ms=1e9)
        assert all(loose.is_feasible(item) for item in evaluated_samples)

    def test_energy_target_filters(self, evaluated_samples):
        tight = SearchConstraints(energy_target_mj=1e-6)
        assert all(not tight.is_feasible(item) for item in evaluated_samples)

    def test_reuse_cap_filters(self, evaluated_samples):
        gate = SearchConstraints(max_reuse_fraction=0.5)
        for item in evaluated_samples:
            assert gate.is_feasible(item) == (item.reuse_fraction <= 0.5 + 1e-9)

    def test_accuracy_drop_cap_filters(self, evaluated_samples):
        gate = SearchConstraints(max_accuracy_drop=0.0)
        for item in evaluated_samples:
            assert gate.is_feasible(item) == (item.accuracy_drop <= 1e-9)

    def test_memory_budget_filters(self, evaluated_samples):
        gate = SearchConstraints(feature_budget_bytes=1)
        for item in evaluated_samples:
            expected = item.stored_feature_bytes <= 1
            assert gate.is_feasible(item) == expected

    def test_violations_are_descriptive(self, evaluated_samples):
        gate = SearchConstraints(latency_target_ms=1e-6, energy_target_mj=1e-6)
        problems = gate.violations(evaluated_samples[0])
        assert len(problems) == 2
        assert any("latency" in text for text in problems)
        assert any("energy" in text for text in problems)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SearchConstraints(latency_target_ms=-1.0)
        with pytest.raises(ValueError):
            SearchConstraints(max_accuracy_drop=-0.1)


class TestOperators:
    def test_mutate_returns_valid_config(self, tiny_space):
        rng = np.random.default_rng(0)
        config = tiny_space.sample(rng)
        for _ in range(30):
            config = mutate(config, tiny_space, rng)
            np.testing.assert_allclose(config.partition.values.sum(axis=0), 1.0, atol=1e-9)
            assert len(set(config.unit_names)) == config.num_stages
            for name, index in zip(config.unit_names, config.dvfs_indices):
                assert 0 <= index < tiny_space.platform.unit(name).num_dvfs_points()

    def test_mutate_changes_something_eventually(self, tiny_space):
        rng = np.random.default_rng(1)
        config = tiny_space.sample(rng)
        changed = False
        for _ in range(20):
            mutated = mutate(config, tiny_space, rng)
            if (
                not np.allclose(mutated.partition.values, config.partition.values)
                or mutated.unit_names != config.unit_names
                or mutated.dvfs_indices != config.dvfs_indices
                or not np.array_equal(mutated.indicator.values, config.indicator.values)
            ):
                changed = True
                break
        assert changed

    def test_mutate_respects_reuse_cap(self, tiny_network, platform):
        from repro.search.space import SearchSpace

        space = SearchSpace(tiny_network, platform, max_reuse_fraction=0.3)
        rng = np.random.default_rng(0)
        config = space.sample(rng)
        for _ in range(40):
            config = mutate(config, space, rng)
            assert config.reuse_fraction() <= 0.3 + 1e-9

    def test_crossover_mixes_parents(self, tiny_space):
        rng = np.random.default_rng(2)
        parent_a = tiny_space.sample(rng)
        parent_b = tiny_space.sample(rng)
        child = crossover(parent_a, parent_b, tiny_space, rng)
        np.testing.assert_allclose(child.partition.values.sum(axis=0), 1.0, atol=1e-9)
        assert child.unit_names in (parent_a.unit_names, parent_b.unit_names)
        # Every column comes from one of the two parents.
        for layer in range(tiny_space.num_layers):
            column = child.partition.values[:, layer]
            assert np.allclose(column, parent_a.partition.values[:, layer]) or np.allclose(
                column, parent_b.partition.values[:, layer]
            )


class TestPareto:
    def test_dominates_is_strict(self, evaluated_samples):
        sample = evaluated_samples[0]
        assert not dominates(sample, sample)

    def test_front_members_not_dominated(self, evaluated_samples):
        front = pareto_front(evaluated_samples)
        assert front
        for member in front:
            assert not any(dominates(other, member) for other in evaluated_samples)

    def test_dominated_points_excluded(self, evaluated_samples):
        front = pareto_front(evaluated_samples)
        for item in evaluated_samples:
            if item not in front:
                assert any(dominates(other, item) for other in evaluated_samples)

    def test_selection_returns_front_members(self, evaluated_samples):
        front = pareto_front(evaluated_samples)
        energy_pick = select_energy_oriented(front)
        latency_pick = select_latency_oriented(front)
        assert energy_pick in front
        assert latency_pick in front
        assert energy_pick.energy_mj <= latency_pick.energy_mj + 1e-9
        assert latency_pick.latency_ms <= energy_pick.latency_ms + 1e-9

    def test_accuracy_gate_falls_back_when_impossible(self, evaluated_samples):
        pick = select_energy_oriented(evaluated_samples, max_accuracy_drop=-1.0)
        assert pick is not None

    def test_empty_selection_rejected(self):
        with pytest.raises(SearchError):
            select_energy_oriented([])
        with pytest.raises(SearchError):
            select_latency_oriented([])
