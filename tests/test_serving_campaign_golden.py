"""Golden-file regression pin of ``traffic_ranking_summary`` bytes.

A 3-platform x 3-family serving campaign at a fixed seed must render the
exact bytes stored in ``tests/data/serving_campaign_golden.txt`` — through
the sequential path and the cell-parallel runner alike, and when resumed
from a checkpoint.  Any change to search semantics, family expansion,
simulator numerics, the served-p99-per-joule definition or report formatting
shows up here as a reviewable diff instead of silent drift.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/test_serving_campaign_golden.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.framework import MapAndConquer
from repro.core.report import traffic_ranking_summary
from repro.serving.families import (
    DiurnalFamily,
    OnOffBurstFamily,
    SteadyPoissonFamily,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "serving_campaign_golden.txt"

#: Xavier (the facade default) plus two boards with very different regimes.
EXTRA_PLATFORMS = ("mobile-big-little", "jetson-nano-class")
FAMILIES = (
    SteadyPoissonFamily(rate_rps=40.0),
    OnOffBurstFamily(burst_rps=90.0, idle_rps=5.0, burst_ms=300.0, idle_ms=500.0),
    DiurnalFamily(peak_rps=70.0, trough_fraction=0.2, period_ms=1000.0),
)
SEED = 3
BUDGET = dict(
    members_per_family=2,
    duration_ms=600.0,
    generations=2,
    population_size=6,
)


def _tiny_network():
    # Mirrors the conftest fixture; duplicated so --regenerate works as a
    # plain script outside pytest.
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )

    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


def _render(**overrides) -> str:
    network = overrides.pop("network", None) or _tiny_network()
    framework = MapAndConquer(network, seed=SEED)
    serving = framework.serving_campaign(
        EXTRA_PLATFORMS, families=FAMILIES, seed=SEED, **BUDGET, **overrides
    )
    assert len(serving.platform_names) >= 3 and len(serving.family_names) >= 3
    return traffic_ranking_summary(serving) + "\n"


@pytest.fixture(scope="module")
def golden() -> str:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name} --regenerate`"
    )
    return GOLDEN_PATH.read_text(encoding="utf-8")


def test_serial_path_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network) == golden


def test_cell_parallel_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, cell_workers=2) == golden


def test_checkpoint_resume_matches_golden(tiny_network, golden, tmp_path):
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden
    # Second pass: every cell restored from the checkpoint, bytes unchanged.
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(_render(), encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
