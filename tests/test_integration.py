"""Integration tests: the full pipeline at Visformer / VGG19 scale.

These tests reproduce -- at reduced search budgets -- the qualitative claims
of the paper that the benchmark harness then measures in full:

* the GPU-only mapping is fast but energy-hungry, the DLA-only mapping is
  slow but efficient (Fig. 1 left),
* Map-and-Conquer's dynamic mappings gain energy over GPU-only and latency
  over DLA-only while keeping accuracy close to the baseline (Fig. 6),
* the 50 % feature-reuse constraint costs accuracy (Fig. 6 right),
* the search also works with the learned surrogate in the loop (Sect. V-E).
"""

from __future__ import annotations

import pytest

from repro.core.framework import MapAndConquer
from repro.nn.models import vgg19, visformer
from repro.search.constraints import SearchConstraints
from repro.soc.platform import jetson_agx_xavier


@pytest.fixture(scope="module")
def visformer_framework():
    return MapAndConquer(visformer(), jetson_agx_xavier(), seed=0)


@pytest.fixture(scope="module")
def visformer_search(visformer_framework):
    return visformer_framework.search(generations=10, population_size=20, seed=0)


class TestBaselineShape:
    def test_gpu_fast_but_hungry_dla_slow_but_frugal(self, visformer_framework):
        gpu = visformer_framework.baseline("gpu")
        dla = visformer_framework.baseline("dla0")
        assert gpu.latency_ms < dla.latency_ms / 3  # GPU several times faster
        assert dla.energy_mj < gpu.energy_mj / 2  # DLA several times cheaper
        assert gpu.accuracy == pytest.approx(0.8809, abs=1e-4)

    def test_two_dlas_are_symmetric(self, visformer_framework):
        dla0 = visformer_framework.baseline("dla0")
        dla1 = visformer_framework.baseline("dla1")
        assert dla0.latency_ms == pytest.approx(dla1.latency_ms)
        assert dla0.energy_mj == pytest.approx(dla1.energy_mj)

    def test_static_partitioning_beats_both_deficient_metrics(self, visformer_framework):
        gpu = visformer_framework.baseline("gpu")
        dla = visformer_framework.baseline("dla0")
        static = visformer_framework.static_baseline()
        # Fig. 1: the static distributed mapping improves on DLA-only latency
        # and on GPU-only energy simultaneously.
        assert static.worst_case_latency_ms < dla.latency_ms
        assert static.worst_case_energy_mj < gpu.energy_mj


class TestSearchClaims:
    def test_dynamic_mapping_gains_energy_over_gpu(self, visformer_framework, visformer_search):
        gpu = visformer_framework.baseline("gpu")
        best_energy = visformer_framework.select_energy_oriented(
            visformer_search.pareto, max_accuracy_drop=0.02
        )
        # The paper reports up to ~2.1x; the idealised exit model makes the
        # reproduction at least as favourable.
        assert gpu.energy_mj / best_energy.energy_mj > 2.0
        assert best_energy.accuracy > 0.84

    def test_dynamic_mapping_speeds_up_dla(self, visformer_framework, visformer_search):
        dla = visformer_framework.baseline("dla0")
        best_latency = visformer_framework.select_latency_oriented(
            visformer_search.pareto, max_accuracy_drop=0.02
        )
        # The paper reports up to ~1.7x less latency than DLA-only.
        assert dla.latency_ms / best_latency.latency_ms > 1.7

    def test_accuracy_stays_close_to_baseline(self, visformer_search, visformer_framework):
        best = visformer_framework.select_energy_oriented(
            visformer_search.pareto, max_accuracy_drop=0.02
        )
        assert best.accuracy_drop < 0.04

    def test_reuse_constraint_costs_accuracy(self, visformer_framework):
        unconstrained = visformer_framework.search(
            generations=6, population_size=16, seed=1
        )
        constrained_framework = MapAndConquer(
            visformer(), jetson_agx_xavier(), max_reuse_fraction=0.5, seed=0
        )
        constrained = constrained_framework.search(
            generations=6,
            population_size=16,
            constraints=SearchConstraints(max_reuse_fraction=0.5),
            seed=1,
        )
        best_unconstrained = max(item.accuracy for item in unconstrained.pareto)
        best_constrained = max(item.accuracy for item in constrained.pareto)
        assert best_constrained <= best_unconstrained + 1e-9

    def test_pareto_front_spans_latency_energy_tradeoff(self, visformer_search):
        front = visformer_search.pareto
        assert len(front) >= 2
        latencies = [item.latency_ms for item in front]
        energies = [item.energy_mj for item in front]
        assert max(latencies) > min(latencies)
        assert max(energies) > min(energies)


class TestVGG19Generalisation:
    @pytest.fixture(scope="class")
    def vgg_framework(self):
        return MapAndConquer(vgg19(), jetson_agx_xavier(), seed=0)

    def test_vgg_baselines_match_paper_shape(self, vgg_framework):
        gpu = vgg_framework.baseline("gpu")
        dla = vgg_framework.baseline("dla0")
        # VGG19 burns several times more energy on the GPU than Visformer and
        # is much slower on the DLA -- the premise of Sect. VI-D.
        assert gpu.energy_mj > 300
        assert dla.latency_ms > 60
        assert gpu.accuracy == pytest.approx(0.8055, abs=1e-4)

    def test_vgg_search_exploits_redundancy(self, vgg_framework):
        result = vgg_framework.search(generations=8, population_size=16, seed=0)
        gpu = vgg_framework.baseline("gpu")
        dla = vgg_framework.baseline("dla0")
        best_energy = vgg_framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)
        best_latency = vgg_framework.select_latency_oriented(result.pareto, max_accuracy_drop=0.02)
        # Sect. VI-D reports up to ~4.6x energy gain and ~4.4x speedup.
        assert gpu.energy_mj / best_energy.energy_mj > 3.0
        assert dla.latency_ms / best_latency.latency_ms > 3.0
        # Dynamic VGG variants can exceed the pretrained baseline accuracy.
        assert best_energy.accuracy > 0.80

    def test_vgg_early_exit_fraction_is_high(self, vgg_framework):
        result = vgg_framework.search(generations=6, population_size=12, seed=2)
        best = vgg_framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)
        # "more than 80% of samples were correctly classified in earlier stages"
        assert best.inference.exit_statistics.early_exit_fraction > 0.6


class TestSurrogateInTheLoop:
    def test_search_with_surrogate_agrees_with_oracle(self):
        oracle_framework = MapAndConquer(visformer(), jetson_agx_xavier(), seed=0)
        surrogate_framework = MapAndConquer(
            visformer(),
            jetson_agx_xavier(),
            use_surrogate=True,
            surrogate_samples=400,
            seed=0,
        )
        config = oracle_framework.sample(seed=7)
        oracle_eval = oracle_framework.evaluate(config)
        surrogate_eval = surrogate_framework.evaluate(config)
        # The surrogate should land within a factor of two of the oracle on
        # both metrics (the paper relies on far tighter XGBoost fits; our
        # GBDT with a small dataset is intentionally cheap).
        assert surrogate_eval.latency_ms == pytest.approx(oracle_eval.latency_ms, rel=1.0)
        assert surrogate_eval.energy_mj == pytest.approx(oracle_eval.energy_mj, rel=1.0)
