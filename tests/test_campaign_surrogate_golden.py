"""Golden-file regression pin of surrogate-accelerated campaign bytes.

The surrogate path must be exactly as deterministic as the pure-oracle
campaign: one seed renders the same ``surrogate_summary`` bytes through the
serial path, the process evaluation backend, the cell-parallel runner and a
checkpoint resume.  A surrogate whose settings changed since the checkpoint
was written re-runs the affected cells instead of restoring stale results.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/test_campaign_surrogate_golden.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.campaign import run_campaign
from repro.core.report import surrogate_summary
from repro.engine.surrogate import SurrogateSettings

GOLDEN_PATH = Path(__file__).parent / "data" / "surrogate_summary_golden.txt"

GRID = ("jetson-agx-xavier", "mobile-big-little")
SEED = 0
BUDGET = dict(generations=10, population_size=6)
SURROGATE = SurrogateSettings(
    bootstrap_generations=2,
    validate_every=3,
    validation_cap=4,
    min_training_rows=8,
)


def _tiny_network():
    # Mirrors the conftest fixture; duplicated so --regenerate works as a
    # plain script outside pytest.
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )

    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


def _render(**overrides) -> str:
    network = overrides.pop("network", None) or _tiny_network()
    surrogate = overrides.pop("surrogate", SURROGATE)
    campaign = run_campaign(
        network, GRID, seed=SEED, surrogate=surrogate, **BUDGET, **overrides
    )
    return surrogate_summary(campaign) + "\n"


@pytest.fixture(scope="module")
def golden() -> str:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name} --regenerate`"
    )
    return GOLDEN_PATH.read_text(encoding="utf-8")


def test_serial_path_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network) == golden


def test_process_backend_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, backend="process", n_workers=2) == golden


def test_cell_parallel_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, cell_workers=2) == golden


def test_checkpoint_resume_matches_golden(tiny_network, golden, tmp_path):
    first = _render(network=tiny_network, checkpoint_dir=tmp_path)
    resumed = _render(network=tiny_network, checkpoint_dir=tmp_path)
    assert first == golden
    assert resumed == golden


def test_stale_surrogate_settings_rerun_cells(tiny_network, golden, tmp_path):
    # A checkpoint written under different surrogate settings must not be
    # restored into this campaign: the affected cells re-run, so the render
    # matches a fresh run byte-for-byte instead of replaying stale results.
    stale = SurrogateSettings(
        bootstrap_generations=3,
        validate_every=3,
        validation_cap=4,
        min_training_rows=8,
    )
    stale_render = _render(network=tiny_network, surrogate=stale, checkpoint_dir=tmp_path)
    assert stale_render != golden
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden


def test_oracle_campaign_unaffected_by_surrogate_checkpoint(tiny_network, tmp_path):
    from repro.core.report import campaign_summary

    _render(network=tiny_network, checkpoint_dir=tmp_path)
    plain = run_campaign(tiny_network, GRID, seed=SEED, **BUDGET)
    resumed = run_campaign(
        tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET
    )
    assert campaign_summary(resumed) == campaign_summary(plain)


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(_render(), encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
