"""Unit tests for the GBDT implementation, dataset generation and surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PredictionError
from repro.perf.dataset import BenchmarkDataset, encode_features, generate_benchmark_dataset
from repro.perf.gbdt import GradientBoostedTrees, RegressionTree
from repro.perf.layer_cost import AnalyticalCostModel, LayerWorkload
from repro.perf.predictor import SurrogateCostModel, train_surrogate
from repro.nn.layers import Conv2dLayer


@pytest.fixture(scope="module")
def synthetic_regression():
    rng = np.random.default_rng(0)
    features = rng.uniform(-2, 2, size=(400, 3))
    targets = (
        2.0 * features[:, 0]
        + np.sin(features[:, 1]) * 3.0
        + (features[:, 2] > 0) * 1.5
        + rng.normal(0, 0.05, size=400)
    )
    return features, targets


class TestRegressionTree:
    def test_fits_piecewise_constant_function(self):
        features = np.linspace(0, 1, 200)[:, None]
        targets = (features[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(features, targets)
        predictions = tree.predict(features)
        assert np.mean((predictions - targets) ** 2) < 1e-3

    def test_depth_one_is_a_stump(self):
        features = np.array([[0.0], [1.0], [2.0], [3.0]] * 5)
        targets = np.array([0.0, 0.0, 10.0, 10.0] * 5)
        tree = RegressionTree(max_depth=1, min_samples_leaf=2).fit(features, targets)
        assert set(np.round(tree.predict(features), 6)) <= {0.0, 10.0}

    def test_predict_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(PredictionError):
            RegressionTree(max_depth=0)
        with pytest.raises(PredictionError):
            RegressionTree(min_samples_leaf=0)

    def test_mismatched_shapes_rejected(self):
        tree = RegressionTree()
        with pytest.raises(PredictionError):
            tree.fit(np.zeros((5, 2)), np.zeros(4))

    def test_constant_target_yields_constant_prediction(self):
        features = np.random.default_rng(0).uniform(size=(50, 2))
        targets = np.full(50, 3.5)
        tree = RegressionTree().fit(features, targets)
        assert np.allclose(tree.predict(features), 3.5)

    def test_vectorised_predict_matches_rowwise(self, synthetic_regression):
        features, targets = synthetic_regression
        tree = RegressionTree(max_depth=5, min_samples_leaf=2).fit(features, targets)
        np.testing.assert_array_equal(tree.predict(features), tree.predict_rowwise(features))


class TestGradientBoostedTrees:
    def test_outperforms_single_tree(self, synthetic_regression):
        features, targets = synthetic_regression
        tree = RegressionTree(max_depth=3).fit(features, targets)
        boosted = GradientBoostedTrees(n_estimators=60, max_depth=3, seed=0).fit(
            features, targets
        )
        tree_mse = np.mean((tree.predict(features) - targets) ** 2)
        boosted_mse = np.mean((boosted.predict(features) - targets) ** 2)
        assert boosted_mse < tree_mse

    def test_r2_score_high_on_training_data(self, synthetic_regression):
        features, targets = synthetic_regression
        model = GradientBoostedTrees(n_estimators=80, max_depth=3, seed=0).fit(features, targets)
        assert model.score(features, targets) > 0.95

    def test_generalises_to_held_out_data(self, synthetic_regression):
        features, targets = synthetic_regression
        model = GradientBoostedTrees(n_estimators=80, max_depth=3, seed=0).fit(
            features[:300], targets[:300]
        )
        assert model.score(features[300:], targets[300:]) > 0.85

    def test_deterministic_given_seed(self, synthetic_regression):
        features, targets = synthetic_regression
        first = GradientBoostedTrees(n_estimators=20, subsample=0.8, seed=5).fit(
            features, targets
        )
        second = GradientBoostedTrees(n_estimators=20, subsample=0.8, seed=5).fit(
            features, targets
        )
        np.testing.assert_allclose(first.predict(features[:10]), second.predict(features[:10]))

    def test_single_row_prediction_accepts_1d_input(self, synthetic_regression):
        features, targets = synthetic_regression
        model = GradientBoostedTrees(n_estimators=10, seed=0).fit(features, targets)
        assert model.predict(features[0]).shape == (1,)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            GradientBoostedTrees().predict(np.zeros((1, 3)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(PredictionError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(PredictionError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(PredictionError):
            GradientBoostedTrees(subsample=1.5)

    def test_is_fitted_flag(self, synthetic_regression):
        features, targets = synthetic_regression
        model = GradientBoostedTrees(n_estimators=5, seed=0)
        assert not model.is_fitted
        model.fit(features, targets)
        assert model.is_fitted

    def test_constant_target_yields_constant_prediction(self):
        # A constant column must short-circuit to a constant predictor: no
        # degenerate splits, no NaN from zero-variance residuals.
        rng = np.random.default_rng(0)
        features = rng.uniform(size=(40, 3))
        model = GradientBoostedTrees(n_estimators=25, seed=0).fit(
            features, np.full(40, -2.25)
        )
        predictions = model.predict(rng.uniform(size=(8, 3)))
        assert np.all(np.isfinite(predictions))
        assert np.allclose(predictions, -2.25)

    def test_vectorised_predict_matches_rowwise(self, synthetic_regression):
        features, targets = synthetic_regression
        model = GradientBoostedTrees(n_estimators=40, max_depth=4, seed=0).fit(
            features, targets
        )
        np.testing.assert_array_equal(
            model.predict(features[:128]), model.predict_rowwise(features[:128])
        )


class TestBenchmarkDataset:
    def test_generation_shapes(self, platform):
        dataset = generate_benchmark_dataset(platform, num_samples=100, seed=0)
        assert len(dataset) == 100
        assert dataset.features.shape == (100, 13)
        assert np.all(dataset.latencies_ms > 0)
        assert np.all(dataset.energies_mj > 0)

    def test_generation_deterministic(self, platform):
        first = generate_benchmark_dataset(platform, num_samples=50, seed=3)
        second = generate_benchmark_dataset(platform, num_samples=50, seed=3)
        np.testing.assert_allclose(first.features, second.features)
        np.testing.assert_allclose(first.latencies_ms, second.latencies_ms)

    def test_split_preserves_rows(self, platform):
        dataset = generate_benchmark_dataset(platform, num_samples=60, seed=0)
        train, test = dataset.split(train_fraction=0.75, seed=1)
        assert len(train) + len(test) == 60
        assert len(train) == 45

    def test_split_invalid_fraction_rejected(self, platform):
        dataset = generate_benchmark_dataset(platform, num_samples=10, seed=0)
        with pytest.raises(ConfigurationError):
            dataset.split(train_fraction=1.0)

    def test_invalid_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkDataset(np.zeros((0, 3)), np.zeros(0), np.zeros(0))
        with pytest.raises(ConfigurationError):
            BenchmarkDataset(np.ones((2, 3)), np.array([1.0, -1.0]), np.array([1.0, 1.0]))

    def test_encode_features_layout(self, platform):
        layer = Conv2dLayer(
            name="c", width=32, in_width=16, kernel_size=3, stride=1,
            in_spatial=(8, 8), out_spatial=(8, 8),
        )
        workload = LayerWorkload.from_layer(layer)
        gpu = platform.unit("gpu")
        features = encode_features(workload, gpu, 0.5)
        assert features.shape == (13,)
        assert features[8] == pytest.approx(gpu.peak_gflops)
        assert features[-1] == pytest.approx(0.5)

    def test_invalid_num_samples_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            generate_benchmark_dataset(platform, num_samples=0)


class TestSurrogate:
    @pytest.fixture(scope="class")
    def surrogate_and_data(self, platform):
        dataset = generate_benchmark_dataset(platform, num_samples=700, noise_std=0.03, seed=0)
        train, test = dataset.split(train_fraction=0.85, seed=0)
        surrogate = train_surrogate(
            platform, dataset=train, n_estimators=80, max_depth=5, seed=0
        )
        return surrogate, test

    def test_predictions_positive(self, surrogate_and_data, platform):
        surrogate, _ = surrogate_and_data
        layer = Conv2dLayer(
            name="c", width=128, in_width=64, kernel_size=3, stride=1,
            in_spatial=(16, 16), out_spatial=(16, 16),
        )
        workload = LayerWorkload.from_layer(layer)
        for unit in platform.compute_units:
            assert surrogate.latency_ms(workload, unit, 1.0) > 0
            assert surrogate.energy_mj(workload, unit, 1.0) > 0

    def test_heldout_quality(self, surrogate_and_data):
        surrogate, test = surrogate_and_data
        metrics = surrogate.evaluate(test)
        assert metrics["latency_r2"] > 0.8
        assert metrics["energy_r2"] > 0.8

    def test_surrogate_tracks_oracle_ordering(self, surrogate_and_data, platform):
        surrogate, _ = surrogate_and_data
        oracle = AnalyticalCostModel()
        layer = Conv2dLayer(
            name="c", width=256, in_width=128, kernel_size=3, stride=1,
            in_spatial=(16, 16), out_spatial=(16, 16),
        )
        workload = LayerWorkload.from_layer(layer)
        gpu, dla = platform.unit("gpu"), platform.unit("dla0")
        # The learned model should agree that the GPU is faster and the DLA
        # cheaper on this clearly compute-heavy workload.
        assert surrogate.latency_ms(workload, gpu, 1.0) < surrogate.latency_ms(workload, dla, 1.0)
        assert surrogate.energy_mj(workload, dla, 1.0) < surrogate.energy_mj(workload, gpu, 1.0)
        assert oracle.latency_ms(workload, gpu, 1.0) < oracle.latency_ms(workload, dla, 1.0)

    def test_unfitted_models_rejected(self):
        with pytest.raises(PredictionError):
            SurrogateCostModel(GradientBoostedTrees(), GradientBoostedTrees())
