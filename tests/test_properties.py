"""Property-based tests (hypothesis) for the core data structures and models.

These tests pin down the invariants the rest of the library relies on:
channel splits always conserve the layer width, coverage and power stay in
their physical ranges, exit statistics always form a distribution, the
concurrent schedule is never faster than its slowest busy stage, and Pareto
fronts never contain dominated points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.accuracy import AccuracyModel
from repro.dynamics.samples import compute_exit_statistics
from repro.nn.partition import IndicatorMatrix, PartitionMatrix, split_units
from repro.perf.layer_cost import AnalyticalCostModel, LayerWorkload
from repro.soc.dvfs import DvfsTable, PowerModel
from repro.soc.platform import jetson_agx_xavier
from repro.utils import geometric_mean

PLATFORM = jetson_agx_xavier()
COST_MODEL = AnalyticalCostModel()


# -- strategies ---------------------------------------------------------------
positive_fractions = st.lists(
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False), min_size=1, max_size=6
).map(lambda values: [v / sum(values) for v in values])


@st.composite
def widths_and_fractions(draw):
    num_shares = draw(st.integers(min_value=1, max_value=6))
    granularity = draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
    granules = draw(st.integers(min_value=num_shares, max_value=64))
    raw = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=num_shares,
            max_size=num_shares,
        )
    )
    fractions = [value / sum(raw) for value in raw]
    return granules * granularity, fractions, granularity


@st.composite
def workloads(draw):
    kind = draw(st.sampled_from(["conv2d", "attention", "feedforward", "linear"]))
    flops = draw(st.floats(min_value=1e3, max_value=1e10, allow_nan=False))
    input_bytes = draw(st.floats(min_value=1.0, max_value=1e7, allow_nan=False))
    output_bytes = draw(st.floats(min_value=1.0, max_value=1e7, allow_nan=False))
    weight_bytes = draw(st.floats(min_value=1.0, max_value=1e8, allow_nan=False))
    return LayerWorkload(
        kind=kind,
        flops=flops,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        weight_bytes=weight_bytes,
    )


# -- split_units ----------------------------------------------------------------
class TestSplitUnitsProperties:
    @given(widths_and_fractions())
    @settings(max_examples=200, deadline=None)
    def test_split_conserves_width_and_granularity(self, case):
        width, fractions, granularity = case
        shares = split_units(width, fractions, granularity=granularity)
        assert sum(shares) == width
        assert all(share % granularity == 0 for share in shares)
        assert all(share >= granularity for share in shares)

    @given(widths_and_fractions())
    @settings(max_examples=100, deadline=None)
    def test_split_tracks_requested_fractions(self, case):
        width, fractions, granularity = case
        shares = split_units(width, fractions, granularity=granularity)
        for share, fraction in zip(shares, fractions):
            # The one-granule floor for every share can push a single share
            # away from its ideal by at most one granule per other share.
            assert abs(share - fraction * width) <= granularity * len(fractions)


# -- partition / indicator matrices ----------------------------------------------
class TestMatrixProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_uniform_partition_is_valid(self, stages, layers):
        matrix = PartitionMatrix.uniform(stages, layers)
        assert matrix.num_stages == stages
        assert matrix.num_layers == layers
        np.testing.assert_allclose(matrix.values.sum(axis=0), 1.0)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=12),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_reuse_fraction_in_unit_interval(self, stages, layers, data):
        bits = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=1),
                min_size=stages * layers,
                max_size=stages * layers,
            )
        )
        indicator = IndicatorMatrix(np.array(bits).reshape(stages, layers))
        assert 0.0 <= indicator.reuse_fraction() <= 1.0


# -- accuracy model ----------------------------------------------------------------
class TestAccuracyModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.3, max_value=0.99, allow_nan=False),
        st.sampled_from(["vit", "cnn"]),
    )
    @settings(max_examples=200, deadline=None)
    def test_accuracy_stays_in_range(self, coverage, base, family):
        model = AccuracyModel()
        accuracy = model.stage_accuracy_from_coverage(coverage, base, family)
        assert 0.0 <= accuracy <= 0.995

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=2, max_size=8),
        st.floats(min_value=0.3, max_value=0.99, allow_nan=False),
        st.sampled_from(["vit", "cnn"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_coverage(self, coverages, base, family):
        model = AccuracyModel()
        ordered = sorted(coverages)
        accuracies = [
            model.stage_accuracy_from_coverage(c, base, family) for c in ordered
        ]
        assert all(b >= a - 1e-12 for a, b in zip(accuracies, accuracies[1:]))


# -- exit statistics ------------------------------------------------------------------
class TestExitStatisticsProperties:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=0.99, allow_nan=False), min_size=1, max_size=6
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_fractions_form_distribution(self, raw):
        accuracies = sorted(raw)
        stats = compute_exit_statistics(accuracies)
        assert sum(stats.exit_fractions) == pytest.approx(1.0)
        assert all(fraction >= -1e-12 for fraction in stats.exit_fractions)
        assert 1.0 <= stats.expected_stages() <= len(accuracies)
        assert stats.accuracy == pytest.approx(accuracies[-1])


# -- cost model ----------------------------------------------------------------------
class TestCostModelProperties:
    @given(workloads(), st.sampled_from(["gpu", "dla0", "dla1"]), st.floats(0.2, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_latency_and_energy_positive(self, workload, unit_name, scale):
        unit = PLATFORM.unit(unit_name)
        latency = COST_MODEL.latency_ms(workload, unit, scale)
        energy = COST_MODEL.energy_mj(workload, unit, scale)
        assert latency >= unit.launch_overhead_ms
        assert energy > 0
        assert energy == pytest.approx(latency * unit.power_w(scale))

    @given(workloads(), st.sampled_from(["gpu", "dla0"]))
    @settings(max_examples=100, deadline=None)
    def test_latency_monotone_in_dvfs(self, workload, unit_name):
        unit = PLATFORM.unit(unit_name)
        scales = unit.dvfs.scales()
        latencies = [COST_MODEL.latency_ms(workload, unit, s) for s in scales]
        assert all(b <= a + 1e-12 for a, b in zip(latencies, latencies[1:]))


# -- DVFS / power ----------------------------------------------------------------------
class TestPowerModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_power_between_static_and_max(self, static, dynamic, scale):
        model = PowerModel(static_w=static, dynamic_w=dynamic)
        power = model.power_w(scale)
        assert static <= power <= model.max_power_w + 1e-12

    @given(st.lists(st.floats(min_value=1.0, max_value=3000.0), min_size=1, max_size=20, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_dvfs_scales_normalised(self, frequencies):
        table = DvfsTable.from_frequencies(frequencies)
        scales = table.scales()
        assert max(scales) == pytest.approx(1.0)
        assert all(0 < s <= 1 for s in scales)


# -- utils -------------------------------------------------------------------------------
class TestUtilsProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_geometric_mean_bounded_by_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= result <= max(values) * (1 + 1e-9)
