"""Unit tests for the shared utilities and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors
from repro.utils import (
    as_rng,
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
    geometric_mean,
    pairwise,
)


class TestValidationHelpers:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(errors.ConfigurationError):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(errors.ConfigurationError):
            check_non_negative(-0.1, "x")

    def test_check_fraction(self):
        assert check_fraction(0.5, "x") == 0.5
        assert check_fraction(0.0, "x") == 0.0
        with pytest.raises(errors.ConfigurationError):
            check_fraction(0.0, "x", allow_zero=False)
        with pytest.raises(errors.ConfigurationError):
            check_fraction(1.1, "x")

    def test_check_probability_vector(self):
        result = check_probability_vector([0.25, 0.25, 0.5], "p")
        assert result.sum() == pytest.approx(1.0)
        with pytest.raises(errors.ConfigurationError):
            check_probability_vector([0.3, 0.3], "p")
        with pytest.raises(errors.ConfigurationError):
            check_probability_vector([], "p")
        with pytest.raises(errors.ConfigurationError):
            check_probability_vector([-0.5, 1.5], "p")


class TestRngAndIterables:
    def test_as_rng_accepts_seed_generator_and_none(self):
        assert isinstance(as_rng(3), np.random.Generator)
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_deterministic_per_seed(self):
        assert as_rng(7).integers(0, 1000) == as_rng(7).integers(0, 1000)

    def test_pairwise(self):
        assert list(pairwise([1, 2, 3, 4])) == [(1, 2), (2, 3), (3, 4)]
        assert list(pairwise([1])) == []
        assert list(pairwise([])) == []

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)
        with pytest.raises(errors.ConfigurationError):
            geometric_mean([])
        with pytest.raises(errors.ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        specific = (
            errors.ConfigurationError,
            errors.PartitionError,
            errors.MappingError,
            errors.PlatformError,
            errors.ConstraintViolation,
            errors.SearchError,
            errors.PredictionError,
        )
        for error_type in specific:
            assert issubclass(error_type, errors.ReproError)

    def test_partition_and_mapping_errors_are_configuration_errors(self):
        assert issubclass(errors.PartitionError, errors.ConfigurationError)
        assert issubclass(errors.MappingError, errors.ConfigurationError)
        assert issubclass(errors.PlatformError, errors.ConfigurationError)

    def test_catching_base_class_catches_specific(self):
        with pytest.raises(errors.ReproError):
            raise errors.SearchError("boom")


class TestPackageSurface:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
        assert repro.__version__ == "1.5.0"
