"""Property tests (hypothesis) pinning every arrival-process family.

The serving campaign's byte-determinism rests on the workload layer: every
:class:`~repro.serving.workload.ArrivalProcess` must generate sorted,
non-negative, in-window arrival times whose empirical rate matches its
configured rate, bit-identically for a given seed.  These tests assert those
invariants for all five process families plus the
:mod:`repro.serving.families` expansion protocol on top of them.

The statistical (mean-rate) tests run derandomized so CI never flakes on an
unlucky draw; the tolerance is six sigma of the corresponding Poisson count
on top of that.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.families import (
    DiurnalFamily,
    MultiTenantMixFamily,
    OnOffBurstFamily,
    SteadyPoissonFamily,
    default_families,
    member_traffic_seed,
)
from repro.serving.workload import (
    ConstantRate,
    DiurnalArrivals,
    MultiTenantStream,
    OnOffBursts,
    PoissonArrivals,
)

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


# -- strategies ---------------------------------------------------------------
@st.composite
def any_process(draw):
    """One arrival process of any family with healthy random parameters."""
    kind = draw(st.sampled_from(["constant", "poisson", "bursts", "diurnal", "multi"]))
    rate = draw(st.floats(min_value=5.0, max_value=300.0))
    if kind == "constant":
        return ConstantRate(rate, phase_ms=draw(st.floats(min_value=0.0, max_value=50.0)))
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "bursts":
        return OnOffBursts(
            burst_rps=rate,
            idle_rps=draw(st.floats(min_value=0.0, max_value=20.0)),
            burst_ms=draw(st.floats(min_value=50.0, max_value=800.0)),
            idle_ms=draw(st.floats(min_value=50.0, max_value=800.0)),
        )
    if kind == "diurnal":
        trough = draw(st.floats(min_value=0.0, max_value=rate))
        return DiurnalArrivals(
            peak_rps=rate,
            trough_rps=trough,
            period_ms=draw(st.floats(min_value=200.0, max_value=3000.0)),
        )
    return MultiTenantStream(
        (
            PoissonArrivals(rate, tenant="a"),
            OnOffBursts(
                burst_rps=rate, idle_rps=0.0, burst_ms=200.0, idle_ms=300.0, tenant="b"
            ),
        )
    )


# -- structural invariants (hold for every draw, so randomization is safe) ----
class TestStructuralInvariants:
    @given(process=any_process(), seed=SEEDS, duration=st.floats(200.0, 5000.0))
    @settings(max_examples=150, deadline=None)
    def test_sorted_non_negative_within_window(self, process, seed, duration):
        requests = process.generate(duration, seed=seed)
        times = [request.arrival_ms for request in requests]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)
        assert all(t < duration for t in times)

    @given(process=any_process(), seed=SEEDS, duration=st.floats(200.0, 5000.0))
    @settings(max_examples=100, deadline=None)
    def test_byte_deterministic_per_seed(self, process, seed, duration):
        first = process.generate(duration, seed=seed)
        second = process.generate(duration, seed=seed)
        # Request is a frozen dataclass: equality is exact float equality.
        assert first == second


# -- mean-rate tolerances (statistical: derandomized, six-sigma bounds) -------
def _observed_rate(process, duration_ms, seed):
    return len(process.generate(duration_ms, seed=seed)) * 1000.0 / duration_ms


class TestMeanRates:
    @given(
        rate=st.floats(20.0, 200.0),
        phase=st.floats(0.0, 20.0),
        duration=st.floats(4000.0, 20000.0),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_constant_rate_is_exact_within_one_arrival(self, rate, phase, duration):
        process = ConstantRate(rate, phase_ms=phase)
        count = len(process.generate(duration, seed=0))
        expected = (duration - phase) * rate / 1000.0
        assert abs(count - expected) <= 1.0 + 1e-6

    @given(rate=st.floats(50.0, 200.0), duration=st.floats(5000.0, 20000.0), seed=SEEDS)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_poisson_mean_rate(self, rate, duration, seed):
        expected = rate * duration / 1000.0
        observed = _observed_rate(PoissonArrivals(rate), duration, seed) * duration / 1000.0
        assert abs(observed - expected) <= 6.0 * expected**0.5

    @given(
        burst_rps=st.floats(80.0, 250.0),
        idle_rps=st.floats(0.0, 30.0),
        burst_ms=st.floats(100.0, 600.0),
        idle_ms=st.floats(100.0, 600.0),
        seed=SEEDS,
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_on_off_mean_rate(self, burst_rps, idle_rps, burst_ms, idle_ms, seed):
        duration = 20000.0
        process = OnOffBursts(burst_rps, idle_rps, burst_ms, idle_ms)
        # Walk the deterministic phase envelope to integrate the exact
        # expected count (the final phase is generally truncated).
        expected = 0.0
        start, bursting = 0.0, True
        while start < duration:
            phase = burst_ms if bursting else idle_ms
            rate = burst_rps if bursting else idle_rps
            end = min(start + phase, duration)
            expected += rate * (end - start) / 1000.0
            start, bursting = end, not bursting
        observed = len(process.generate(duration, seed=seed))
        assert abs(observed - expected) <= 6.0 * max(expected, 1.0) ** 0.5

    @given(
        peak=st.floats(60.0, 200.0),
        trough_fraction=st.floats(0.0, 1.0),
        periods=st.integers(4, 12),
        seed=SEEDS,
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_diurnal_mean_rate_over_whole_periods(
        self, peak, trough_fraction, periods, seed
    ):
        trough = peak * trough_fraction
        period_ms = 2000.0
        duration = periods * period_ms
        process = DiurnalArrivals(peak_rps=peak, trough_rps=trough, period_ms=period_ms)
        # Over whole periods the sinusoid integrates to its midpoint rate.
        expected = (peak + trough) / 2.0 * duration / 1000.0
        observed = len(process.generate(duration, seed=seed))
        # The thinned process is Poisson with the integrated rate, but bound
        # by the variance of the *candidate* stream at the peak rate.
        sigma = (peak * duration / 1000.0) ** 0.5
        assert abs(observed - expected) <= 6.0 * max(sigma, 1.0)

    @given(rate_a=st.floats(40.0, 120.0), rate_b=st.floats(40.0, 120.0), seed=SEEDS)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_multi_tenant_mean_rate_is_sum_of_tenants(self, rate_a, rate_b, seed):
        duration = 15000.0
        stream = MultiTenantStream(
            (PoissonArrivals(rate_a, tenant="a"), PoissonArrivals(rate_b, tenant="b"))
        )
        expected = (rate_a + rate_b) * duration / 1000.0
        observed = len(stream.generate(duration, seed=seed))
        assert abs(observed - expected) <= 6.0 * expected**0.5


# -- multi-tenant merge ordering ----------------------------------------------
class TestMultiTenantMerge:
    @given(seed=SEEDS, duration=st.floats(500.0, 4000.0))
    @settings(max_examples=80, deadline=None)
    def test_merge_is_sorted_with_tenant_tiebreak(self, seed, duration):
        stream = MultiTenantStream(
            (
                PoissonArrivals(80.0, tenant="steady"),
                OnOffBursts(
                    burst_rps=120.0,
                    idle_rps=0.0,
                    burst_ms=200.0,
                    idle_ms=300.0,
                    tenant="bursty",
                ),
            )
        )
        merged = stream.generate(duration, seed=seed)
        keys = [(request.arrival_ms, request.tenant) for request in merged]
        assert keys == sorted(keys)
        assert {request.tenant for request in merged} <= {"steady", "bursty"}

    @given(seed=SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_byte_deterministic(self, seed):
        stream = MultiTenantStream(
            (
                PoissonArrivals(60.0, tenant="a"),
                PoissonArrivals(90.0, tenant="b"),
                OnOffBursts(
                    burst_rps=100.0, idle_rps=5.0, burst_ms=150.0, idle_ms=250.0, tenant="c"
                ),
            )
        )
        assert stream.generate(2000.0, seed=seed) == stream.generate(2000.0, seed=seed)


# -- family expansion protocol ------------------------------------------------
FAMILY_EXAMPLES = (
    SteadyPoissonFamily(),
    OnOffBurstFamily(),
    DiurnalFamily(),
    MultiTenantMixFamily(),
)


class TestFamilyExpansion:
    @given(family=st.sampled_from(FAMILY_EXAMPLES), seed=SEEDS, n=st.integers(1, 5))
    @settings(max_examples=80, deadline=None)
    def test_expansion_is_deterministic_per_seed(self, family, seed, n):
        first = family.expand(seed, n)
        second = family.expand(seed, n)
        assert len(first) == n
        for a, b in zip(first, second):
            assert a.generate(500.0, seed=0) == b.generate(500.0, seed=0)

    @given(family=st.sampled_from(FAMILY_EXAMPLES), seed=SEEDS, n=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_expansion_prefix_stable_when_grown(self, family, seed, n):
        small = family.expand(seed, n)
        large = family.expand(seed, n + 2)
        for a, b in zip(small, large):
            assert a.generate(500.0, seed=0) == b.generate(500.0, seed=0)

    @given(seed=SEEDS, index=st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_member_traffic_seed_depends_on_family_name(self, seed, index):
        seeds = {
            member_traffic_seed(seed, family.name, index) for family in default_families()
        }
        assert len(seeds) == len(default_families())
        assert member_traffic_seed(seed, "diurnal", index) == member_traffic_seed(
            seed, "diurnal", index
        )
