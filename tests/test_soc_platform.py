"""Unit tests for compute units, interconnect, shared memory and the platform."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, PlatformError
from repro.soc.compute_unit import ComputeUnit, ComputeUnitKind
from repro.soc.dvfs import DvfsTable, PowerModel
from repro.soc.interconnect import Interconnect
from repro.soc.memory import SharedMemory
from repro.soc.platform import Platform, jetson_agx_xavier


def make_unit(name="gpu", kind=ComputeUnitKind.GPU, peak=40.0):
    return ComputeUnit(
        name=name,
        kind=kind,
        peak_gflops=peak,
        memory_bandwidth_gbs=100.0,
        launch_overhead_ms=0.1,
        power=PowerModel(static_w=2.0, dynamic_w=8.0),
        dvfs=DvfsTable.from_frequencies([300, 600, 1200]),
        utilisation={"conv2d": 1.0, "attention": 0.5},
    )


class TestComputeUnit:
    def test_effective_gflops_scales_with_dvfs(self):
        unit = make_unit()
        assert unit.effective_gflops("conv2d", 1.0) == pytest.approx(40.0)
        assert unit.effective_gflops("conv2d", 0.5) == pytest.approx(20.0)

    def test_effective_gflops_uses_layer_utilisation(self):
        unit = make_unit()
        assert unit.effective_gflops("attention", 1.0) == pytest.approx(20.0)
        # Unknown layer kinds fall back to a conservative default.
        assert unit.effective_gflops("pooling", 1.0) == pytest.approx(40.0 * 0.30)

    def test_bandwidth_derated_by_half_the_scale(self):
        unit = make_unit()
        assert unit.effective_bandwidth_gbs(1.0) == pytest.approx(100.0)
        assert unit.effective_bandwidth_gbs(0.5) == pytest.approx(75.0)

    def test_power_follows_linear_model(self):
        unit = make_unit()
        assert unit.power_w(1.0) == pytest.approx(10.0)
        assert unit.power_w(0.25) == pytest.approx(4.0)

    def test_dvfs_helpers(self):
        unit = make_unit()
        assert unit.num_dvfs_points() == 3
        assert unit.scale_for_point(0) == pytest.approx(0.25)

    def test_invalid_scale_rejected(self):
        unit = make_unit()
        with pytest.raises(ConfigurationError):
            unit.effective_gflops("conv2d", 0.0)
        with pytest.raises(ConfigurationError):
            unit.effective_bandwidth_gbs(1.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            make_unit(peak=-1.0)
        with pytest.raises(ConfigurationError):
            ComputeUnit(
                name="",
                kind=ComputeUnitKind.GPU,
                peak_gflops=1.0,
                memory_bandwidth_gbs=1.0,
                launch_overhead_ms=0.0,
                power=PowerModel(1.0, 1.0),
                dvfs=DvfsTable.from_frequencies([100]),
            )

    def test_kind_coercion_from_string(self):
        unit = ComputeUnit(
            name="dla",
            kind="dla",
            peak_gflops=10.0,
            memory_bandwidth_gbs=40.0,
            launch_overhead_ms=0.2,
            power=PowerModel(0.2, 0.8),
            dvfs=DvfsTable.from_frequencies([500, 1000]),
        )
        assert unit.kind is ComputeUnitKind.DLA

    def test_describe_contains_name(self):
        assert "gpu" in make_unit().describe()


class TestInterconnect:
    def test_zero_bytes_costs_nothing(self):
        link = Interconnect()
        assert link.transfer_latency_ms(0) == 0.0
        assert link.transfer_energy_mj(0) == 0.0

    def test_latency_has_sync_overhead_plus_copy(self):
        link = Interconnect(bandwidth_gbs=100.0, sync_overhead_ms=0.05)
        one_mb = 1_000_000
        expected_copy_ms = 2 * one_mb / (100e9) * 1e3
        assert link.transfer_latency_ms(one_mb) == pytest.approx(0.05 + expected_copy_ms)

    def test_energy_proportional_to_bytes(self):
        link = Interconnect(energy_pj_per_byte=60.0)
        assert link.transfer_energy_mj(2_000_000) == pytest.approx(
            2 * link.transfer_energy_mj(1_000_000)
        )

    def test_latency_monotone_in_bytes(self):
        link = Interconnect()
        assert link.transfer_latency_ms(10_000) < link.transfer_latency_ms(10_000_000)

    def test_negative_bytes_rejected(self):
        link = Interconnect()
        with pytest.raises(ConfigurationError):
            link.transfer_latency_ms(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            Interconnect(bandwidth_gbs=0.0)


class TestSharedMemory:
    def test_fits_within_budget(self):
        memory = SharedMemory(capacity_bytes=1000, feature_budget_bytes=100)
        assert memory.fits(50)
        assert memory.fits(100)
        assert not memory.fits(101)

    def test_utilisation(self):
        memory = SharedMemory(capacity_bytes=1000, feature_budget_bytes=200)
        assert memory.utilisation(100) == pytest.approx(0.5)

    def test_budget_cannot_exceed_capacity(self):
        with pytest.raises(ConfigurationError):
            SharedMemory(capacity_bytes=100, feature_budget_bytes=200)

    def test_negative_usage_rejected(self):
        memory = SharedMemory(capacity_bytes=100, feature_budget_bytes=50)
        with pytest.raises(ConfigurationError):
            memory.fits(-1)


class TestPlatform:
    def test_xavier_composition(self, platform):
        assert platform.num_units == 3
        assert platform.unit_names == ("gpu", "dla0", "dla1")
        assert platform.unit("gpu").kind is ComputeUnitKind.GPU
        assert len(platform.units_of_kind("dla")) == 2

    def test_xavier_with_cpu(self, platform_with_cpu):
        assert platform_with_cpu.num_units == 4
        assert platform_with_cpu.unit("cpu").kind is ComputeUnitKind.CPU

    def test_gpu_faster_but_hungrier_than_dla(self, platform):
        gpu, dla = platform.unit("gpu"), platform.unit("dla0")
        assert gpu.peak_gflops > dla.peak_gflops
        assert gpu.power.max_power_w > dla.power.max_power_w

    def test_dla_weak_on_attention(self, platform):
        dla = platform.unit("dla0")
        assert dla.utilisation_for("attention") < dla.utilisation_for("conv2d")

    def test_unit_lookup_and_index(self, platform):
        assert platform.unit_index("dla1") == 2
        with pytest.raises(PlatformError):
            platform.unit("npu")
        with pytest.raises(PlatformError):
            platform.unit_index("npu")

    def test_dvfs_space_size_is_product(self, platform):
        expected = 1
        for unit in platform.compute_units:
            expected *= unit.num_dvfs_points()
        assert platform.dvfs_space_size() == expected

    def test_describe_lists_all_units(self, platform):
        text = platform.describe()
        for name in platform.unit_names:
            assert name in text

    def test_duplicate_units_rejected(self):
        unit = make_unit()
        with pytest.raises(PlatformError):
            Platform(
                name="bad",
                compute_units=(unit, unit),
                interconnect=Interconnect(),
                shared_memory=SharedMemory(capacity_bytes=100, feature_budget_bytes=10),
            )

    def test_empty_platform_rejected(self):
        with pytest.raises(PlatformError):
            Platform(
                name="bad",
                compute_units=(),
                interconnect=Interconnect(),
                shared_memory=SharedMemory(capacity_bytes=100, feature_budget_bytes=10),
            )

    def test_feature_budget_configurable(self):
        platform = jetson_agx_xavier(feature_budget_mib=2.0)
        assert platform.shared_memory.feature_budget_bytes == 2 * 2**20
