"""Tests for the evaluation cache, content keys and JSONL persistence."""

from __future__ import annotations

import json

import pytest

from repro.engine.cache import CacheStats, EvaluationCache
from repro.errors import ConfigurationError
from repro.search.evaluation import ConfigEvaluator


@pytest.fixture()
def evaluated_pair(tiny_config_evaluator, tiny_space):
    """Two distinct evaluated configurations plus their digests."""
    config_a = tiny_space.sample(0)
    config_b = tiny_space.sample(1)
    return (
        (tiny_config_evaluator.content_digest(config_a), tiny_config_evaluator.evaluate(config_a)),
        (tiny_config_evaluator.content_digest(config_b), tiny_config_evaluator.evaluate(config_b)),
    )


class TestContentKeys:
    def test_same_config_same_key(self, tiny_config_evaluator, tiny_space):
        config = tiny_space.sample(0)
        assert tiny_config_evaluator.config_key(config) == tiny_config_evaluator.config_key(config)
        assert tiny_config_evaluator.content_digest(config) == tiny_config_evaluator.content_digest(
            config
        )

    def test_distinct_configs_distinct_keys(self, tiny_config_evaluator, tiny_space):
        config_a, config_b = tiny_space.sample(0), tiny_space.sample(1)
        assert tiny_config_evaluator.config_key(config_a) != tiny_config_evaluator.config_key(
            config_b
        )

    def test_reorder_channels_feeds_the_key(self, tiny_network, platform, tiny_space):
        """Two evaluators differing only in ``reorder_channels`` never alias."""
        config = tiny_space.sample(0)
        with_reorder = ConfigEvaluator(network=tiny_network, platform=platform, seed=0)
        without_reorder = ConfigEvaluator(
            network=tiny_network, platform=platform, reorder_channels=False, seed=0
        )
        assert with_reorder.config_key(config) != without_reorder.config_key(config)
        assert with_reorder.content_digest(config) != without_reorder.content_digest(config)

    def test_ranking_seed_feeds_the_key(self, tiny_network, platform, tiny_space):
        """Two evaluators with differently seeded rankings never alias."""
        config = tiny_space.sample(0)
        seeded_zero = ConfigEvaluator(network=tiny_network, platform=platform, seed=0)
        seeded_seven = ConfigEvaluator(network=tiny_network, platform=platform, seed=7)
        assert seeded_zero.config_key(config) != seeded_seven.config_key(config)

    def test_ranking_order_feeds_the_key(self, tiny_network, platform, tiny_space, tiny_ranking):
        """Equal scores with a different channel order never alias."""
        from repro.nn.channels import ChannelRanking

        reordered = ChannelRanking(
            network_name=tiny_ranking.network_name,
            scores=tiny_ranking.scores,
            order={name: order[::-1] for name, order in tiny_ranking.order.items()},
        )
        config = tiny_space.sample(0)
        original = ConfigEvaluator(
            network=tiny_network, platform=platform, ranking=tiny_ranking, seed=0
        )
        flipped = ConfigEvaluator(
            network=tiny_network, platform=platform, ranking=reordered, seed=0
        )
        assert original.content_digest(config) != flipped.content_digest(config)

    def test_validation_samples_feed_the_key(self, tiny_network, platform, tiny_space):
        config = tiny_space.sample(0)
        few = ConfigEvaluator(
            network=tiny_network, platform=platform, validation_samples=100, seed=0
        )
        many = ConfigEvaluator(
            network=tiny_network, platform=platform, validation_samples=500, seed=0
        )
        assert few.config_key(config) != many.config_key(config)

    def test_digest_stable_across_evaluator_instances(self, tiny_network, platform, tiny_space):
        """Identically configured evaluators agree on digests (persistence)."""
        config = tiny_space.sample(3)
        first = ConfigEvaluator(network=tiny_network, platform=platform, seed=0)
        second = ConfigEvaluator(network=tiny_network, platform=platform, seed=0)
        assert first.content_digest(config) == second.content_digest(config)

    def test_cost_model_parameters_feed_the_key(self, tiny_network, platform, tiny_space):
        """Same-class cost models with different state never alias."""
        from repro.perf.layer_cost import NoisyCostModel

        config = tiny_space.sample(0)
        mild = ConfigEvaluator(
            network=tiny_network,
            platform=platform,
            cost_model=NoisyCostModel(noise_std=0.01, seed=0),
            seed=0,
        )
        wild = ConfigEvaluator(
            network=tiny_network,
            platform=platform,
            cost_model=NoisyCostModel(noise_std=0.3, seed=0),
            seed=0,
        )
        assert mild.config_key(config) != wild.config_key(config)

    def test_unpicklable_cost_model_still_constructs(self, tiny_network, platform, tiny_space):
        """Custom models that cannot pickle keep working (unique fingerprint)."""
        from repro.perf.layer_cost import AnalyticalCostModel

        class OpaqueModel(AnalyticalCostModel):
            def __init__(self):
                super().__init__()
                self.hook = lambda value: value  # lambdas do not pickle

        evaluator = ConfigEvaluator(
            network=tiny_network, platform=platform, cost_model=OpaqueModel(), seed=0
        )
        config = tiny_space.sample(0)
        assert evaluator.evaluate(config).latency_ms > 0
        assert "unpicklable" in evaluator.identity_key()[5][1]


class TestCacheStats:
    def test_hit_rate_of_unused_cache_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_window_hit_rate(self):
        stats = CacheStats()
        stats.misses = 4
        snapshot = stats.snapshot()
        stats.hits += 3
        stats.misses += 1
        assert stats.window_hit_rate(snapshot) == pytest.approx(0.75)
        assert stats.hit_rate == pytest.approx(3 / 8)


class TestEvaluationCache:
    def test_lookup_miss_then_hit(self, evaluated_pair):
        (digest, value), _ = evaluated_pair
        cache = EvaluationCache()
        assert cache.lookup(digest) is None
        cache.store(digest, value)
        assert cache.lookup(digest) is value
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1
        assert digest in cache

    def test_peek_does_not_count(self, evaluated_pair):
        (digest, value), _ = evaluated_pair
        cache = EvaluationCache()
        cache.store(digest, value)
        assert cache.peek(digest) is value
        assert cache.stats.lookups == 0

    def test_store_rejects_foreign_values(self):
        cache = EvaluationCache()
        with pytest.raises(ConfigurationError):
            cache.store("deadbeef", "not an EvaluatedConfig")

    def test_duplicate_store_is_idempotent(self, evaluated_pair, tmp_path):
        (digest, value), _ = evaluated_pair
        cache = EvaluationCache(path=tmp_path / "cache.jsonl")
        cache.store(digest, value)
        cache.store(digest, value)
        assert len((tmp_path / "cache.jsonl").read_text(encoding="utf-8").splitlines()) == 1

    def test_get_many_counts_one_pass(self, evaluated_pair):
        (digest_a, value_a), (digest_b, _) = evaluated_pair
        cache = EvaluationCache()
        cache.store(digest_a, value_a)
        found = cache.get_many([digest_a, digest_b, digest_a])
        assert found == {digest_a: value_a}
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 3

    def test_get_many_of_nothing_is_empty(self):
        cache = EvaluationCache()
        assert cache.get_many([]) == {}
        assert cache.stats.lookups == 0

    def test_store_many_skips_existing_and_persists_new(self, evaluated_pair, tmp_path):
        (digest_a, value_a), (digest_b, value_b) = evaluated_pair
        path = tmp_path / "cache.jsonl"
        cache = EvaluationCache(path=path)
        cache.store(digest_a, value_a)
        cache.store_many([(digest_a, value_a), (digest_b, value_b)])
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2
        assert cache.peek(digest_b) is value_b

    def test_store_many_rejects_foreign_values(self, evaluated_pair):
        (digest, _), _ = evaluated_pair
        cache = EvaluationCache()
        with pytest.raises(ConfigurationError):
            cache.store_many([(digest, "not an EvaluatedConfig")])

    def test_items_iterates_without_stats(self, evaluated_pair):
        cache = EvaluationCache()
        for digest, value in evaluated_pair:
            cache.store(digest, value)
        assert dict(cache.items()) == {digest: value for digest, value in evaluated_pair}
        assert cache.stats.lookups == 0


class TestPersistence:
    def test_round_trip(self, evaluated_pair, tmp_path):
        path = tmp_path / "cache.jsonl"
        writer = EvaluationCache(path=path)
        for digest, value in evaluated_pair:
            writer.store(digest, value)

        reader = EvaluationCache(path=path)
        assert reader.stats.loaded == 2
        for digest, value in evaluated_pair:
            restored = reader.lookup(digest)
            assert restored is not None
            assert restored.latency_ms == pytest.approx(value.latency_ms)
            assert restored.energy_mj == pytest.approx(value.energy_mj)
            assert restored.accuracy == pytest.approx(value.accuracy)

    def test_lines_are_valid_json_with_metrics(self, evaluated_pair, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = EvaluationCache(path=path)
        (digest, value), _ = evaluated_pair
        cache.store(digest, value)
        record = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert record["key"] == digest
        assert record["metrics"]["latency_ms"] == pytest.approx(value.latency_ms)
        assert "payload" in record

    def test_corrupt_lines_are_skipped(self, evaluated_pair, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = EvaluationCache(path=path)
        (digest, value), _ = evaluated_pair
        cache.store(digest, value)
        with path.open("a", encoding="utf-8") as stream:
            stream.write("{not json}\n")
            stream.write(json.dumps({"version": 99, "key": "x", "payload": ""}) + "\n")
            # Valid version but no "key" field (foreign writer).
            stream.write(json.dumps({"version": 1, "payload": "AAAA"}) + "\n")
            # Valid shape but the payload is not an EvaluatedConfig pickle.
            import base64
            import pickle

            stream.write(
                json.dumps(
                    {
                        "version": 1,
                        "key": "y",
                        "payload": base64.b64encode(pickle.dumps([1, 2])).decode(),
                    }
                )
                + "\n"
            )
        reader = EvaluationCache(path=path)
        assert reader.stats.loaded == 1
        assert reader.peek(digest) is not None

    def test_missing_file_starts_empty(self, tmp_path):
        cache = EvaluationCache(path=tmp_path / "nonexistent.jsonl")
        assert len(cache) == 0

    def test_truncated_trailing_line_is_recovered_and_logged(
        self, evaluated_pair, tmp_path, caplog
    ):
        """A mid-write crash leaves a half line; the rest must load, loudly."""
        path = tmp_path / "cache.jsonl"
        writer = EvaluationCache(path=path)
        for digest, value in evaluated_pair:
            writer.store(digest, value)
        full = path.read_text(encoding="utf-8")
        lines = full.splitlines(keepends=True)
        # Chop the last line in half, no trailing newline — exactly what a
        # SIGKILL during _append's write leaves behind.
        path.write_text(
            "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2], encoding="utf-8"
        )

        import logging

        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            reader = EvaluationCache(path=path)
        (first_digest, _), _ = evaluated_pair
        assert reader.stats.loaded == 1
        assert reader.peek(first_digest) is not None
        assert any(
            "recovered 1 entries" in record.message and "skipped 1" in record.message
            for record in caplog.records
        )

    def test_clean_load_does_not_warn(self, evaluated_pair, tmp_path, caplog):
        path = tmp_path / "cache.jsonl"
        writer = EvaluationCache(path=path)
        for digest, value in evaluated_pair:
            writer.store(digest, value)

        import logging

        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            EvaluationCache(path=path)
        assert not caplog.records


class TestFrameworkSharedCache:
    def test_repeat_search_on_one_framework_hits_shared_cache(self, tiny_network, platform):
        from repro.core.framework import MapAndConquer
        from repro.search.objectives import paper_objective

        framework = MapAndConquer(tiny_network, platform, seed=0)
        first = framework.search(generations=3, population_size=8, seed=0)
        second = framework.search(generations=3, population_size=8, seed=0)
        assert paper_objective(second.best) == paper_objective(first.best)
        assert all(stat.cache_hit_rate == 1.0 for stat in second.generations)
        assert len(framework.evaluation_cache) == first.num_evaluations


class TestWarmSearches:
    def test_second_run_is_all_hits_and_identical(self, tiny_network, platform, tmp_path):
        from repro.core.framework import MapAndConquer
        from repro.search.objectives import paper_objective

        path = tmp_path / "cache.jsonl"
        cold = MapAndConquer(tiny_network, platform, seed=0).search(
            generations=3, population_size=8, seed=0, cache=str(path)
        )
        warm = MapAndConquer(tiny_network, platform, seed=0).search(
            generations=3, population_size=8, seed=0, cache=str(path)
        )
        assert paper_objective(warm.best) == paper_objective(cold.best)
        assert all(stat.cache_hit_rate == 1.0 for stat in warm.generations)
        assert [s.best_objective for s in warm.generations] == [
            s.best_objective for s in cold.generations
        ]
