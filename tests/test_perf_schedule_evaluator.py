"""Unit tests for the concurrent schedule model (Eq. 8-9) and the evaluator."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.nn.multiexit import build_dynamic_network
from repro.nn.partition import IndicatorMatrix, PartitionMatrix
from repro.perf.layer_cost import AnalyticalCostModel
from repro.perf.schedule import simulate_schedule


def make_dynamic(network, ranking, reuse=True):
    num_layers = 3
    indicator = IndicatorMatrix.full(3, num_layers) if reuse else IndicatorMatrix.none(3, num_layers)
    if reuse:
        values = indicator.values.copy()
        values[-1, :] = 0
        indicator = IndicatorMatrix(values)
    return build_dynamic_network(
        network,
        partition=PartitionMatrix.uniform(3, num_layers),
        indicator=indicator,
        ranking=ranking,
    )


@pytest.fixture()
def schedule_inputs(tiny_network, tiny_ranking, platform):
    dynamic = make_dynamic(tiny_network, tiny_ranking)
    units = [platform.unit("gpu"), platform.unit("dla0"), platform.unit("dla1")]
    scales = [1.0, 1.0, 1.0]
    return dynamic, units, scales


class TestSimulateSchedule:
    def test_cumulative_latencies_monotone(self, schedule_inputs, platform):
        dynamic, units, scales = schedule_inputs
        result = simulate_schedule(
            dynamic, units, scales, AnalyticalCostModel(), platform.interconnect
        )
        for stage in result.stages:
            cumulative = stage.cumulative_latencies_ms
            assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))

    def test_total_latency_includes_exit(self, schedule_inputs, platform):
        dynamic, units, scales = schedule_inputs
        result = simulate_schedule(
            dynamic, units, scales, AnalyticalCostModel(), platform.interconnect
        )
        for stage in result.stages:
            assert stage.total_latency_ms == pytest.approx(
                stage.cumulative_latencies_ms[-1] + stage.exit_latency_ms
            )
            assert stage.total_latency_ms >= stage.busy_latency_ms

    def test_makespan_is_max_stage_latency(self, schedule_inputs, platform):
        dynamic, units, scales = schedule_inputs
        result = simulate_schedule(
            dynamic, units, scales, AnalyticalCostModel(), platform.interconnect
        )
        assert result.makespan_ms == pytest.approx(
            max(stage.total_latency_ms for stage in result.stages)
        )

    def test_first_stage_never_stalls(self, schedule_inputs, platform):
        dynamic, units, scales = schedule_inputs
        result = simulate_schedule(
            dynamic, units, scales, AnalyticalCostModel(), platform.interconnect
        )
        assert result.stage(0).stall_ms == 0.0
        assert result.stage(0).transfer_latency_ms == 0.0

    def test_later_stages_wait_for_slow_producers(self, tiny_network, tiny_ranking, platform):
        # Stage 0 on the slow DLA with reuse means stage 1 (on the fast GPU)
        # must stall waiting for stage 0's features.
        dynamic = make_dynamic(tiny_network, tiny_ranking, reuse=True)
        units = [platform.unit("dla0"), platform.unit("gpu"), platform.unit("dla1")]
        result = simulate_schedule(
            dynamic, units, [1.0, 1.0, 1.0], AnalyticalCostModel(), platform.interconnect
        )
        assert result.stage(1).stall_ms > 0.0

    def test_no_reuse_means_no_transfers_or_stalls(self, tiny_network, tiny_ranking, platform):
        dynamic = make_dynamic(tiny_network, tiny_ranking, reuse=False)
        units = [platform.unit("dla0"), platform.unit("gpu"), platform.unit("dla1")]
        result = simulate_schedule(
            dynamic, units, [1.0, 1.0, 1.0], AnalyticalCostModel(), platform.interconnect
        )
        for stage in result.stages:
            assert stage.transfer_latency_ms == 0.0
            assert stage.stall_ms == 0.0

    def test_lower_dvfs_increases_latency(self, schedule_inputs, platform):
        dynamic, units, _ = schedule_inputs
        fast = simulate_schedule(
            dynamic, units, [1.0, 1.0, 1.0], AnalyticalCostModel(), platform.interconnect
        )
        slow = simulate_schedule(
            dynamic, units, [0.4, 0.4, 0.4], AnalyticalCostModel(), platform.interconnect
        )
        assert slow.makespan_ms > fast.makespan_ms

    def test_duplicate_units_rejected(self, schedule_inputs, platform):
        dynamic, _, scales = schedule_inputs
        units = [platform.unit("gpu"), platform.unit("gpu"), platform.unit("dla0")]
        with pytest.raises(MappingError):
            simulate_schedule(dynamic, units, scales, AnalyticalCostModel(), platform.interconnect)

    def test_wrong_length_rejected(self, schedule_inputs, platform):
        dynamic, units, _ = schedule_inputs
        with pytest.raises(MappingError):
            simulate_schedule(
                dynamic, units[:2], [1.0, 1.0], AnalyticalCostModel(), platform.interconnect
            )


class TestMappingEvaluator:
    def test_profile_shape(self, tiny_dynamic, mapping_evaluator, platform):
        profile = mapping_evaluator.profile(
            tiny_dynamic, ("gpu", "dla0", "dla1"), (9, 5, 5)
        )
        assert profile.num_stages == 3
        assert profile.latency_ms > 0
        assert profile.total_energy_mj > 0

    def test_cumulative_energy_monotone(self, tiny_dynamic, mapping_evaluator):
        profile = mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (0, 0, 0))
        energies = [profile.cumulative_energy_mj(i) for i in range(3)]
        assert energies[0] < energies[1] < energies[2]
        assert energies[-1] == pytest.approx(profile.total_energy_mj)

    def test_cumulative_latency_monotone(self, tiny_dynamic, mapping_evaluator):
        profile = mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (0, 0, 0))
        latencies = [profile.cumulative_latency_ms(i) for i in range(3)]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))
        assert latencies[-1] == pytest.approx(profile.latency_ms)

    def test_stage_energy_composition(self, tiny_dynamic, mapping_evaluator):
        profile = mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (0, 0, 0))
        for stage in profile.stages:
            assert stage.energy_mj == pytest.approx(
                stage.compute_energy_mj + stage.transfer_energy_mj
            )
        # Later stages import features, so they pay transfer energy.
        assert profile.stages[0].transfer_energy_mj == 0.0
        assert profile.stages[2].transfer_energy_mj > 0.0

    def test_stage_units_and_scales_recorded(self, tiny_dynamic, mapping_evaluator, platform):
        gpu_points = platform.unit("gpu").num_dvfs_points()
        profile = mapping_evaluator.profile(
            tiny_dynamic, ("gpu", "dla0", "dla1"), (gpu_points - 1, 0, 0)
        )
        assert profile.stages[0].unit_name == "gpu"
        assert profile.stages[0].dvfs_scale == pytest.approx(1.0)
        assert profile.stages[1].dvfs_scale < 1.0

    def test_wrong_argument_lengths_rejected(self, tiny_dynamic, mapping_evaluator):
        with pytest.raises(MappingError):
            mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0"), (0, 0))
        with pytest.raises(MappingError):
            mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (0, 0))

    def test_out_of_range_stage_rejected(self, tiny_dynamic, mapping_evaluator):
        profile = mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (0, 0, 0))
        with pytest.raises(MappingError):
            profile.cumulative_energy_mj(5)

    def test_stored_feature_bytes_forwarded(self, tiny_dynamic, mapping_evaluator):
        profile = mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (0, 0, 0))
        assert profile.stored_feature_bytes == tiny_dynamic.stored_feature_bytes()
