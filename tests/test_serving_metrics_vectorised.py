"""Bit-identity pin of the vectorised :func:`compute_metrics` reduction.

``compute_metrics`` builds one ``(n, 7)`` array in a single pass instead of
seven per-field list comprehensions.  The refactor is only legal if every
aggregate keeps its exact bits — the serving goldens and the fleet summary
both hash these floats.  This file keeps the *old* row-wise implementation
as an executable reference and asserts equality with ``==`` (never
``approx``) across policies, tenants and deadline shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    Deployment,
    MultiTenantStream,
    PoissonArrivals,
    StaticPolicy,
    TrafficSimulator,
    compute_metrics,
)
from repro.serving.metrics import ServingMetrics, _percentile


def _reference_metrics(result, tenant=None) -> ServingMetrics:
    """The pre-vectorisation implementation: one comprehension per field."""
    records = result.records
    if tenant is not None:
        records = [record for record in records if record.tenant == tenant]
    if not records:
        raise ConfigurationError("no records to aggregate")
    latencies = np.sort(np.array([r.latency_ms for r in records], dtype=float))
    queueing = np.array([r.queueing_ms for r in records], dtype=float)
    energies = np.array([r.energy_mj for r in records], dtype=float)
    stages = np.array([float(r.num_stages) for r in records], dtype=float)
    correct = np.array(
        [1.0 if r.correct else 0.0 for r in records], dtype=float
    )
    with_deadline = [r for r in records if r.deadline_ms is not None]
    missed = sum(1 for r in with_deadline if r.deadline_missed)
    duration_s = result.duration_ms / 1000.0
    return ServingMetrics(
        policy=result.policy,
        num_requests=len(records),
        duration_ms=result.duration_ms,
        throughput_rps=len(records) / duration_s if duration_s > 0 else 0.0,
        mean_latency_ms=float(latencies.mean()),
        p50_latency_ms=_percentile(latencies, 50.0),
        p95_latency_ms=_percentile(latencies, 95.0),
        p99_latency_ms=_percentile(latencies, 99.0),
        max_latency_ms=float(latencies[-1]),
        mean_queueing_ms=float(queueing.mean()),
        deadline_miss_rate=(
            missed / len(with_deadline) if with_deadline else 0.0
        ),
        accuracy=float(correct.mean()),
        mean_stages=float(stages.mean()),
        total_energy_mj=float(energies.sum()),
        energy_per_request_mj=float(energies.mean()),
        mean_in_flight=result.mean_in_flight,
        peak_in_flight=result.peak_in_flight,
        utilisation={
            name: busy / result.duration_ms if result.duration_ms > 0 else 0.0
            for name, busy in result.busy_ms.items()
        },
    )


@pytest.fixture()
def cascade():
    return Deployment(
        name="cascade",
        unit_names=("gpu", "dla0", "dla1"),
        service_ms=(5.0, 20.0, 30.0),
        energy_mj=(40.0, 10.0, 12.0),
        stage_accuracies=(0.5, 0.7, 0.9),
        dvfs_scales=(1.0, 1.0, 1.0),
    )


def _assert_bit_identical(vectorised: ServingMetrics, reference: ServingMetrics):
    # Strict equality on every float: the two reductions must agree to the
    # last bit, not within a tolerance.
    assert vectorised == reference


class TestVectorisedBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_poisson_no_deadlines(self, platform, cascade, seed):
        simulator = TrafficSimulator(platform, StaticPolicy(cascade), seed=seed)
        result = simulator.run(
            PoissonArrivals(60.0).generate(duration_ms=3000.0, seed=seed)
        )
        _assert_bit_identical(compute_metrics(result), _reference_metrics(result))

    def test_with_deadlines(self, platform, cascade):
        simulator = TrafficSimulator(
            platform, StaticPolicy(cascade), seed=5, deadline_ms=45.0
        )
        result = simulator.run(
            PoissonArrivals(80.0).generate(duration_ms=2000.0, seed=5)
        )
        metrics = compute_metrics(result)
        _assert_bit_identical(metrics, _reference_metrics(result))
        assert metrics.deadline_miss_rate > 0.0  # the comparison is non-trivial

    def test_multi_tenant_filter(self, platform, cascade):
        stream = MultiTenantStream(
            (
                PoissonArrivals(30.0, tenant="interactive", deadline_ms=50.0),
                PoissonArrivals(20.0, tenant="batch"),
            )
        )
        simulator = TrafficSimulator(platform, StaticPolicy(cascade), seed=2)
        result = simulator.run(stream.generate(duration_ms=2500.0, seed=2))
        for tenant in (None, "interactive", "batch"):
            _assert_bit_identical(
                compute_metrics(result, tenant=tenant),
                _reference_metrics(result, tenant=tenant),
            )

    def test_single_request_edges(self, platform, cascade):
        simulator = TrafficSimulator(platform, StaticPolicy(cascade), seed=1)
        result = simulator.run(
            PoissonArrivals(2.0).generate(duration_ms=3000.0, seed=9)
        )
        assert result.records  # tiny but non-empty stream
        _assert_bit_identical(compute_metrics(result), _reference_metrics(result))
