"""Tests for the cross-platform campaign subsystem (repro.campaign)."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignScenario,
    count_surviving_on_front,
    run_campaign,
    translate_config,
)
from repro.core.framework import MapAndConquer
from repro.core.report import campaign_summary, campaign_table, portability_table
from repro.engine.cache import EvaluationCache
from repro.errors import ConfigurationError, MappingError
from repro.serving.workload import PoissonArrivals
from repro.soc.presets import get_platform

#: Tiny grid used by most tests: two three-unit boards.
GRID = ("jetson-agx-xavier", "mobile-big-little")
BUDGET = dict(generations=3, population_size=8)


@pytest.fixture(scope="module")
def tiny_network_module(tiny_network):
    """Module-scoped handle on the session-scoped toy network."""
    return tiny_network


@pytest.fixture(scope="module")
def tiny_campaign(tiny_network_module):
    return run_campaign(tiny_network_module, GRID, seed=0, **BUDGET)


class TestTranslation:
    def test_name_then_kind_then_order(self, tiny_campaign):
        xavier = get_platform("jetson-agx-xavier")
        mobile = get_platform("mobile-big-little")
        config = tiny_campaign.front("jetson-agx-xavier")[0].config
        translated = translate_config(config, xavier, mobile)
        assert len(translated.unit_names) == len(config.unit_names)
        assert set(translated.unit_names) <= set(mobile.unit_names)
        assert len(set(translated.unit_names)) == len(translated.unit_names)
        # DVFS indices are valid positions of each target unit's table.
        for name, index in zip(translated.unit_names, translated.dvfs_indices):
            assert 0 <= index < mobile.unit(name).num_dvfs_points()

    def test_exact_names_are_kept(self, tiny_campaign):
        xavier = get_platform("jetson-agx-xavier")
        orin = get_platform("jetson-agx-orin")
        config = tiny_campaign.front("jetson-agx-xavier")[0].config
        translated = translate_config(config, xavier, orin)
        # Xavier and Orin share the gpu/dla0/dla1 vocabulary.
        assert translated.unit_names == config.unit_names

    def test_dvfs_rebinds_by_scale_not_index(self):
        xavier = get_platform("jetson-agx-xavier")
        orin = get_platform("jetson-agx-orin")
        gpu_x, gpu_o = xavier.unit("gpu"), orin.unit("gpu")
        # Top operating point maps to top operating point even though the
        # tables have different lengths.
        top_index = gpu_x.num_dvfs_points() - 1
        assert gpu_o.dvfs.nearest_index(gpu_x.dvfs.scale(top_index)) == (
            gpu_o.num_dvfs_points() - 1
        )

    def test_too_many_stages_rejected(self, tiny_campaign):
        xavier = get_platform("jetson-agx-xavier")
        nano = get_platform("jetson-nano-class")
        config = tiny_campaign.front("jetson-agx-xavier")[0].config
        assert config.num_stages == 3
        with pytest.raises(MappingError, match="cannot translate"):
            translate_config(config, xavier, nano)

    def test_count_surviving_handles_empty_front(self, tiny_campaign):
        transferred = list(tiny_campaign.front("jetson-agx-xavier"))
        assert count_surviving_on_front(transferred, []) == len(transferred)


class TestRunCampaign:
    def test_grid_and_fronts(self, tiny_campaign):
        assert tiny_campaign.platform_names == GRID
        assert tiny_campaign.scenario_names == ("unconstrained",)
        assert len(tiny_campaign.cells) == 2
        for name in GRID:
            front = tiny_campaign.front(name)
            assert len(front) >= 1
            cell = tiny_campaign.cell(name)
            assert cell.best_objective > 0
            # Every front config speaks its own platform's vocabulary.
            units = set(get_platform(name).unit_names)
            for item in front:
                assert set(item.config.unit_names) <= units

    def test_portability_matrix_complete(self, tiny_campaign):
        matrix = tiny_campaign.portability_matrix()
        assert set(matrix) == {
            (a, b) for a in GRID for b in GRID if a != b
        }
        for value in matrix.values():
            assert value > 0
        entry = tiny_campaign.entry(GRID[0], GRID[1])
        assert entry.transferred == len(tiny_campaign.front(GRID[0]))
        assert 0 <= entry.surviving_on_front <= entry.transferred

    def test_unknown_cell_lookup_raises(self, tiny_campaign):
        with pytest.raises(ConfigurationError):
            tiny_campaign.cell("server-gpu")
        with pytest.raises(ConfigurationError):
            tiny_campaign.entry(GRID[0], GRID[0])

    def test_validation(self, tiny_network_module):
        with pytest.raises(ConfigurationError, match="at least one platform"):
            run_campaign(tiny_network_module, [], **BUDGET)
        with pytest.raises(ConfigurationError, match="distinct names"):
            run_campaign(tiny_network_module, ["server-gpu", "server-gpu"], **BUDGET)
        with pytest.raises(ConfigurationError, match="backend"):
            run_campaign(
                tiny_network_module, GRID, backend=object(), **BUDGET
            )
        with pytest.raises(ConfigurationError, match="num_stages"):
            run_campaign(tiny_network_module, GRID, num_stages=9, **BUDGET)
        with pytest.raises(ConfigurationError, match="default scenario"):
            run_campaign(tiny_network_module, GRID, scenarios=[], **BUDGET)
        # An arrival process without a duration must fail before any search runs.
        with pytest.raises(ConfigurationError, match="traffic_duration_ms"):
            run_campaign(
                tiny_network_module, GRID, traffic=PoissonArrivals(10.0), **BUDGET
            )

    def test_scenario_zero_budget_is_an_error_not_the_default(self, tiny_network_module):
        """Regression: generations=0 used to silently fall back to the default."""
        from repro.errors import SearchError

        with pytest.raises(SearchError):
            run_campaign(
                tiny_network_module,
                ["jetson-agx-xavier"],
                scenarios=[CampaignScenario(name="typo", generations=0)],
                **BUDGET,
            )

    def test_evaluator_settings_reach_every_cell(self, tiny_network_module):
        result = run_campaign(
            tiny_network_module,
            ["jetson-agx-xavier"],
            reorder_channels=False,
            validation_samples=400,
            seed=0,
            **BUDGET,
        )
        default = run_campaign(
            tiny_network_module, ["jetson-agx-xavier"], seed=0, **BUDGET
        )
        # Different evaluator settings genuinely change the searched numbers.
        assert campaign_summary(result) != campaign_summary(default)

    def test_scenarios_and_shared_cache(self, tiny_network_module):
        cache = EvaluationCache()
        result = run_campaign(
            tiny_network_module,
            ["jetson-agx-xavier"],
            scenarios=[
                CampaignScenario(name="free"),
                CampaignScenario(name="half-reuse", max_reuse_fraction=0.5),
            ],
            cache=cache,
            seed=0,
            **BUDGET,
        )
        assert result.scenario_names == ("free", "half-reuse")
        assert len(result.cells) == 2
        assert len(cache) > 0
        capped = result.cell("jetson-agx-xavier", "half-reuse")
        for item in capped.result.feasible:
            assert item.reuse_fraction <= 0.5 + 1e-9

    def test_campaign_determinism_serial_vs_process(self, tiny_network_module):
        """Same seed => byte-identical summary, across runs and backends."""
        serial_a = run_campaign(tiny_network_module, GRID, seed=7, **BUDGET)
        serial_b = run_campaign(tiny_network_module, GRID, seed=7, **BUDGET)
        process = run_campaign(
            tiny_network_module, GRID, seed=7, backend="process", n_workers=2, **BUDGET
        )
        assert campaign_summary(serial_a) == campaign_summary(serial_b)
        assert campaign_summary(serial_a) == campaign_summary(process)

    def test_traffic_rerank(self, tiny_network_module):
        result = run_campaign(
            tiny_network_module,
            ["jetson-agx-xavier"],
            traffic=PoissonArrivals(20.0),
            traffic_duration_ms=2000.0,
            seed=0,
            **BUDGET,
        )
        cell = result.cell("jetson-agx-xavier")
        assert cell.traffic_ranking is not None
        assert len(cell.traffic_ranking) == len(cell.front)
        scores = [r.score("p99_latency_ms") for r in cell.traffic_ranking]
        assert scores == sorted(scores)


class TestFacadeAndReport:
    def test_facade_prepends_own_platform(self, tiny_network_module):
        framework = MapAndConquer(tiny_network_module, seed=0)
        result = framework.campaign(["mobile-big-little"], **BUDGET)
        assert result.platform_names == ("jetson-agx-xavier", "mobile-big-little")
        # Already-listed platforms are not duplicated.
        again = framework.campaign(
            ["jetson-agx-xavier", "mobile-big-little"], **BUDGET
        )
        assert again.platform_names == ("jetson-agx-xavier", "mobile-big-little")

    def test_facade_own_cell_matches_search(self, tiny_network_module):
        """The prepended own-platform cell reproduces framework.search()."""
        framework = MapAndConquer(tiny_network_module, seed=0)
        native = framework.search(seed=0, **BUDGET)
        result = framework.campaign(["mobile-big-little"], **BUDGET)
        cell = result.cell("jetson-agx-xavier")
        assert cell.result.best.latency_ms == native.best.latency_ms
        assert cell.result.best.energy_mj == native.best.energy_mj
        assert len(cell.front) == len(native.pareto)

    def test_facade_rejects_platform_specific_cost_model(self, tiny_network_module):
        framework = MapAndConquer(
            tiny_network_module, use_surrogate=True, surrogate_samples=60, seed=0
        )
        with pytest.raises(ConfigurationError, match="cost model"):
            framework.campaign(["mobile-big-little"], **BUDGET)

    def test_report_helpers(self, tiny_campaign):
        table = campaign_table(tiny_campaign)
        assert "jetson-agx-xavier" in table and "travels" in table
        matrix = portability_table(tiny_campaign)
        assert "1.00*" in matrix
        summary = campaign_summary(tiny_campaign)
        assert "portability regret" in summary
        assert summary == campaign_summary(tiny_campaign)
