"""Golden-file regression pin of ``fleet_summary`` bytes.

A 3-mix x 2-family fleet campaign at a fixed seed must render the exact
bytes stored in ``tests/data/fleet_campaign_golden.txt`` — through the
sequential path and the cell-parallel runner alike, and when resumed from a
checkpoint.  Any change to search semantics, front-point selection, the
router/autoscaler numerics, fleet metric definitions or report formatting
shows up here as a reviewable diff instead of silent drift.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/test_fleet_campaign_golden.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.campaign import FleetMix
from repro.core.framework import MapAndConquer
from repro.core.report import fleet_summary
from repro.serving import AutoscalerPolicy
from repro.serving.families import DiurnalFamily, SteadyPoissonFamily

GOLDEN_PATH = Path(__file__).parent / "data" / "fleet_campaign_golden.txt"

MIXES = (
    FleetMix(name="xavier-pair", counts=(("jetson-agx-xavier", 2),)),
    FleetMix(
        name="nano-pair",
        counts=(("jetson-nano-class", 2),),
        selection="latency",
        router="round-robin",
    ),
    FleetMix(
        name="hetero",
        counts=(("jetson-agx-xavier", 1), ("jetson-nano-class", 1)),
        selection="balanced",
        router="deadline-aware",
        autoscaler=AutoscalerPolicy(
            min_instances=1,
            target_utilisation=0.6,
            scale_down_utilisation=0.2,
            decision_interval_ms=100.0,
            window_ms=400.0,
        ),
    ),
)
FAMILIES = (
    SteadyPoissonFamily(rate_rps=40.0),
    DiurnalFamily(peak_rps=70.0, trough_fraction=0.2, period_ms=800.0),
)
SEED = 3
BUDGET = dict(
    members_per_family=2,
    duration_ms=600.0,
    p99_slo_ms=150.0,
    generations=2,
    population_size=6,
)


def _tiny_network():
    # Mirrors the conftest fixture; duplicated so --regenerate works as a
    # plain script outside pytest.
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )

    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


def _render(**overrides) -> str:
    network = overrides.pop("network", None) or _tiny_network()
    framework = MapAndConquer(network, seed=SEED)
    fleet = framework.fleet_campaign(
        MIXES, families=FAMILIES, seed=SEED, **BUDGET, **overrides
    )
    assert len(fleet.mix_names) == 3 and len(fleet.family_names) == 2
    return fleet_summary(fleet) + "\n"


@pytest.fixture(scope="module")
def golden() -> str:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name} --regenerate`"
    )
    return GOLDEN_PATH.read_text(encoding="utf-8")


def test_serial_path_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network) == golden


def test_cell_parallel_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, cell_workers=2) == golden


def test_checkpoint_resume_matches_golden(tiny_network, golden, tmp_path):
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden
    # Second pass: every cell restored from the checkpoint, bytes unchanged.
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(_render(), encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
