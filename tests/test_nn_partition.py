"""Unit tests for the P / I matrices and the channel-splitting arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.nn.partition import (
    RATIO_CHOICES,
    IndicatorMatrix,
    PartitionMatrix,
    PartitionScheme,
    backbone_layers,
    split_units,
)


class TestSplitUnits:
    def test_even_split(self):
        assert split_units(96, [1 / 3, 1 / 3, 1 / 3]) == (32, 32, 32)

    def test_shares_sum_to_width(self):
        for fractions in ([0.5, 0.25, 0.25], [0.7, 0.2, 0.1], [0.9, 0.05, 0.05]):
            assert sum(split_units(97, fractions)) == 97

    def test_respects_granularity(self):
        shares = split_units(192, [0.5, 0.3, 0.2], granularity=32)
        assert sum(shares) == 192
        assert all(share % 32 == 0 for share in shares)

    def test_minimum_one_granule_per_share(self):
        shares = split_units(192, [0.98, 0.01, 0.01], granularity=32)
        assert min(shares) >= 32

    def test_proportionality(self):
        shares = split_units(100, [0.6, 0.3, 0.1])
        assert shares == (60, 30, 10)

    def test_too_many_shares_rejected(self):
        with pytest.raises(PartitionError):
            split_units(64, [0.25, 0.25, 0.25, 0.25], granularity=32)

    def test_bad_granularity_rejected(self):
        with pytest.raises(PartitionError):
            split_units(100, [0.5, 0.5], granularity=3)

    def test_bad_fractions_rejected(self):
        with pytest.raises(PartitionError):
            split_units(100, [0.5, 0.4])
        with pytest.raises(PartitionError):
            split_units(100, [-0.1, 1.1])
        with pytest.raises(PartitionError):
            split_units(100, [])


class TestPartitionMatrix:
    def test_uniform(self):
        matrix = PartitionMatrix.uniform(3, 5)
        assert matrix.num_stages == 3
        assert matrix.num_layers == 5
        np.testing.assert_allclose(matrix.values.sum(axis=0), 1.0)

    def test_from_stage_fractions(self):
        matrix = PartitionMatrix.from_stage_fractions([0.5, 0.3, 0.2], num_layers=4)
        assert matrix.fraction(0, 3) == pytest.approx(0.5)
        assert matrix.fraction(2, 0) == pytest.approx(0.2)

    def test_columns_must_sum_to_one(self):
        with pytest.raises(PartitionError):
            PartitionMatrix(np.array([[0.5, 0.5], [0.4, 0.5]]))

    def test_entries_must_be_fractions(self):
        with pytest.raises(PartitionError):
            PartitionMatrix(np.array([[1.5, 1.0], [-0.5, 0.0]]))

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            PartitionMatrix(np.zeros((0, 0)))

    def test_ratio_choices_are_eight_fractions(self):
        assert len(RATIO_CHOICES) == 8
        assert RATIO_CHOICES[-1] == 1.0


class TestIndicatorMatrix:
    def test_full_and_none_constructors(self):
        full = IndicatorMatrix.full(3, 4)
        none = IndicatorMatrix.none(3, 4)
        assert full.values.sum() == 12
        assert none.values.sum() == 0

    def test_reuse_fraction_excludes_last_stage(self):
        values = np.zeros((3, 4), dtype=int)
        values[0, :] = 1  # first stage forwards everything
        indicator = IndicatorMatrix(values)
        assert indicator.reuse_fraction() == pytest.approx(0.5)

    def test_reuse_fraction_single_stage_is_zero(self):
        assert IndicatorMatrix(np.zeros((1, 4), dtype=int)).reuse_fraction() == 0.0

    def test_non_binary_rejected(self):
        with pytest.raises(PartitionError):
            IndicatorMatrix(np.array([[0, 2], [1, 0]]))

    def test_reused_lookup(self):
        indicator = IndicatorMatrix(np.array([[1, 0], [0, 0]]))
        assert indicator.reused(0, 0) is True
        assert indicator.reused(0, 1) is False


class TestBackboneLayers:
    def test_classifier_head_is_stripped(self, tiny_network):
        backbone = backbone_layers(tiny_network)
        assert len(backbone) == 3
        assert backbone[-1].name == "mlp"

    def test_visformer_backbone_excludes_head(self, visformer_net):
        backbone = backbone_layers(visformer_net)
        assert len(backbone) == len(visformer_net) - 1


class TestPartitionScheme:
    @pytest.fixture()
    def scheme(self, tiny_network):
        partition = PartitionMatrix.uniform(3, 3)
        indicator_values = np.ones((3, 3), dtype=int)
        indicator_values[-1, :] = 0
        return PartitionScheme(
            network=tiny_network,
            partition=partition,
            indicator=IndicatorMatrix(indicator_values),
        )

    def test_channels_sum_to_layer_widths(self, scheme, tiny_network):
        backbone = backbone_layers(tiny_network)
        channels = scheme.channels
        for layer_index, layer in enumerate(backbone):
            assert channels[:, layer_index].sum() == layer.width

    def test_attention_respects_head_granularity(self, scheme):
        # Layer index 1 is the 4-head attention layer (head_dim 8).
        for stage in range(3):
            assert scheme.stage_channels(stage, 1) % 8 == 0

    def test_stage_ranges_are_contiguous_partition(self, scheme, tiny_network):
        backbone = backbone_layers(tiny_network)
        for layer_index, layer in enumerate(backbone):
            covered = []
            for stage in range(3):
                start, end = scheme.stage_range(stage, layer_index)
                covered.extend(range(start, end))
            assert covered == list(range(layer.width))

    def test_first_layer_input_is_model_input(self, scheme, tiny_network):
        for stage in range(3):
            assert scheme.available_in_units(stage, 0) == tiny_network[0].in_width

    def test_later_layer_input_includes_reused_channels(self, scheme):
        # With full reuse, stage 2's input at layer 1 sees all of layer 0.
        total_layer0 = scheme.channels[:, 0].sum()
        assert scheme.available_in_units(2, 1) == total_layer0

    def test_no_reuse_limits_input_to_own_channels(self, tiny_network):
        scheme = PartitionScheme(
            network=tiny_network,
            partition=PartitionMatrix.uniform(3, 3),
            indicator=IndicatorMatrix.none(3, 3),
        )
        assert scheme.available_in_units(2, 1) == scheme.stage_channels(2, 0)

    def test_reused_bytes_zero_for_first_stage(self, scheme):
        for layer in range(3):
            assert scheme.reused_input_bytes(0, layer) == 0

    def test_reused_bytes_positive_with_reuse(self, scheme):
        assert scheme.reused_input_bytes(1, 1) > 0
        assert scheme.reused_input_bytes(2, 1) > scheme.reused_input_bytes(1, 1)

    def test_stored_feature_bytes_zero_without_reuse(self, tiny_network):
        scheme = PartitionScheme(
            network=tiny_network,
            partition=PartitionMatrix.uniform(3, 3),
            indicator=IndicatorMatrix.none(3, 3),
        )
        assert scheme.stored_feature_bytes() == 0

    def test_stage_flops_sum_close_to_static_model(self, tiny_network):
        # Without reuse the three stages together execute roughly the static
        # backbone (input widths shrink, so the sum is at most the original).
        scheme = PartitionScheme(
            network=tiny_network,
            partition=PartitionMatrix.uniform(3, 3),
            indicator=IndicatorMatrix.none(3, 3),
        )
        backbone = backbone_layers(tiny_network)
        static_flops = sum(layer.flops() for layer in backbone)
        total = sum(scheme.stage_flops(stage) for stage in range(3))
        assert total <= static_flops * 1.01

    def test_cumulative_width_fraction_bounds(self, scheme):
        for stage in range(3):
            for layer in range(3):
                fraction = scheme.cumulative_width_fraction(stage, layer)
                assert 0 < fraction <= 1.0
        assert scheme.cumulative_width_fraction(2, 1) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, tiny_network):
        with pytest.raises(PartitionError):
            PartitionScheme(
                network=tiny_network,
                partition=PartitionMatrix.uniform(3, 2),
                indicator=IndicatorMatrix.none(3, 2),
            )
        with pytest.raises(PartitionError):
            PartitionScheme(
                network=tiny_network,
                partition=PartitionMatrix.uniform(3, 3),
                indicator=IndicatorMatrix.none(2, 3),
            )

    def test_out_of_range_indices_rejected(self, scheme):
        with pytest.raises(PartitionError):
            scheme.stage_flops(5)
        with pytest.raises(PartitionError):
            scheme.available_in_units(0, 9)
