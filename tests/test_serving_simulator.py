"""Integration tests for the discrete-event traffic simulator.

Covers the acceptance criteria of the serving subsystem: reproducibility
(byte-identical JSONL traces under a fixed seed), queueing-theory sanity
(Little's law measured independently of per-request latencies), zero-load
consistency with :func:`repro.dynamics.inference.simulate_dynamic_inference`,
adaptive-switcher behaviour under bursts, and the search-to-serving bridge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.inference import simulate_dynamic_inference
from repro.errors import ConfigurationError
from repro.serving import (
    AdaptiveSwitchPolicy,
    ConstantRate,
    Deployment,
    MultiTenantStream,
    OnOffBursts,
    PoissonArrivals,
    StaticPolicy,
    TrafficSimulator,
    compute_metrics,
    rank_under_traffic,
    read_trace_jsonl,
    simulate_deployment,
)


@pytest.fixture()
def single_stage():
    """A one-stage deployment: the classic single-queue scenario."""
    return Deployment(
        name="mm1",
        unit_names=("gpu",),
        service_ms=(10.0,),
        energy_mj=(25.0,),
        stage_accuracies=(0.9,),
        dvfs_scales=(1.0,),
    )


@pytest.fixture()
def cascade():
    return Deployment(
        name="cascade",
        unit_names=("gpu", "dla0", "dla1"),
        service_ms=(5.0, 20.0, 30.0),
        energy_mj=(40.0, 10.0, 12.0),
        stage_accuracies=(0.5, 0.7, 0.9),
        dvfs_scales=(1.0, 1.0, 1.0),
    )


class TestDeterminism:
    def test_identical_seed_byte_identical_trace(self, platform, cascade, tmp_path):
        workload = PoissonArrivals(25.0)
        requests = workload.generate(10_000.0, seed=3)
        paths = []
        for run in range(2):
            simulator = TrafficSimulator(platform, StaticPolicy(cascade), seed=11)
            result = simulator.run(requests)
            path = tmp_path / f"trace-{run}.jsonl"
            result.write_trace(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert len(read_trace_jsonl(paths[0])) == len(requests)

    def test_different_seed_different_trace(self, platform, cascade):
        requests = PoissonArrivals(25.0).generate(10_000.0, seed=3)
        first = TrafficSimulator(platform, StaticPolicy(cascade), seed=1).run(requests)
        second = TrafficSimulator(platform, StaticPolicy(cascade), seed=2).run(requests)
        exits_first = [record.exit_stage for record in first.records]
        exits_second = [record.exit_stage for record in second.records]
        assert exits_first != exits_second


class TestQueueingSanity:
    def test_littles_law(self, platform, single_stage):
        """L = lambda * W, with L measured from the in-flight time-average."""
        requests = PoissonArrivals(70.0).generate(60_000.0, seed=5)  # rho = 0.7
        result = TrafficSimulator(platform, StaticPolicy(single_stage), seed=0).run(requests)
        metrics = compute_metrics(result)
        arrival_rate_per_ms = metrics.num_requests / metrics.duration_ms
        little_l = arrival_rate_per_ms * metrics.mean_latency_ms
        assert metrics.mean_in_flight == pytest.approx(little_l, rel=0.02)

    def test_md1_waiting_time(self, platform, single_stage):
        """Poisson arrivals + deterministic service: M/D/1 mean wait."""
        rate_rps = 60.0
        requests = PoissonArrivals(rate_rps).generate(120_000.0, seed=7)
        result = TrafficSimulator(platform, StaticPolicy(single_stage), seed=0).run(requests)
        metrics = compute_metrics(result)
        service_ms = single_stage.service_ms[0]
        rho = (len(requests) / 120_000.0) * service_ms  # offered load from the trace
        expected_wait = rho * service_ms / (2.0 * (1.0 - rho))
        assert metrics.mean_queueing_ms == pytest.approx(expected_wait, rel=0.15)

    def test_utilisation_matches_offered_load(self, platform, single_stage):
        requests = PoissonArrivals(50.0).generate(60_000.0, seed=1)
        result = TrafficSimulator(platform, StaticPolicy(single_stage), seed=0).run(requests)
        metrics = compute_metrics(result)
        observed_rho = (len(requests) / result.duration_ms) * single_stage.service_ms[0]
        assert metrics.utilisation["gpu"] == pytest.approx(observed_rho, rel=0.02)
        assert metrics.utilisation["dla0"] == 0.0

    def test_saturation_degrades_tail_not_throughput_cap(self, platform, single_stage):
        light = PoissonArrivals(40.0).generate(30_000.0, seed=2)
        heavy = PoissonArrivals(140.0).generate(30_000.0, seed=2)
        policy = StaticPolicy(single_stage)
        light_m = compute_metrics(TrafficSimulator(platform, policy, seed=0).run(light))
        heavy_m = compute_metrics(TrafficSimulator(platform, policy, seed=0).run(heavy))
        assert heavy_m.p99_latency_ms > 10 * light_m.p99_latency_ms
        # The bottleneck caps completed throughput at ~1/service.
        assert heavy_m.throughput_rps <= single_stage.capacity_rps() * 1.01


class TestZeroLoadConsistency:
    def test_matches_simulate_dynamic_inference(
        self, tiny_config_evaluator, tiny_mapping_config, platform
    ):
        """At zero contention the trace means reproduce the Table II analysis."""
        evaluated = tiny_config_evaluator.evaluate(tiny_mapping_config)
        reference = simulate_dynamic_inference(
            evaluated.dynamic_network, evaluated.profile
        )
        deployment = Deployment.from_evaluated(evaluated)
        # One request every 5x the worst-case latency: strictly no queueing.
        gap_ms = 5.0 * reference.worst_case_latency_ms
        count = 2000
        requests = ConstantRate(1000.0 / gap_ms).generate(count * gap_ms, seed=0)
        assert len(requests) == count
        result = TrafficSimulator(
            platform, StaticPolicy(deployment), seed=0, stratified_difficulty=True
        ).run(requests)
        metrics = compute_metrics(result)
        assert metrics.mean_queueing_ms == pytest.approx(0.0, abs=1e-9)
        assert metrics.mean_latency_ms == pytest.approx(
            reference.expected_latency_ms, rel=0.01
        )
        assert metrics.energy_per_request_mj == pytest.approx(
            reference.expected_energy_mj, rel=0.01
        )
        assert metrics.accuracy == pytest.approx(reference.accuracy, abs=0.01)

    def test_zero_load_latency_is_cumulative_max(self, platform, cascade):
        requests = ConstantRate(2.0).generate(5000.0, seed=0)
        result = TrafficSimulator(platform, StaticPolicy(cascade), seed=0).run(requests)
        for record in result.records:
            assert record.latency_ms == pytest.approx(
                cascade.cumulative_latency_ms(record.exit_stage)
            )
            assert record.energy_mj == pytest.approx(
                cascade.cumulative_energy_mj(record.exit_stage)
            )


class TestDeadlines:
    def test_deadline_miss_accounting(self, platform, single_stage):
        requests = PoissonArrivals(95.0).generate(30_000.0, seed=4)
        relaxed = TrafficSimulator(
            platform, StaticPolicy(single_stage), seed=0, deadline_ms=10_000.0
        ).run(requests)
        strict = TrafficSimulator(
            platform, StaticPolicy(single_stage), seed=0, deadline_ms=15.0
        ).run(requests)
        assert compute_metrics(relaxed).deadline_miss_rate == 0.0
        assert compute_metrics(strict).deadline_miss_rate > 0.2

    def test_per_request_deadline_overrides_default(self, platform, single_stage):
        requests = MultiTenantStream(
            [
                PoissonArrivals(40.0, tenant="strict", deadline_ms=10.5),
                PoissonArrivals(40.0, tenant="lax", deadline_ms=60_000.0),
            ]
        ).generate(20_000.0, seed=6)
        result = TrafficSimulator(platform, StaticPolicy(single_stage), seed=0).run(requests)
        strict = compute_metrics(result, tenant="strict")
        lax = compute_metrics(result, tenant="lax")
        assert strict.deadline_miss_rate > lax.deadline_miss_rate
        assert lax.deadline_miss_rate == 0.0


class TestAdaptiveServing:
    def test_switcher_improves_tail_over_frugal_static(self, platform):
        frugal = Deployment(
            name="frugal",
            unit_names=("dla0",),
            service_ms=(40.0,),
            energy_mj=(15.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        fast = Deployment(
            name="fast",
            unit_names=("gpu",),
            service_ms=(6.0,),
            energy_mj=(90.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        workload = OnOffBursts(burst_rps=60.0, idle_rps=4.0, burst_ms=2000.0, idle_ms=3000.0)
        requests = workload.generate(30_000.0, seed=2)
        adaptive = AdaptiveSwitchPolicy(frugal, fast, high_watermark=6, low_watermark=1)
        static_frugal = compute_metrics(
            TrafficSimulator(platform, StaticPolicy(frugal), seed=0).run(requests)
        )
        static_fast = compute_metrics(
            TrafficSimulator(platform, StaticPolicy(fast), seed=0).run(requests)
        )
        adaptive_m = compute_metrics(
            TrafficSimulator(platform, adaptive, seed=0).run(requests)
        )
        assert adaptive.switches >= 2
        # Far better tail than always-frugal; far cheaper than always-fast.
        assert adaptive_m.p99_latency_ms < 0.25 * static_frugal.p99_latency_ms
        assert adaptive_m.energy_per_request_mj < 0.75 * static_fast.energy_per_request_mj

    def test_simulation_seed_insensitive_to_policy_state(self, platform, cascade):
        """The same seed drives the same difficulty stream for any policy."""
        requests = PoissonArrivals(10.0).generate(10_000.0, seed=0)
        static = TrafficSimulator(platform, StaticPolicy(cascade), seed=9).run(requests)
        adaptive = TrafficSimulator(
            platform,
            AdaptiveSwitchPolicy(cascade, cascade, high_watermark=3, low_watermark=1),
            seed=9,
        ).run(requests)
        assert [r.exit_stage for r in static.records] == [
            r.exit_stage for r in adaptive.records
        ]


class TestBridge:
    def test_rank_under_traffic_prefers_higher_capacity(self, platform):
        spacious = Deployment(
            name="spacious",
            unit_names=("gpu",),
            service_ms=(8.0,),
            energy_mj=(50.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        cramped = Deployment(
            name="cramped",
            unit_names=("dla0",),
            service_ms=(35.0,),
            energy_mj=(12.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        rankings = rank_under_traffic(
            [cramped, spacious],
            platform,
            PoissonArrivals(40.0),
            duration_ms=20_000.0,
            metric="p99_latency_ms",
            seed=0,
        )
        assert rankings[0].deployment.name == "spacious"
        assert rankings[0].score("p99_latency_ms") <= rankings[1].score("p99_latency_ms")
        # Ranking by energy flips the order at this load.
        by_energy = rank_under_traffic(
            [cramped, spacious],
            platform,
            PoissonArrivals(10.0),
            duration_ms=20_000.0,
            metric="energy_per_request_mj",
            seed=0,
        )
        assert by_energy[0].deployment.name == "cramped"

    def test_rank_rejects_unknown_metric(self, platform, cascade):
        with pytest.raises(ConfigurationError):
            rank_under_traffic(
                [cascade], platform, PoissonArrivals(10.0), duration_ms=1000.0, metric="nope"
            )

    def test_rank_rejects_misspelled_metric(self, platform, cascade):
        """Regression: a typo used to silently rank descending (bigger wins)."""
        with pytest.raises(ConfigurationError, match="p99_latencyms"):
            rank_under_traffic(
                [cascade],
                platform,
                PoissonArrivals(10.0),
                duration_ms=1000.0,
                metric="p99_latencyms",
            )

    def test_rank_rejects_directionless_fields(self, platform, cascade):
        """Fields without a declared direction (policy, utilisation) cannot rank."""
        for metric in ("policy", "utilisation", "num_requests"):
            with pytest.raises(ConfigurationError):
                rank_under_traffic(
                    [cascade],
                    platform,
                    PoissonArrivals(10.0),
                    duration_ms=1000.0,
                    metric=metric,
                )

    def test_score_rejects_misspelled_metric(self, platform, cascade):
        rankings = rank_under_traffic(
            [cascade], platform, PoissonArrivals(10.0), duration_ms=1000.0, seed=0
        )
        with pytest.raises(ConfigurationError):
            rankings[0].score("p99_latencyms")
        with pytest.raises(ConfigurationError):
            rankings[0].score("summary_row")

    def test_every_declared_direction_is_rankable(self):
        from repro.serving.metrics import metric_direction

        assert metric_direction("p99_latency_ms") == "asc"
        assert metric_direction("throughput_rps") == "desc"
        assert metric_direction("accuracy") == "desc"
        assert metric_direction("energy_per_request_mj") == "asc"

    def test_simulate_deployment_from_evaluated(
        self, tiny_config_evaluator, tiny_mapping_config, platform
    ):
        evaluated = tiny_config_evaluator.evaluate(tiny_mapping_config)
        result = simulate_deployment(
            evaluated,
            platform,
            PoissonArrivals(20.0),
            duration_ms=5000.0,
            seed=0,
        )
        assert result.num_requests > 50
        assert compute_metrics(result).throughput_rps > 0

    def test_framework_facade_roundtrip(self, tiny_network, platform):
        from repro.core.framework import MapAndConquer
        from repro.core.report import serving_summary, serving_table

        framework = MapAndConquer(tiny_network, platform, seed=0)
        result = framework.search(generations=3, population_size=8, seed=0)
        rankings = framework.rank_under_traffic(
            result.pareto[:3], PoissonArrivals(15.0), duration_ms=5000.0, seed=0
        )
        assert len(rankings) == min(3, len(result.pareto))
        scores = [ranking.score("p99_latency_ms") for ranking in rankings]
        assert scores == sorted(scores)
        table = serving_table([ranking.metrics for ranking in rankings])
        assert "p99_ms" in table
        summary = serving_summary(rankings[0].metrics)
        assert "latency p50/p95/p99" in summary


class TestValidation:
    def test_empty_stream_rejected(self, platform, cascade):
        with pytest.raises(ConfigurationError):
            TrafficSimulator(platform, StaticPolicy(cascade), seed=0).run([])

    def test_unknown_unit_rejected(self, platform):
        rogue = Deployment(
            name="rogue",
            unit_names=("tpu",),
            service_ms=(1.0,),
            energy_mj=(1.0,),
            stage_accuracies=(0.9,),
            dvfs_scales=(1.0,),
        )
        requests = ConstantRate(10.0).generate(1000.0, seed=0)
        with pytest.raises(ConfigurationError):
            TrafficSimulator(platform, StaticPolicy(rogue), seed=0).run(requests)
