"""Unit tests for the search-space encoding, sampling and cardinality."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, MappingError
from repro.nn.partition import IndicatorMatrix, PartitionMatrix
from repro.search.space import MappingConfig, SearchSpace


class TestMappingConfig:
    def test_valid_config(self, tiny_mapping_config):
        assert tiny_mapping_config.num_stages == 3
        assert tiny_mapping_config.num_layers == 3
        assert 0.0 <= tiny_mapping_config.reuse_fraction() <= 1.0

    def test_describe_mentions_units(self, tiny_mapping_config):
        text = tiny_mapping_config.describe()
        assert "gpu" in text and "dla0" in text

    def test_duplicate_units_rejected(self):
        with pytest.raises(MappingError):
            MappingConfig(
                partition=PartitionMatrix.uniform(2, 3),
                indicator=IndicatorMatrix.none(2, 3),
                unit_names=("gpu", "gpu"),
                dvfs_indices=(0, 0),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MappingConfig(
                partition=PartitionMatrix.uniform(2, 3),
                indicator=IndicatorMatrix.none(2, 4),
                unit_names=("gpu", "dla0"),
                dvfs_indices=(0, 0),
            )

    def test_wrong_unit_count_rejected(self):
        with pytest.raises(MappingError):
            MappingConfig(
                partition=PartitionMatrix.uniform(2, 3),
                indicator=IndicatorMatrix.none(2, 3),
                unit_names=("gpu",),
                dvfs_indices=(0, 0),
            )

    def test_negative_dvfs_rejected(self):
        with pytest.raises(MappingError):
            MappingConfig(
                partition=PartitionMatrix.uniform(2, 3),
                indicator=IndicatorMatrix.none(2, 3),
                unit_names=("gpu", "dla0"),
                dvfs_indices=(0, -1),
            )


class TestSearchSpaceSampling:
    def test_sample_is_valid_config(self, tiny_space, platform):
        config = tiny_space.sample(seed=0)
        assert config.num_stages == platform.num_units
        assert set(config.unit_names) <= set(platform.unit_names)
        for name, index in zip(config.unit_names, config.dvfs_indices):
            assert 0 <= index < platform.unit(name).num_dvfs_points()

    def test_sampling_deterministic_per_seed(self, tiny_space):
        first = tiny_space.sample(seed=11)
        second = tiny_space.sample(seed=11)
        np.testing.assert_allclose(first.partition.values, second.partition.values)
        assert first.unit_names == second.unit_names
        assert first.dvfs_indices == second.dvfs_indices

    def test_population_size(self, tiny_space):
        population = tiny_space.population(10, seed=0)
        assert len(population) == 10

    def test_population_invalid_size_rejected(self, tiny_space):
        with pytest.raises(ConfigurationError):
            tiny_space.population(0)

    def test_last_stage_indicator_always_zero(self, tiny_space):
        rng = np.random.default_rng(0)
        for _ in range(10):
            config = tiny_space.sample(rng)
            assert config.indicator.values[-1, :].sum() == 0

    def test_reuse_cap_respected(self, tiny_network, platform):
        space = SearchSpace(tiny_network, platform, max_reuse_fraction=0.5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = space.sample(rng)
            assert config.reuse_fraction() <= 0.5 + 1e-9

    def test_zero_reuse_cap_means_no_reuse(self, tiny_network, platform):
        space = SearchSpace(tiny_network, platform, max_reuse_fraction=0.0)
        config = space.sample(seed=0)
        assert config.reuse_fraction() == 0.0

    def test_fewer_stages_than_units(self, visformer_net, platform):
        space = SearchSpace(visformer_net, platform, num_stages=2)
        config = space.sample(seed=0)
        assert config.num_stages == 2
        assert len(set(config.unit_names)) == 2

    def test_invalid_num_stages_rejected(self, visformer_net, platform):
        with pytest.raises(ConfigurationError):
            SearchSpace(visformer_net, platform, num_stages=0)
        with pytest.raises(ConfigurationError):
            SearchSpace(visformer_net, platform, num_stages=5)

    def test_invalid_reuse_prior_rejected(self, visformer_net, platform):
        with pytest.raises(ConfigurationError):
            SearchSpace(visformer_net, platform, reuse_prior=1.5)


class TestCardinality:
    def test_paper_example_order_of_magnitude(self, visformer_net, platform):
        """Sect. V-A: one layer contributes O(1.5e5) = 8^3 x 3! x ~50 choices."""
        space = SearchSpace(visformer_net, platform)
        per_layer = space.per_layer_cardinality()
        # 8 ratios ** 3 stages * 3! mappings * (10 * 6 * 6) DVFS combinations.
        assert per_layer == 8**3 * math.factorial(3) * 360
        assert 1e5 < per_layer < 2e6

    def test_mapping_cardinality_is_permutation_count(self, visformer_net, platform):
        space = SearchSpace(visformer_net, platform, num_stages=2)
        assert space.mapping_cardinality() == math.perm(3, 2)

    def test_total_cardinality_is_astronomical(self, visformer_space):
        assert visformer_space.total_cardinality() > 1e30

    def test_dvfs_cardinality_matches_platform(self, visformer_space, platform):
        assert visformer_space.dvfs_cardinality() == platform.dvfs_space_size()


class TestReplaceUnit:
    def test_swap_keeps_permutation_valid(self, tiny_space):
        config = tiny_space.sample(seed=0)
        stage = 0
        other_unit = [n for n in tiny_space.platform.unit_names if n != config.unit_names[0]][0]
        swapped = tiny_space.replace_unit(config, stage, other_unit)
        assert swapped.unit_names[stage] == other_unit
        assert len(set(swapped.unit_names)) == len(swapped.unit_names)

    def test_dvfs_indices_clamped_after_swap(self, tiny_space, platform):
        config = tiny_space.sample(seed=1)
        for stage in range(config.num_stages):
            for unit in platform.unit_names:
                moved = tiny_space.replace_unit(config, stage, unit)
                for name, index in zip(moved.unit_names, moved.dvfs_indices):
                    assert index < platform.unit(name).num_dvfs_points()

    def test_unknown_unit_rejected(self, tiny_space):
        config = tiny_space.sample(seed=0)
        with pytest.raises(MappingError):
            tiny_space.replace_unit(config, 0, "npu")
