"""Unit tests for the accuracy model, exit statistics and dynamic inference."""

from __future__ import annotations

import pytest

from repro.dynamics.accuracy import AccuracyModel
from repro.dynamics.inference import simulate_dynamic_inference
from repro.dynamics.samples import compute_exit_statistics
from repro.errors import ConfigurationError
from repro.nn.multiexit import build_dynamic_network
from repro.nn.partition import IndicatorMatrix, PartitionMatrix


class TestAccuracyModel:
    def test_full_coverage_close_to_base(self, accuracy_model):
        accuracy = accuracy_model.stage_accuracy_from_coverage(1.0, 0.88, "vit")
        assert accuracy == pytest.approx(0.88 * 0.995, rel=1e-6)

    def test_zero_coverage_is_zero(self, accuracy_model):
        assert accuracy_model.stage_accuracy_from_coverage(0.0, 0.88, "vit") == 0.0

    def test_monotone_in_coverage(self, accuracy_model):
        values = [
            accuracy_model.stage_accuracy_from_coverage(c, 0.88, "vit")
            for c in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_high_coverage_loses_little_accuracy(self, accuracy_model):
        # The pruning-style curve is flat near full coverage: keeping 85 % of
        # the importance mass costs only a few accuracy points.
        accuracy = accuracy_model.stage_accuracy_from_coverage(0.85, 0.8809, "vit")
        assert accuracy > 0.84

    def test_cnn_family_gets_exit_bonus(self, accuracy_model):
        vit = accuracy_model.stage_accuracy_from_coverage(1.0, 0.8055, "vit")
        cnn = accuracy_model.stage_accuracy_from_coverage(1.0, 0.8055, "cnn")
        assert cnn > vit
        # The VGG19 effect of Table II: dynamic variants beat the baseline.
        assert cnn > 0.8055

    def test_accuracy_never_exceeds_ceiling(self):
        model = AccuracyModel(exit_bonus=0.5, exit_penalty=0.0)
        assert model.stage_accuracy_from_coverage(1.0, 0.9, "cnn") <= 0.995

    def test_custom_redundancy_changes_sensitivity(self):
        fragile = AccuracyModel(redundancy=1.0)
        robust = AccuracyModel(redundancy=4.0)
        assert fragile.stage_accuracy_from_coverage(0.5, 0.9, "vit") < (
            robust.stage_accuracy_from_coverage(0.5, 0.9, "vit")
        )

    def test_stage_accuracies_non_decreasing(self, tiny_dynamic, accuracy_model):
        accuracies = accuracy_model.stage_accuracies(tiny_dynamic)
        assert len(accuracies) == 3
        assert all(b >= a for a, b in zip(accuracies, accuracies[1:]))

    def test_final_accuracy_close_to_base_with_full_reuse(self, tiny_dynamic, accuracy_model):
        final = accuracy_model.final_accuracy(tiny_dynamic)
        base = tiny_dynamic.network.base_accuracy
        assert final > base - 0.01

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AccuracyModel(redundancy=0.0)
        with pytest.raises(ConfigurationError):
            AccuracyModel(exit_penalty=1.5)
        model = AccuracyModel()
        with pytest.raises(ConfigurationError):
            model.stage_accuracy_from_coverage(1.2, 0.9, "vit")


class TestExitStatistics:
    def test_counts_follow_accuracy_increments(self):
        stats = compute_exit_statistics([0.5, 0.7, 0.9], validation_samples=1000)
        assert stats.correct_counts == (500, 200, 200)
        assert stats.accuracy == pytest.approx(0.9)

    def test_exit_fractions_sum_to_one(self):
        stats = compute_exit_statistics([0.5, 0.7, 0.9])
        assert sum(stats.exit_fractions) == pytest.approx(1.0)

    def test_misclassified_samples_terminate_at_last_stage(self):
        stats = compute_exit_statistics([0.5, 0.7, 0.9])
        # 20 % increment + 10 % never-correct = 30 % of samples end at stage 3.
        assert stats.exit_fractions[-1] == pytest.approx(0.3)

    def test_early_exit_fraction(self):
        stats = compute_exit_statistics([0.6, 0.8, 0.9])
        assert stats.early_exit_fraction == pytest.approx(0.8)

    def test_expected_stages_between_one_and_m(self):
        stats = compute_exit_statistics([0.5, 0.7, 0.9])
        assert 1.0 <= stats.expected_stages() <= 3.0

    def test_single_stage_cascade(self):
        stats = compute_exit_statistics([0.88])
        assert stats.exit_fractions == (1.0,)
        assert stats.expected_stages() == pytest.approx(1.0)

    def test_equal_accuracies_mean_no_midway_exits(self):
        stats = compute_exit_statistics([0.7, 0.7, 0.9])
        assert stats.exit_fractions[1] == pytest.approx(0.0)

    def test_decreasing_accuracies_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_exit_statistics([0.9, 0.7])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_exit_statistics([])
        with pytest.raises(ConfigurationError):
            compute_exit_statistics([0.5], validation_samples=0)
        with pytest.raises(ConfigurationError):
            compute_exit_statistics([1.4])


class TestDynamicInference:
    @pytest.fixture()
    def profile(self, tiny_dynamic, mapping_evaluator):
        return mapping_evaluator.profile(tiny_dynamic, ("gpu", "dla0", "dla1"), (9, 5, 5))

    def test_expected_metrics_bounded_by_worst_case(self, tiny_dynamic, profile):
        result = simulate_dynamic_inference(tiny_dynamic, profile)
        assert 0 < result.expected_latency_ms <= result.worst_case_latency_ms + 1e-9
        assert 0 < result.expected_energy_mj <= result.worst_case_energy_mj + 1e-9

    def test_early_exits_save_energy(self, tiny_dynamic, profile):
        result = simulate_dynamic_inference(tiny_dynamic, profile)
        # A meaningful fraction of samples exits early, so the expectation is
        # strictly below the all-stages energy.
        assert result.exit_statistics.early_exit_fraction > 0.3
        assert result.expected_energy_mj < result.worst_case_energy_mj

    def test_accuracy_and_reuse_reported(self, tiny_dynamic, profile):
        result = simulate_dynamic_inference(tiny_dynamic, profile)
        assert result.accuracy == pytest.approx(
            result.exit_statistics.stage_accuracies[-1]
        )
        assert result.reuse_fraction == pytest.approx(tiny_dynamic.reuse_fraction())
        assert result.num_stages == 3

    def test_custom_accuracy_model_changes_result(self, tiny_dynamic, profile):
        generous = simulate_dynamic_inference(
            tiny_dynamic, profile, accuracy_model=AccuracyModel(redundancy=4.0)
        )
        strict = simulate_dynamic_inference(
            tiny_dynamic, profile, accuracy_model=AccuracyModel(redundancy=1.0)
        )
        assert generous.expected_energy_mj <= strict.expected_energy_mj + 1e-9

    def test_stage_count_mismatch_rejected(self, tiny_network, tiny_ranking, platform, profile):
        two_stage = build_dynamic_network(
            tiny_network,
            partition=PartitionMatrix.uniform(2, 3),
            indicator=IndicatorMatrix.none(2, 3),
            ranking=tiny_ranking,
        )
        with pytest.raises(ConfigurationError):
            simulate_dynamic_inference(two_stage, profile)

    def test_validation_samples_scale_counts(self, tiny_dynamic, profile):
        small = simulate_dynamic_inference(tiny_dynamic, profile, validation_samples=100)
        large = simulate_dynamic_inference(tiny_dynamic, profile, validation_samples=10000)
        assert sum(small.exit_statistics.correct_counts) <= 100
        assert sum(large.exit_statistics.correct_counts) <= 10000
        # Expected metrics are sample-size independent (they are fractions).
        assert small.expected_energy_mj == pytest.approx(large.expected_energy_mj, rel=0.05)
