"""Unit tests for the evolutionary loop, random search and baselines."""

from __future__ import annotations

import pytest

from repro.errors import SearchError
from repro.search.baselines import (
    random_search,
    single_unit_baseline,
    static_partitioned_baseline,
)
from repro.search.constraints import SearchConstraints
from repro.search.evolutionary import EvolutionarySearch
from repro.search.objectives import energy_oriented_objective, paper_objective


@pytest.fixture(scope="module")
def tiny_search_result(request):
    """A small but complete evolutionary run on the toy network."""
    # Build module-scoped fixtures manually to avoid function-scope clashes.
    from repro.nn.layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer
    from repro.nn.graph import NetworkGraph
    from repro.search.evaluation import ConfigEvaluator
    from repro.search.space import SearchSpace
    from repro.soc.platform import jetson_agx_xavier

    layers = (
        Conv2dLayer(
            name="conv1", width=16, in_width=3, kernel_size=3, stride=1,
            in_spatial=(8, 8), out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    network = NetworkGraph(
        name="tiny", layers=layers, input_shape=(3, 8, 8), num_classes=10,
        base_accuracy=0.9, family="vit",
    )
    platform = jetson_agx_xavier()
    evaluator = ConfigEvaluator(network=network, platform=platform, seed=0)
    space = SearchSpace(network=network, platform=platform)
    search = EvolutionarySearch(
        space=space,
        evaluator=evaluator,
        population_size=12,
        generations=6,
        seed=0,
    )
    return search.run(), space, evaluator, network, platform


class TestEvolutionarySearch:
    def test_result_structure(self, tiny_search_result):
        result, _, _, _, _ = tiny_search_result
        assert result.num_evaluations > 0
        assert len(result.generations) == 6
        assert result.pareto
        assert result.best in result.history

    def test_best_is_minimal_feasible_objective(self, tiny_search_result):
        result, _, _, _, _ = tiny_search_result
        pool = result.feasible if result.feasible else result.history
        assert paper_objective(result.best) == pytest.approx(
            min(paper_objective(item) for item in pool)
        )

    def test_best_objective_never_degrades(self, tiny_search_result):
        result, _, _, _, _ = tiny_search_result
        best_values = [stat.best_objective for stat in result.generations]
        # Elitism means the running best is non-increasing over generations
        # up to re-evaluation noise (there is none: the pipeline is
        # deterministic and cached).
        running = [min(best_values[: i + 1]) for i in range(len(best_values))]
        assert running == sorted(running, reverse=True)

    def test_pareto_members_are_feasible_when_possible(self, tiny_search_result):
        result, space, _, _, platform = tiny_search_result
        gate = SearchConstraints()
        for member in result.pareto:
            assert gate.is_feasible(member, platform=platform)

    def test_constrained_search_respects_reuse_cap(self, tiny_search_result):
        _, space, evaluator, _, _ = tiny_search_result
        constrained = EvolutionarySearch(
            space=space,
            evaluator=evaluator,
            constraints=SearchConstraints(max_reuse_fraction=0.5),
            population_size=10,
            generations=4,
            seed=1,
        ).run()
        assert all(item.reuse_fraction <= 0.5 + 1e-9 for item in constrained.feasible)
        assert all(item.reuse_fraction <= 0.5 + 1e-9 for item in constrained.pareto)

    def test_invalid_hyperparameters_rejected(self, tiny_search_result):
        _, space, evaluator, _, _ = tiny_search_result
        with pytest.raises(SearchError):
            EvolutionarySearch(space, evaluator, population_size=1)
        with pytest.raises(SearchError):
            EvolutionarySearch(space, evaluator, generations=0)
        with pytest.raises(SearchError):
            EvolutionarySearch(space, evaluator, elite_fraction=0.0)
        with pytest.raises(SearchError):
            EvolutionarySearch(space, evaluator, mutation_rate=1.5)
        with pytest.raises(SearchError):
            EvolutionarySearch(space, evaluator, fresh_fraction=1.0)

    def test_alternative_objective_changes_best(self, tiny_search_result):
        _, space, evaluator, _, _ = tiny_search_result
        energy_first = EvolutionarySearch(
            space=space,
            evaluator=evaluator,
            objective=energy_oriented_objective,
            population_size=10,
            generations=4,
            seed=2,
        ).run()
        assert energy_first.best.energy_mj <= min(
            item.energy_mj for item in energy_first.feasible
        ) * 1.0 + 1e-9


class TestBaselines:
    def test_single_unit_baseline_reports_base_accuracy(self, tiny_search_result):
        _, _, _, network, platform = tiny_search_result
        gpu = single_unit_baseline(network, platform, "gpu")
        assert gpu.accuracy == pytest.approx(network.base_accuracy, abs=1e-6)
        assert gpu.reuse_fraction == 0.0
        assert gpu.config.num_stages == 1

    def test_gpu_faster_dla_cheaper(self, tiny_search_result):
        _, _, _, network, platform = tiny_search_result
        gpu = single_unit_baseline(network, platform, "gpu")
        dla = single_unit_baseline(network, platform, "dla0")
        assert gpu.latency_ms < dla.latency_ms
        assert dla.energy_mj < gpu.energy_mj

    def test_single_unit_respects_dvfs_index(self, tiny_search_result):
        _, _, _, network, platform = tiny_search_result
        fast = single_unit_baseline(network, platform, "gpu")
        slow = single_unit_baseline(network, platform, "gpu", dvfs_index=0)
        assert slow.latency_ms > fast.latency_ms

    def test_static_baseline_structure(self, tiny_search_result):
        _, _, _, network, platform = tiny_search_result
        static = static_partitioned_baseline(network, platform)
        assert static.config.num_stages == platform.num_units
        assert static.reuse_fraction == pytest.approx(1.0)
        assert static.accuracy == pytest.approx(network.base_accuracy, abs=0.02)

    def test_static_baseline_faster_than_dla_only(self, tiny_search_result):
        # On the toy network the per-layer launch overheads dominate, so the
        # energy comparison against GPU-only is only meaningful at Visformer
        # scale (covered by the integration tests); latency must still win.
        _, _, _, network, platform = tiny_search_result
        dla = single_unit_baseline(network, platform, "dla0")
        static = static_partitioned_baseline(network, platform)
        assert static.worst_case_latency_ms < dla.latency_ms

    def test_static_baseline_rejects_duplicate_units(self, tiny_search_result):
        _, _, _, network, platform = tiny_search_result
        with pytest.raises(SearchError):
            static_partitioned_baseline(network, platform, unit_names=("gpu", "gpu"))

    def test_random_search_sorted_by_objective(self, tiny_search_result):
        _, space, evaluator, _, _ = tiny_search_result
        results = random_search(space, evaluator, num_samples=15, seed=0)
        values = [paper_objective(item) for item in results]
        assert values == sorted(values)

    def test_random_search_invalid_samples_rejected(self, tiny_search_result):
        _, space, evaluator, _, _ = tiny_search_result
        with pytest.raises(SearchError):
            random_search(space, evaluator, num_samples=0)

    def test_evolutionary_beats_or_matches_random(self, tiny_search_result):
        result, space, evaluator, _, _ = tiny_search_result
        random_best = random_search(space, evaluator, num_samples=30, seed=9)[0]
        assert paper_objective(result.best) <= paper_objective(random_best) * 1.05
