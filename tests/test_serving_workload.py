"""Unit tests for the serving workload (arrival process) library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.workload import (
    ConstantRate,
    DiurnalArrivals,
    MultiTenantStream,
    OnOffBursts,
    PoissonArrivals,
    Request,
)

DURATION_MS = 20_000.0


class TestRequest:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Request(arrival_ms=-1.0)
        with pytest.raises(ConfigurationError):
            Request(arrival_ms=0.0, tenant="")
        with pytest.raises(ConfigurationError):
            Request(arrival_ms=0.0, deadline_ms=0.0)


class TestDeterminism:
    @pytest.mark.parametrize(
        "process",
        [
            ConstantRate(25.0),
            PoissonArrivals(25.0),
            OnOffBursts(burst_rps=50.0, idle_rps=5.0, burst_ms=1000.0, idle_ms=2000.0),
            DiurnalArrivals(peak_rps=40.0, trough_rps=4.0, period_ms=10_000.0),
            MultiTenantStream(
                [PoissonArrivals(10.0, tenant="a"), ConstantRate(5.0, tenant="b")]
            ),
        ],
        ids=["constant", "poisson", "bursty", "diurnal", "multi-tenant"],
    )
    def test_identical_seed_identical_trace(self, process):
        first = process.generate(DURATION_MS, seed=7)
        second = process.generate(DURATION_MS, seed=7)
        assert first == second

    def test_different_seed_different_trace(self):
        process = PoissonArrivals(25.0)
        first = process.generate(DURATION_MS, seed=1)
        second = process.generate(DURATION_MS, seed=2)
        assert first != second

    def test_constant_rate_is_seed_independent(self):
        process = ConstantRate(25.0)
        assert process.generate(DURATION_MS, seed=1) == process.generate(DURATION_MS, seed=99)


class TestStatistics:
    def test_arrivals_sorted_and_in_window(self):
        process = OnOffBursts(burst_rps=80.0, idle_rps=2.0, burst_ms=500.0, idle_ms=1500.0)
        requests = process.generate(DURATION_MS, seed=0)
        times = [request.arrival_ms for request in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < DURATION_MS for t in times)

    def test_constant_rate_count_and_spacing(self):
        requests = ConstantRate(10.0).generate(1000.0, seed=0)
        assert len(requests) == 10
        gaps = np.diff([request.arrival_ms for request in requests])
        assert np.allclose(gaps, 100.0)

    def test_poisson_rate_approximately_met(self):
        requests = PoissonArrivals(50.0).generate(60_000.0, seed=3)
        observed_rps = len(requests) / 60.0
        assert observed_rps == pytest.approx(50.0, rel=0.1)

    def test_bursty_phases_have_different_densities(self):
        process = OnOffBursts(burst_rps=100.0, idle_rps=5.0, burst_ms=1000.0, idle_ms=1000.0)
        requests = process.generate(10_000.0, seed=0)
        in_burst = sum(1 for r in requests if (r.arrival_ms % 2000.0) < 1000.0)
        in_idle = len(requests) - in_burst
        assert in_burst > 5 * in_idle

    def test_diurnal_rate_envelope(self):
        process = DiurnalArrivals(peak_rps=60.0, trough_rps=6.0, period_ms=20_000.0)
        assert process.rate_rps_at(0.0) == pytest.approx(6.0)
        assert process.rate_rps_at(10_000.0) == pytest.approx(60.0)
        requests = process.generate(20_000.0, seed=1)
        # More arrivals around the peak (2nd quarter) than around the trough.
        near_peak = sum(1 for r in requests if 7500.0 <= r.arrival_ms < 12_500.0)
        near_trough = sum(1 for r in requests if r.arrival_ms < 2500.0 or r.arrival_ms >= 17_500.0)
        assert near_peak > 2 * near_trough

    def test_multi_tenant_merge_keeps_labels_and_order(self):
        stream = MultiTenantStream(
            [
                PoissonArrivals(20.0, tenant="mobile", deadline_ms=80.0),
                PoissonArrivals(10.0, tenant="batch"),
            ]
        )
        requests = stream.generate(10_000.0, seed=5)
        tenants = {request.tenant for request in requests}
        assert tenants == {"mobile", "batch"}
        times = [request.arrival_ms for request in requests]
        assert times == sorted(times)
        assert all(
            request.deadline_ms == 80.0
            for request in requests
            if request.tenant == "mobile"
        )
        assert all(
            request.deadline_ms is None for request in requests if request.tenant == "batch"
        )


class TestValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(0.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-1.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(peak_rps=5.0, trough_rps=10.0, period_ms=1000.0)
        with pytest.raises(ConfigurationError):
            MultiTenantStream([])

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(10.0).generate(0.0, seed=0)
