"""Checkpointing, cell parallelism and warm starts of repro.campaign.

The tentpole guarantees under test:

* a campaign interrupted after any cell and resumed via ``checkpoint_dir``
  renders a ``campaign_summary`` byte-identical to an uninterrupted run,
  without re-searching the finished cells;
* ``cell_workers > 1`` matches the sequential path bit for bit;
* checkpoints refuse to mix seeds or configurations, survive corrupted
  lines, and a grown grid re-runs exactly the new cells;
* ``warm_start=True`` seeds later platforms with translated Pareto points
  and stays deterministic across sequential and parallel execution.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.campaign import CampaignCheckpoint, CellExpectation, run_campaign
from repro.campaign import runner as runner_module
from repro.core.report import campaign_summary
from repro.engine.cache import EvaluationCache
from repro.errors import ConfigurationError

GRID = ("jetson-agx-xavier", "mobile-big-little")
BUDGET = dict(generations=2, population_size=6)
SEED = 11


@pytest.fixture(scope="module")
def baseline_summary(tiny_network):
    """The uninterrupted, checkpoint-free reference output."""
    return campaign_summary(run_campaign(tiny_network, GRID, seed=SEED, **BUDGET))


def _interrupt_after(monkeypatch, n_cells):
    """Make the sequential cell loop die after ``n_cells`` searches."""
    calls = {"count": 0}
    original = runner_module._run_cell

    def exploding(task, cache=None, framework=None, **kwargs):
        if calls["count"] >= n_cells:
            raise KeyboardInterrupt("simulated mid-campaign crash")
        calls["count"] += 1
        return original(task, cache, framework, **kwargs)

    monkeypatch.setattr(runner_module, "_run_cell", exploding)
    return calls


class TestResumeByteIdentity:
    @pytest.mark.parametrize("crash_after", [1])
    def test_interrupted_then_resumed_is_byte_identical(
        self, tiny_network, tmp_path, monkeypatch, baseline_summary, crash_after
    ):
        calls = _interrupt_after(monkeypatch, crash_after)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET
            )
        assert calls["count"] == crash_after
        monkeypatch.undo()

        # Resume: only the unfinished cells may be searched again.
        searched = []
        original = runner_module._run_cell

        def counting(task, cache=None, framework=None, **kwargs):
            searched.append(task.platform.name)
            return original(task, cache, framework, **kwargs)

        monkeypatch.setattr(runner_module, "_run_cell", counting)
        resumed = run_campaign(
            tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET
        )
        assert campaign_summary(resumed) == baseline_summary
        assert len(searched) == len(GRID) - crash_after

    def test_fully_checkpointed_rerun_searches_nothing(
        self, tiny_network, tmp_path, monkeypatch, baseline_summary
    ):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)

        def forbidden(task, cache=None, framework=None, **kwargs):
            raise AssertionError(f"cell {task.platform.name} was re-searched")

        monkeypatch.setattr(runner_module, "_run_cell", forbidden)
        rerun = run_campaign(
            tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET
        )
        assert campaign_summary(rerun) == baseline_summary

    def test_resumed_run_refills_the_shared_cache(self, tiny_network, tmp_path):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        cache = EvaluationCache()
        run_campaign(
            tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, cache=cache, **BUDGET
        )
        # Restored cells bypass evaluation entirely, yet their histories are
        # merged back so the grid-wide cache stays complete.
        assert len(cache) > 0


class TestCellParallelism:
    def test_cell_parallel_matches_sequential(self, tiny_network, baseline_summary):
        parallel = run_campaign(
            tiny_network, GRID, seed=SEED, cell_workers=2, **BUDGET
        )
        assert campaign_summary(parallel) == baseline_summary

    def test_cell_parallel_writes_checkpoints(self, tiny_network, tmp_path):
        run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            cell_workers=2,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        lines = (tmp_path / CampaignCheckpoint.FILENAME).read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(GRID)

    def test_invalid_cell_workers_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError, match="cell_workers"):
            run_campaign(tiny_network, GRID, cell_workers=0, **BUDGET)


class TestCheckpointEdgeCases:
    def test_grown_grid_runs_only_new_cells(self, tiny_network, tmp_path, monkeypatch):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)

        searched = []
        original = runner_module._run_cell

        def counting(task, cache=None, framework=None, **kwargs):
            searched.append(task.platform.name)
            return original(task, cache, framework, **kwargs)

        monkeypatch.setattr(runner_module, "_run_cell", counting)
        # Orin has three units like the original grid members, so the stage
        # count (and hence every fingerprint) is unchanged.
        grown = run_campaign(
            tiny_network,
            GRID + ("jetson-agx-orin",),
            seed=SEED,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        assert searched == ["jetson-agx-orin"]
        assert grown.platform_names == GRID + ("jetson-agx-orin",)

    def test_corrupted_line_reruns_that_cell_only(
        self, tiny_network, tmp_path, monkeypatch, baseline_summary, caplog
    ):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        path = tmp_path / CampaignCheckpoint.FILENAME
        lines = path.read_text(encoding="utf-8").splitlines()
        # Truncate the second cell's payload mid-base64 (mid-write crash).
        path.write_text(
            lines[0] + "\n" + lines[1][: len(lines[1]) // 2] + "\n", encoding="utf-8"
        )

        searched = []
        original = runner_module._run_cell

        def counting(task, cache=None, framework=None, **kwargs):
            searched.append(task.platform.name)
            return original(task, cache, framework, **kwargs)

        monkeypatch.setattr(runner_module, "_run_cell", counting)
        with caplog.at_level(logging.WARNING, logger="repro.campaign.checkpoint"):
            resumed = run_campaign(
                tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET
            )
        assert campaign_summary(resumed) == baseline_summary
        assert len(searched) == 1
        assert any("malformed" in record.message for record in caplog.records)

    def test_different_seed_raises_not_mixes(self, tiny_network, tmp_path):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        with pytest.raises(ConfigurationError, match="seed"):
            run_campaign(
                tiny_network, GRID, seed=SEED + 1, checkpoint_dir=tmp_path, **BUDGET
            )

    def test_different_budget_raises_not_mixes(self, tiny_network, tmp_path):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_campaign(
                tiny_network,
                GRID,
                seed=SEED,
                checkpoint_dir=tmp_path,
                generations=BUDGET["generations"] + 1,
                population_size=BUDGET["population_size"],
            )

    def test_same_named_but_recalibrated_platform_raises(self, tiny_network, tmp_path):
        """Platform identity is content, not name: a same-named board with
        different calibration must not restore the other board's results."""
        from repro.soc.presets import derive, get_platform

        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        impostor = derive(get_platform(GRID[0]), GRID[0], gflops_scale=0.5)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_campaign(
                tiny_network,
                (impostor, GRID[1]),
                seed=SEED,
                checkpoint_dir=tmp_path,
                **BUDGET,
            )

    def test_same_named_but_different_network_raises(self, tiny_network, tmp_path):
        import dataclasses

        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        shrunk = dataclasses.replace(tiny_network, base_accuracy=0.8)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_campaign(shrunk, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)

    def test_changed_objective_keeps_checkpoints_valid(
        self, tiny_network, tmp_path, monkeypatch
    ):
        """The scalar objective is post-hoc: changing it must not re-search."""
        from repro.search.objectives import energy_oriented_objective

        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)

        def forbidden(task, cache=None, framework=None):
            raise AssertionError("objective change should not re-search cells")

        monkeypatch.setattr(runner_module, "_run_cell", forbidden)
        rescored = run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            checkpoint_dir=tmp_path,
            objective=energy_oriented_objective,
            **BUDGET,
        )
        assert len(rescored.cells) == len(GRID)

    def test_stale_platform_lines_are_ignored(self, tiny_network, tmp_path):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        shrunk = run_campaign(
            tiny_network,
            GRID[:1],
            seed=SEED,
            num_stages=3,  # keep the 2-platform stage count => same fingerprint
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        assert shrunk.platform_names == GRID[:1]

    def test_checkpoint_load_tolerates_unknown_version_and_blank_lines(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path, seed=0)
        (tmp_path / CampaignCheckpoint.FILENAME).write_text(
            "\n" + json.dumps({"version": 99}) + "\nnot json at all\n", encoding="utf-8"
        )
        restored = checkpoint.load({("p", "s"): CellExpectation(fingerprint="x")})
        assert restored == {}
        assert checkpoint.stats.malformed == 2


class TestWarmStart:
    def test_warm_start_deterministic_and_parallel_equal(self, tiny_network):
        sequential = run_campaign(
            tiny_network, GRID, seed=SEED, warm_start=True, **BUDGET
        )
        parallel = run_campaign(
            tiny_network, GRID, seed=SEED, warm_start=True, cell_workers=2, **BUDGET
        )
        assert campaign_summary(sequential) == campaign_summary(parallel)

    def test_first_platform_is_cold_started(self, tiny_network):
        warm = run_campaign(tiny_network, GRID, seed=SEED, warm_start=True, **BUDGET)
        cold = run_campaign(tiny_network, GRID, seed=SEED, warm_start=False, **BUDGET)
        first = GRID[0]
        assert (
            warm.cell(first).result.best.latency_ms
            == cold.cell(first).result.best.latency_ms
        )

    def test_warm_seeds_reach_the_strategy(self, tiny_network, monkeypatch):
        seen = []
        original = runner_module._run_cell

        def spying(task, cache=None, framework=None):
            seen.append((task.platform.name, len(task.warm_seeds)))
            return original(task, cache, framework)

        monkeypatch.setattr(runner_module, "_run_cell", spying)
        run_campaign(tiny_network, GRID, seed=SEED, warm_start=True, **BUDGET)
        by_platform = dict(seen)
        assert by_platform[GRID[0]] == 0
        assert 1 <= by_platform[GRID[1]] <= BUDGET["population_size"] // 2

    def test_warm_start_respects_checkpoint_donor_chain(
        self, tiny_network, tmp_path, monkeypatch
    ):
        """Inserting a platform *before* a checkpointed cell re-runs it."""
        run_campaign(
            tiny_network, GRID, seed=SEED, warm_start=True, checkpoint_dir=tmp_path, **BUDGET
        )

        searched = []
        original = runner_module._run_cell

        def counting(task, cache=None, framework=None, **kwargs):
            searched.append(task.platform.name)
            return original(task, cache, framework, **kwargs)

        monkeypatch.setattr(runner_module, "_run_cell", counting)
        reordered = (GRID[0], "jetson-agx-orin", GRID[1])
        run_campaign(
            tiny_network,
            reordered,
            seed=SEED,
            warm_start=True,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        # Xavier's donors are unchanged (none); Orin is new; mobile's donor
        # chain gained Orin, so its checkpoint is invalid and it re-runs.
        assert sorted(searched) == sorted(["jetson-agx-orin", GRID[1]])
