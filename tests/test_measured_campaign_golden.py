"""Golden-file regression pin of the measured-campaign summary bytes.

A 2-platform x 2-family serving campaign whose *searches* run under measured
serving objectives (traffic simulator in the loop, shared
``ServingResultCache`` across cells) at a fixed seed must render the exact
bytes stored in ``tests/data/measured_campaign_golden.txt`` — through the
sequential path, the cell-parallel runner, and a resume after a SIGKILL lands
mid-sweep in a separate process.  The summary includes the per-cell
``sim_cache`` column and the campaign-wide cache-efficiency line, both derived
from the deterministic lookup/unique counts, so the pin also guards the
byte-identity of the cache statistics across execution modes.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/test_measured_campaign_golden.py --regenerate
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaign.checkpoint import CampaignCheckpoint
from repro.core.framework import MapAndConquer
from repro.core.report import campaign_summary, traffic_ranking_summary
from repro.search import MeasuredObjectives
from repro.serving.families import OnOffBurstFamily, SteadyPoissonFamily

GOLDEN_PATH = Path(__file__).parent / "data" / "measured_campaign_golden.txt"

EXTRA_PLATFORMS = ("mobile-big-little",)
FAMILIES = (
    SteadyPoissonFamily(rate_rps=40.0),
    OnOffBurstFamily(burst_rps=90.0, idle_rps=5.0, burst_ms=300.0, idle_ms=500.0),
)
SEED = 3
BUDGET = dict(
    members_per_family=2,
    duration_ms=600.0,
    generations=2,
    population_size=6,
)


def _measured() -> MeasuredObjectives:
    return MeasuredObjectives(family=FAMILIES[0], duration_ms=250.0, members=2)


def _tiny_network():
    # Mirrors the conftest fixture; duplicated so --regenerate works as a
    # plain script outside pytest.
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )

    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


def _render(**overrides) -> str:
    network = overrides.pop("network", None) or _tiny_network()
    framework = MapAndConquer(network, seed=SEED)
    serving = framework.serving_campaign(
        EXTRA_PLATFORMS,
        families=FAMILIES,
        seed=SEED,
        measured_objectives=_measured(),
        **BUDGET,
        **overrides,
    )
    # Both renders: the search-campaign table carries the per-cell
    # ``sim_cache`` column, the traffic ranking the campaign-wide cache line.
    return (
        campaign_summary(serving.campaign)
        + "\n\n"
        + traffic_ranking_summary(serving)
        + "\n"
    )


@pytest.fixture(scope="module")
def golden() -> str:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name} --regenerate`"
    )
    return GOLDEN_PATH.read_text(encoding="utf-8")


def test_golden_contains_the_cache_statistics(golden):
    assert "sim_cache" in golden
    assert "measured serving cache:" in golden


def test_serial_path_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network) == golden


def test_cell_parallel_matches_golden(tiny_network, golden):
    assert _render(network=tiny_network, cell_workers=2) == golden


def test_checkpoint_resume_matches_golden(tiny_network, golden, tmp_path):
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden
    # Second pass: every cell restored from the checkpoint, bytes unchanged.
    assert _render(network=tiny_network, checkpoint_dir=tmp_path) == golden


_CHILD_SCRIPT = textwrap.dedent(
    """
    from repro.core.framework import MapAndConquer
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import (
        AttentionLayer,
        Conv2dLayer,
        FeedForwardLayer,
        LinearLayer,
    )
    from repro.search import MeasuredObjectives
    from repro.serving.families import OnOffBurstFamily, SteadyPoissonFamily

    layers = (
        Conv2dLayer(
            name="conv1", width=16, in_width=3, kernel_size=3, stride=1,
            in_spatial=(8, 8), out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    network = NetworkGraph(
        name="tiny", layers=layers, input_shape=(3, 8, 8),
        num_classes=10, base_accuracy=0.9, family="vit",
    )
    MapAndConquer(network, seed={seed}).serving_campaign(
        {platforms!r},
        families=(
            SteadyPoissonFamily(rate_rps=40.0),
            OnOffBurstFamily(
                burst_rps=90.0, idle_rps=5.0, burst_ms=300.0, idle_ms=500.0
            ),
        ),
        seed={seed},
        measured_objectives=MeasuredObjectives(
            family=SteadyPoissonFamily(rate_rps=40.0),
            duration_ms=250.0,
            members=2,
        ),
        members_per_family={members},
        duration_ms={duration},
        generations={generations},
        population_size={population},
        checkpoint_dir={checkpoint_dir!r},
    )
    """
)


def test_sigkill_mid_sweep_then_resume_matches_golden(tiny_network, golden, tmp_path):
    checkpoint_dir = tmp_path / "checkpoints"
    checkpoint_file = checkpoint_dir / CampaignCheckpoint.FILENAME
    total_serving = (len(EXTRA_PLATFORMS) + 1) * len(FAMILIES)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    def serving_lines() -> int:
        if not checkpoint_file.exists():
            return 0
        return checkpoint_file.read_text(encoding="utf-8").count('"kind": "serving"')

    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _CHILD_SCRIPT.format(
                platforms=EXTRA_PLATFORMS,
                members=BUDGET["members_per_family"],
                duration=BUDGET["duration_ms"],
                generations=BUDGET["generations"],
                population=BUDGET["population_size"],
                seed=SEED,
                checkpoint_dir=str(checkpoint_dir),
            ),
        ],
        env=env,
    )
    try:
        # Kill as soon as the first serving cell lands — mid-sweep, after
        # the measured search cells but before the replay grid completes.
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if serving_lines() >= 1:
                break
            if child.poll() is not None:
                break
            time.sleep(0.002)
        else:
            raise AssertionError("first serving checkpoint never appeared")
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait()

    finished = serving_lines()
    assert finished >= 1
    if finished >= total_serving:
        pytest.skip("child finished before the kill landed — nothing to resume")

    assert _render(network=tiny_network, checkpoint_dir=checkpoint_dir) == golden


if __name__ == "__main__":
    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(_render(), encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
