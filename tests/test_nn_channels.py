"""Unit tests for channel-importance ranking and reordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.channels import ChannelRanking, rank_channels


class TestRankChannels:
    def test_scores_cover_every_layer(self, tiny_network):
        ranking = rank_channels(tiny_network, seed=0)
        assert set(ranking.layer_names()) == set(tiny_network.layer_names)

    def test_scores_normalised_per_layer(self, tiny_network):
        ranking = rank_channels(tiny_network, seed=0)
        for layer in tiny_network:
            assert ranking.scores[layer.name].sum() == pytest.approx(1.0)
            assert ranking.scores[layer.name].shape == (layer.width,)

    def test_deterministic_per_seed(self, tiny_network):
        first = rank_channels(tiny_network, seed=42)
        second = rank_channels(tiny_network, seed=42)
        for name in first.layer_names():
            np.testing.assert_allclose(first.scores[name], second.scores[name])

    def test_different_seeds_differ(self, tiny_network):
        first = rank_channels(tiny_network, seed=1)
        second = rank_channels(tiny_network, seed=2)
        assert any(
            not np.allclose(first.scores[name], second.scores[name])
            for name in first.layer_names()
        )

    def test_order_sorts_scores_descending(self, tiny_network):
        ranking = rank_channels(tiny_network, seed=0)
        for name in ranking.layer_names():
            sorted_scores = ranking.scores[name][ranking.order[name]]
            assert np.all(np.diff(sorted_scores) <= 1e-12)

    def test_invalid_sigma_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            rank_channels(tiny_network, sigma=0.0)


class TestCoverage:
    def test_full_fraction_gives_full_mass(self, tiny_ranking, tiny_network):
        for layer in tiny_network:
            assert tiny_ranking.coverage(layer.name, 1.0) == pytest.approx(1.0)

    def test_zero_fraction_gives_zero(self, tiny_ranking):
        assert tiny_ranking.coverage("conv1", 0.0) == 0.0
        assert tiny_ranking.coverage_unordered("conv1", 0.0) == 0.0

    def test_coverage_is_monotone_in_fraction(self, tiny_ranking):
        fractions = np.linspace(0.1, 1.0, 10)
        values = [tiny_ranking.coverage("attn", f) for f in fractions]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_ordered_coverage_dominates_unordered(self, tiny_ranking):
        for fraction in (0.25, 0.5, 0.75):
            ordered = tiny_ranking.coverage("attn", fraction)
            unordered = tiny_ranking.coverage_unordered("attn", fraction)
            assert ordered >= unordered - 1e-12

    def test_ordered_coverage_exceeds_fraction(self, tiny_ranking):
        # Heavy-tailed importance means the top half carries more than half
        # of the total mass -- the property the reordering exploits.
        assert tiny_ranking.coverage("attn", 0.5) > 0.5

    def test_cumulative_curve_shape(self, tiny_ranking, tiny_network):
        curve = tiny_ranking.cumulative_curve("mlp")
        width = tiny_network[tiny_network.layer_index("mlp")].width
        assert curve.shape == (width,)
        assert curve[-1] == pytest.approx(1.0)
        assert np.all(np.diff(curve) >= 0)

    def test_unknown_layer_rejected(self, tiny_ranking):
        with pytest.raises(KeyError):
            tiny_ranking.coverage("nope", 0.5)

    def test_invalid_fraction_rejected(self, tiny_ranking):
        with pytest.raises(ConfigurationError):
            tiny_ranking.coverage("conv1", 1.5)


class TestChannelRankingValidation:
    def test_mismatched_layers_rejected(self):
        scores = {"a": np.array([0.5, 0.5])}
        order = {"b": np.array([0, 1])}
        with pytest.raises(ConfigurationError):
            ChannelRanking(network_name="x", scores=scores, order=order)

    def test_unnormalised_scores_rejected(self):
        scores = {"a": np.array([0.5, 0.6])}
        order = {"a": np.array([1, 0])}
        with pytest.raises(ConfigurationError):
            ChannelRanking(network_name="x", scores=scores, order=order)
