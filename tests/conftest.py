"""Shared fixtures for the Map-and-Conquer test suite.

Fixtures are deliberately small (few layers, tiny search budgets) so the full
suite runs in seconds while still exercising every code path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.accuracy import AccuracyModel
from repro.nn.channels import rank_channels
from repro.nn.graph import NetworkGraph
from repro.nn.layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer
from repro.nn.models import resnet20, vgg19, visformer
from repro.nn.multiexit import build_dynamic_network
from repro.nn.partition import IndicatorMatrix, PartitionMatrix
from repro.perf.evaluator import MappingEvaluator
from repro.search.evaluation import ConfigEvaluator
from repro.search.space import MappingConfig, SearchSpace
from repro.soc.platform import jetson_agx_xavier


@pytest.fixture(scope="session")
def platform():
    """Calibrated Jetson AGX Xavier platform (GPU + 2 DLAs)."""
    return jetson_agx_xavier()

@pytest.fixture(scope="session")
def platform_with_cpu():
    """Xavier platform with the Carmel CPU cluster exposed as a fourth unit."""
    return jetson_agx_xavier(include_cpu=True)


@pytest.fixture(scope="session")
def visformer_net():
    """The Visformer network graph used throughout the paper."""
    return visformer()


@pytest.fixture(scope="session")
def vgg19_net():
    """The VGG19 network graph used in the generalisation study."""
    return vgg19()


@pytest.fixture(scope="session")
def resnet_net():
    """The ResNet-20 extension model."""
    return resnet20()


@pytest.fixture(scope="session")
def tiny_network():
    """A four-layer toy network small enough to reason about by hand."""
    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


@pytest.fixture(scope="session")
def tiny_ranking(tiny_network):
    """Deterministic channel ranking for the toy network."""
    return rank_channels(tiny_network, seed=0)


@pytest.fixture(scope="session")
def visformer_ranking(visformer_net):
    """Deterministic channel ranking for Visformer."""
    return rank_channels(visformer_net, seed=0)


@pytest.fixture()
def tiny_dynamic(tiny_network, tiny_ranking):
    """A 3-stage dynamic version of the toy network with full feature reuse."""
    num_layers = 3  # backbone excludes the classifier head
    partition = PartitionMatrix.uniform(3, num_layers)
    indicator_values = np.ones((3, num_layers), dtype=int)
    indicator_values[-1, :] = 0
    return build_dynamic_network(
        tiny_network,
        partition=partition,
        indicator=IndicatorMatrix(indicator_values),
        ranking=tiny_ranking,
    )


@pytest.fixture()
def tiny_mapping_config(tiny_dynamic, platform):
    """A hand-built mapping configuration for the toy dynamic network."""
    return MappingConfig(
        partition=tiny_dynamic.scheme.partition,
        indicator=tiny_dynamic.scheme.indicator,
        unit_names=("gpu", "dla0", "dla1"),
        dvfs_indices=(
            platform.unit("gpu").num_dvfs_points() - 1,
            platform.unit("dla0").num_dvfs_points() - 1,
            platform.unit("dla1").num_dvfs_points() - 1,
        ),
    )


@pytest.fixture()
def mapping_evaluator(platform):
    """Hardware evaluator with the analytical oracle."""
    return MappingEvaluator(platform)


@pytest.fixture()
def tiny_config_evaluator(tiny_network, platform):
    """Full configuration-evaluation pipeline for the toy network."""
    return ConfigEvaluator(network=tiny_network, platform=platform, seed=0)


@pytest.fixture()
def tiny_space(tiny_network, platform):
    """Search space of the toy network on the Xavier platform."""
    return SearchSpace(network=tiny_network, platform=platform)


@pytest.fixture()
def visformer_space(visformer_net, platform):
    """Search space of Visformer on the Xavier platform."""
    return SearchSpace(network=visformer_net, platform=platform)


@pytest.fixture()
def accuracy_model():
    """Default calibrated accuracy model."""
    return AccuracyModel()
