"""Differential tests: M/D/1 proxy wait vs the measured simulator wait.

The serving-aware objectives come in two flavours: the closed-form
``Deployment.expected_wait_ms`` proxy (M/D/1 steady state at the bottleneck)
and the measured ``mean_queueing_ms`` a finite replay through the
deterministic event-loop simulator reports
(:func:`repro.serving.bridge.measured_serving_metrics`).  They answer the
same question from opposite ends, so this module pins their relationship:

* **Agreement where both are valid.**  Over random stable deployments
  (utilisation capped below saturation) under Poisson arrivals the two must
  *rank* deployments consistently — Spearman rank correlation at or above a
  pinned floor.  The proxy would be useless as a cheap stand-in otherwise.

* **Documented inversion regimes.**  The proxy's steady-state assumption
  breaks in two ways the simulator measures directly:

  1. *Saturation* (``rho >= 1``): the proxy returns ``inf`` — no steady
     state exists — while a finite replay measures the transient queue
     build-up, which is finite and grows with the horizon.  This is exactly
     the regime where ``measured_serving_objectives`` diverges from the
     proxy (see ``benchmarks/bench_policy_campaigns.py``).
  2. *Rank inversion across the saturation boundary*: a barely-saturated
     fast deployment accumulates less queueing over a short horizon than a
     stable-but-heavily-loaded slow one, so the measured ranking can invert
     the proxy's (which scores the saturated one as worst possible).
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.engine.surrogate import spearman_rank_correlation
from repro.serving.bridge import measured_serving_metrics
from repro.serving.policies import Deployment
from repro.serving.workload import PoissonArrivals
from repro.soc.presets import get_platform

PLATFORM = get_platform("jetson-agx-xavier")

#: Pinned floor for proxy-vs-measured Spearman over stable deployments.
#: Empirically the correlation sits in 0.65-0.95 at utilisation <= 0.8; a
#: drop below this floor means either the proxy or the simulator changed
#: behaviour, not noise (the replay is seed-deterministic and the examples
#: are derandomised).
SPEARMAN_FLOOR = 0.55

#: Keep every generated deployment comfortably below saturation at the
#: probe rate: rho = rate * busy_ms / 1000 <= TARGET_UTILISATION.
TARGET_UTILISATION = 0.8


@st.composite
def stable_deployments(draw, index: int = 0):
    """One valid deployment on the Xavier preset's real compute units."""
    stages = draw(st.integers(min_value=1, max_value=3))
    unit_names = tuple(
        draw(st.sampled_from(PLATFORM.unit_names)) for _ in range(stages)
    )
    service_ms = tuple(
        draw(st.floats(min_value=1.0, max_value=8.0, allow_nan=False))
        for _ in range(stages)
    )
    energy_mj = tuple(
        draw(st.floats(min_value=1.0, max_value=30.0, allow_nan=False))
        for _ in range(stages)
    )
    accuracies = tuple(
        sorted(
            draw(st.floats(min_value=0.5, max_value=0.99, allow_nan=False))
            for _ in range(stages)
        )
    )
    scales = tuple(
        draw(st.floats(min_value=0.4, max_value=1.0, allow_nan=False))
        for _ in range(stages)
    )
    return Deployment(
        name=f"hyp-{index}",
        unit_names=unit_names,
        service_ms=service_ms,
        energy_mj=energy_mj,
        stage_accuracies=accuracies,
        dvfs_scales=scales,
    )


@st.composite
def deployment_batches(draw):
    deployments = tuple(
        draw(stable_deployments(index=i)) for i in range(draw(st.integers(6, 8)))
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return deployments, seed


class TestProxyMeasuredAgreement:
    @given(batch=deployment_batches())
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_rank_correlation_floor_on_stable_deployments(self, batch):
        deployments, seed = batch
        # Load the batch's slowest bottleneck to TARGET_UTILISATION so every
        # member is stable but none is trivially idle.
        max_busy = max(d.bottleneck_busy_ms for d in deployments)
        rate_rps = TARGET_UTILISATION * 1000.0 / max_busy
        workload = PoissonArrivals(rate_rps=rate_rps)

        proxy_waits = [d.expected_wait_ms(rate_rps) for d in deployments]
        # Rank agreement is only meaningful when the proxy actually ranks:
        # discard batches with (near-)tied proxy waits, where any ordering
        # the simulator resolves them into would be equally correct.
        ordered = sorted(proxy_waits)
        assume(all(b >= 1.15 * a for a, b in zip(ordered, ordered[1:])))
        measured_waits = [
            measured_serving_metrics(
                d, PLATFORM, workload, 4000.0, seed=seed
            ).mean_queueing_ms
            for d in deployments
        ]

        assert all(math.isfinite(wait) for wait in proxy_waits)
        assert all(wait >= 0.0 for wait in measured_waits)
        correlation = spearman_rank_correlation(proxy_waits, measured_waits)
        assert correlation >= SPEARMAN_FLOOR, (
            f"proxy and measured waits must rank stable deployments "
            f"consistently: spearman {correlation:.3f} < floor "
            f"{SPEARMAN_FLOOR} (proxy {proxy_waits}, measured "
            f"{measured_waits})"
        )

    @given(deployment=stable_deployments(), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_lightly_loaded_deployments_barely_queue(self, deployment, seed):
        """At utilisation ~0.2 both answers must be small and finite —
        the differential's sanity anchor below any interesting regime."""
        rate_rps = 0.2 * 1000.0 / deployment.bottleneck_busy_ms
        proxy = deployment.expected_wait_ms(rate_rps)
        measured = measured_serving_metrics(
            deployment, PLATFORM, PoissonArrivals(rate_rps=rate_rps), 3000.0, seed=seed
        ).mean_queueing_ms
        assert 0.0 <= proxy < deployment.bottleneck_busy_ms
        assert 0.0 <= measured < 10.0 * deployment.bottleneck_busy_ms


def _deployment(name: str, service_ms: float) -> Deployment:
    return Deployment(
        name=name,
        unit_names=("gpu",),
        service_ms=(service_ms,),
        energy_mj=(5.0,),
        stage_accuracies=(0.95,),
        dvfs_scales=(1.0,),
    )


class TestInversionRegimes:
    def test_saturated_proxy_is_infinite_but_measured_is_finite(self):
        """Inversion regime 1: at rho >= 1 the proxy has no answer while the
        finite-horizon replay measures transient queue growth."""
        deployment = _deployment("saturated", service_ms=10.0)
        rate_rps = 120.0  # rho = 1.2 at a 10 ms bottleneck
        assert deployment.expected_wait_ms(rate_rps) == float("inf")

        workload = PoissonArrivals(rate_rps=rate_rps)
        short = measured_serving_metrics(
            deployment, PLATFORM, workload, 1000.0, seed=0
        ).mean_queueing_ms
        long = measured_serving_metrics(
            deployment, PLATFORM, workload, 4000.0, seed=0
        ).mean_queueing_ms

        assert math.isfinite(short) and short > 0.0
        assert math.isfinite(long)
        assert long > short, (
            f"a saturated queue's measured wait must grow with the horizon: "
            f"{long:.2f} ms after 4 s vs {short:.2f} ms after 1 s"
        )

    def test_short_horizon_ranks_can_invert_across_the_saturation_boundary(self):
        """Inversion regime 2: the proxy scores the barely-saturated fast
        deployment as worst possible (inf), but over a short horizon it
        accumulates *less* queueing than a stable deployment running at
        rho = 0.9 — the measured ranking inverts the proxy's."""
        fast_saturated = _deployment("fast-saturated", service_ms=1.0)
        slow_stable = _deployment("slow-stable", service_ms=9.0)
        # Drive each at its own regime: the fast one just past saturation,
        # the slow one deep into its stable heavy-traffic zone.
        fast_rate = 1050.0  # rho = 1.05 on the 1 ms bottleneck
        slow_rate = 100.0  # rho = 0.90 on the 9 ms bottleneck
        assert fast_saturated.expected_wait_ms(fast_rate) == float("inf")
        proxy_slow = slow_stable.expected_wait_ms(slow_rate)
        assert math.isfinite(proxy_slow)

        measured_fast = measured_serving_metrics(
            fast_saturated, PLATFORM, PoissonArrivals(rate_rps=fast_rate), 500.0, seed=0
        ).mean_queueing_ms
        measured_slow = measured_serving_metrics(
            slow_stable, PLATFORM, PoissonArrivals(rate_rps=slow_rate), 500.0, seed=0
        ).mean_queueing_ms

        assert measured_fast < measured_slow, (
            f"over a 500 ms horizon the barely-saturated 1 ms deployment "
            f"must out-serve the stable rho=0.9 9 ms one: measured "
            f"{measured_fast:.2f} ms vs {measured_slow:.2f} ms (proxy says "
            f"inf vs {proxy_slow:.2f} ms)"
        )
