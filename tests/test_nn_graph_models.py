"""Unit tests for the network graph container and the model zoo builders."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Conv2dLayer
from repro.nn.models import MODEL_BUILDERS, build_model, resnet20, vgg19, visformer


def _conv(name, in_width, width, spatial=8):
    return Conv2dLayer(
        name=name,
        width=width,
        in_width=in_width,
        kernel_size=3,
        stride=1,
        in_spatial=(spatial, spatial),
        out_spatial=(spatial, spatial),
    )


class TestNetworkGraph:
    def test_len_iter_getitem(self, tiny_network):
        assert len(tiny_network) == 4
        assert [layer.name for layer in tiny_network] == ["conv1", "attn", "mlp", "head"]
        assert tiny_network[0].name == "conv1"

    def test_widths_and_names(self, tiny_network):
        assert tiny_network.widths == (16, 32, 32, 10)
        assert tiny_network.layer_names == ("conv1", "attn", "mlp", "head")

    def test_layer_index(self, tiny_network):
        assert tiny_network.layer_index("mlp") == 2
        with pytest.raises(KeyError):
            tiny_network.layer_index("missing")

    def test_totals_are_sums_of_layers(self, tiny_network):
        assert tiny_network.total_flops() == pytest.approx(
            sum(layer.flops() for layer in tiny_network)
        )
        assert tiny_network.total_params() == pytest.approx(
            sum(layer.params() for layer in tiny_network)
        )
        assert tiny_network.total_feature_bytes() == sum(
            layer.output_bytes() for layer in tiny_network
        )

    def test_summary_mentions_every_layer(self, tiny_network):
        text = tiny_network.summary()
        for layer in tiny_network:
            assert layer.name in text

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkGraph(name="empty", layers=())

    def test_mismatched_chain_rejected(self):
        layers = (_conv("a", 3, 16), _conv("b", 32, 32))
        with pytest.raises(ConfigurationError):
            NetworkGraph(name="bad", layers=layers)

    def test_duplicate_layer_names_rejected(self):
        layers = (_conv("a", 3, 16), _conv("a", 16, 16))
        with pytest.raises(ConfigurationError):
            NetworkGraph(name="bad", layers=layers)

    def test_invalid_family_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkGraph(name="bad", layers=(_conv("a", 3, 16),), family="rnn")

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkGraph(name="bad", layers=(_conv("a", 3, 16),), base_accuracy=1.5)

    def test_invalid_num_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkGraph(name="bad", layers=(_conv("a", 3, 16),), num_classes=1)


class TestVisformer:
    def test_chain_is_consistent(self, visformer_net):
        for previous, current in zip(visformer_net.layers, visformer_net.layers[1:]):
            assert current.in_width == previous.width

    def test_family_and_accuracy(self, visformer_net):
        assert visformer_net.family == "vit"
        assert visformer_net.base_accuracy == pytest.approx(0.8809)
        assert visformer_net.num_classes == 100

    def test_contains_attention_and_conv_stages(self, visformer_net):
        kinds = {layer.kind for layer in visformer_net}
        assert {"conv2d", "attention", "feedforward", "linear"} <= kinds

    def test_flops_in_expected_range(self, visformer_net):
        gflops = visformer_net.total_flops() / 1e9
        assert 0.1 < gflops < 1.0

    def test_head_is_classifier(self, visformer_net):
        head = visformer_net.layers[-1]
        assert head.width == visformer_net.num_classes

    def test_image_size_must_divide_by_eight(self):
        with pytest.raises(ValueError):
            visformer(image_size=30)

    def test_custom_num_classes(self):
        net = visformer(num_classes=10)
        assert net.layers[-1].width == 10


class TestVGG19:
    def test_has_sixteen_convolutions(self, vgg19_net):
        convs = [layer for layer in vgg19_net if layer.kind == "conv2d"]
        assert len(convs) == 16

    def test_has_three_linear_layers(self, vgg19_net):
        fcs = [layer for layer in vgg19_net if layer.kind == "linear"]
        assert len(fcs) == 3

    def test_family_and_accuracy(self, vgg19_net):
        assert vgg19_net.family == "cnn"
        assert vgg19_net.base_accuracy == pytest.approx(0.8055)

    def test_flops_larger_than_visformer(self, vgg19_net, visformer_net):
        assert vgg19_net.total_flops() > visformer_net.total_flops()

    def test_spatial_downsampling_applied(self, vgg19_net):
        first = vgg19_net.layers[0]
        last_conv = [layer for layer in vgg19_net if layer.kind == "conv2d"][-1]
        assert first.out_spatial == (32, 32)
        assert last_conv.out_spatial == (2, 2)

    def test_image_size_must_divide_by_32(self):
        with pytest.raises(ValueError):
            vgg19(image_size=48)


class TestResNet20:
    def test_chain_is_consistent(self, resnet_net):
        for previous, current in zip(resnet_net.layers, resnet_net.layers[1:]):
            assert current.in_width == previous.width

    def test_depth(self, resnet_net):
        convs = [layer for layer in resnet_net if layer.kind == "conv2d"]
        assert len(convs) == 19  # stem + 18 block convolutions

    def test_family(self, resnet_net):
        assert resnet_net.family == "cnn"


class TestRegistry:
    def test_all_builders_registered(self):
        assert set(MODEL_BUILDERS) == {"visformer", "vgg19", "resnet20"}

    def test_build_model_dispatches(self):
        net = build_model("visformer", num_classes=10)
        assert net.name == "visformer"
        assert net.num_classes == 10

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            build_model("alexnet")
