"""The first-class objective layer: ObjectiveSet threading and compatibility.

The guarantees under test:

* the default :class:`~repro.search.objectives.ObjectiveSet` reproduces the
  legacy hard-wired (latency, energy, -accuracy) behaviour of
  ``pareto_front`` / ``non_dominated_sort`` / ``hypervolume`` *exactly*
  (hypothesis properties against local reimplementations of the pre-layer
  algorithms), and every existing golden file is byte-unchanged;
* NaN objective values are mapped to ``+inf`` at the ObjectiveSet boundary
  and by :func:`~repro.search.objectives.nan_guarded`, so degenerate
  extractors can no longer shuffle ``sorted(pool, key=objective)``;
* a custom ObjectiveSet threads through the NSGA-II strategy, the engine,
  the surrogate and campaigns — with serial, process-backend, cell-parallel
  and checkpoint-resumed campaigns byte-identical, and a *changed* set
  re-running exactly the affected cells;
* :func:`~repro.search.objectives.serving_objectives` and
  :func:`~repro.search.pareto.select_serving_oriented` expose the M/D/1
  serving-aware fourth objective.
"""

from __future__ import annotations

import hashlib
import math
import pickle
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import run_campaign
from repro.campaign import runner as runner_module
from repro.core.framework import MapAndConquer
from repro.core.report import campaign_summary, objective_table, serving_table
from repro.engine.nsga import crowding_distance, non_dominated_sort, objective_matrix
from repro.engine.surrogate import SurrogateSettings
from repro.errors import ConfigurationError, SearchError
from repro.search.baselines import random_search
from repro.search.objectives import (
    DEFAULT_OBJECTIVES,
    ExpectedWaitExtractor,
    ObjectiveSet,
    ObjectiveSpec,
    as_objective_set,
    default_objective_set,
    nan_guarded,
    serving_objectives,
)
from repro.search.pareto import hypervolume, pareto_front, select_serving_oriented
from repro.serving.families import OnOffBurstFamily, WorkloadFamily

# -- legacy reimplementations (the pre-layer hard-wired behaviour) ------------


def _legacy_key(item):
    return (item.latency_ms, item.energy_mj, -item.accuracy)


def _legacy_dominates(first, second):
    a, b = _legacy_key(first), _legacy_key(second)
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def _legacy_front(evaluated):
    return [
        candidate
        for candidate in evaluated
        if not any(
            _legacy_dominates(other, candidate)
            for other in evaluated
            if other is not candidate
        )
    ]


def _legacy_hv_recursive(points, reference):
    if not points:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(point[0] for point in points)
    ordered = sorted(points)
    total = 0.0
    for index, point in enumerate(ordered):
        upper = ordered[index + 1][0] if index + 1 < len(ordered) else reference[0]
        width = upper - point[0]
        if width <= 0.0:
            continue
        slab = [tuple(other[1:]) for other in ordered[: index + 1]]
        total += width * _legacy_hv_recursive(slab, reference[1:])
    return total


def _legacy_hypervolume(evaluated, reference):
    reference = tuple(float(v) for v in reference)
    points = set()
    for item in evaluated:
        values = tuple(float(v) for v in _legacy_key(item))
        if all(value < bound for value, bound in zip(values, reference)):
            points.add(values)
    return _legacy_hv_recursive(sorted(points), reference)


def _point(latency, energy, accuracy):
    return SimpleNamespace(latency_ms=latency, energy_mj=energy, accuracy=accuracy)


_metric = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)
_accuracy = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_points = st.lists(st.tuples(_metric, _metric, _accuracy), min_size=1, max_size=10)


class TestDefaultSetMatchesLegacy:
    @settings(max_examples=60, deadline=None)
    @given(_points)
    def test_values_are_the_legacy_key_triple(self, raw):
        for latency, energy, accuracy in raw:
            item = _point(latency, energy, accuracy)
            assert DEFAULT_OBJECTIVES.values(item) == _legacy_key(item)

    @settings(max_examples=60, deadline=None)
    @given(_points)
    def test_pareto_front_identical(self, raw):
        items = [_point(*values) for values in raw]
        assert pareto_front(items) == _legacy_front(items)
        assert pareto_front(items, DEFAULT_OBJECTIVES) == _legacy_front(items)

    @settings(max_examples=60, deadline=None)
    @given(_points)
    def test_non_dominated_sort_identical(self, raw):
        items = [_point(*values) for values in raw]
        legacy_matrix = np.array([_legacy_key(item) for item in items], dtype=float)
        matrix = objective_matrix(items)
        assert np.array_equal(matrix, legacy_matrix)
        assert non_dominated_sort(matrix) == non_dominated_sort(legacy_matrix)

    @settings(max_examples=40, deadline=None)
    @given(_points)
    def test_hypervolume_identical(self, raw):
        items = [_point(*values) for values in raw]
        worst = [
            max(key) + 0.5
            for key in zip(*(_legacy_key(item) for item in items))
        ]
        assert hypervolume(items, worst) == _legacy_hypervolume(items, worst)

    def test_default_set_is_stable(self):
        assert default_objective_set() == DEFAULT_OBJECTIVES
        assert default_objective_set().fingerprint() == DEFAULT_OBJECTIVES.fingerprint()
        assert DEFAULT_OBJECTIVES.names == ("latency_ms", "energy_mj", "accuracy")


#: Any change to these bytes means the default objective path drifted; the
#: layer must be invisible until a custom set is passed.
GOLDEN_SHA256 = {
    "campaign_summary_golden.txt": (
        "430f4bfe0da0c5f6bc94a692bc193beb3114e4bdbcafd99b5eaa1f1b2a0295bc"
    ),
    "fleet_campaign_golden.txt": (
        "9637982bd64e9735f118899400015a341ad6ea3a6c535e5477a673c44a3120d0"
    ),
    "serving_campaign_golden.txt": (
        "f23fc721d78a5a9e2251fd06213fe99021d03d47c88a1b72053a5ecb584410cc"
    ),
    "surrogate_summary_golden.txt": (
        "fc68b4ad6f57db34a983d6cadeca2d06a44c07358cd2c7bc6b0a4e7e09ed5f6a"
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_SHA256))
def test_golden_files_byte_unchanged(name):
    data = (Path(__file__).parent / "data" / name).read_bytes()
    assert hashlib.sha256(data).hexdigest() == GOLDEN_SHA256[name]


class TestNanHandling:
    def test_nan_guarded_maps_nan_to_inf(self):
        guarded = nan_guarded(lambda item: float("nan"))
        assert guarded(object()) == float("inf")
        passthrough = nan_guarded(lambda item: 2.5)
        assert passthrough(object()) == 2.5

    def test_spec_value_maps_nan_to_inf(self):
        spec = ObjectiveSpec("broken", lambda item: float("nan"), "min", "raw")
        assert spec.value(object()) == float("inf")
        maximised = ObjectiveSpec("broken_max", lambda item: float("nan"), "max", "raw")
        assert maximised.value(object()) == float("inf")

    def test_nan_values_cannot_shadow_finite_candidates(self):
        # NaN compares false against everything, so a plain min()/sorted()
        # over a NaN-scored pool could crown the degenerate candidate; through
        # the set boundary it always loses to any finite one.
        bad = _point(float("nan"), 1.0, 0.5)
        good = _point(1.0, 1.0, 0.5)
        front = pareto_front([bad, good])
        assert good in front

    def test_random_search_orders_nan_scores_last(
        self, tiny_space, tiny_config_evaluator
    ):
        # A degenerate objective that is undefined for half the pool used to
        # shuffle the result (NaN comparisons are all false in timsort);
        # nan_guarded pins those candidates to the back deterministically.
        def half_broken(item):
            return float("nan") if item.accuracy > 0.5 else item.latency_ms

        result = random_search(
            tiny_space,
            tiny_config_evaluator,
            num_samples=12,
            objective=half_broken,
            seed=4,
        )
        scores = [nan_guarded(half_broken)(item) for item in result]
        assert scores == sorted(scores)
        assert any(math.isinf(score) for score in scores)

    def test_crowding_distance_survives_inf_columns(self):
        values = np.array(
            [
                [1.0, float("inf")],
                [2.0, 5.0],
                [3.0, 4.0],
                [4.0, float("inf")],
            ]
        )
        distances = crowding_distance(values)
        assert not np.isnan(distances).any()


class TestSpecValidation:
    def test_bad_direction_and_transform_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectiveSpec("x", lambda item: 0.0, "sideways", "raw")
        with pytest.raises(ConfigurationError):
            ObjectiveSpec("x", lambda item: 0.0, "min", "wavelet")

    def test_empty_and_duplicate_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectiveSet(())
        spec = ObjectiveSpec("x", lambda item: 0.0, "min", "raw")
        with pytest.raises(ConfigurationError):
            ObjectiveSet((spec, spec))

    def test_as_objective_set_accepts_legacy_key_sequences(self):
        keys = (lambda item: item.latency_ms, lambda item: -item.accuracy)
        converted = as_objective_set(keys)
        item = _point(3.0, 1.0, 0.25)
        assert converted.values(item) == (3.0, -0.25)

    def test_framework_rejects_non_objective_set(self, tiny_network, platform):
        framework = MapAndConquer(tiny_network, platform, seed=0)
        with pytest.raises(ConfigurationError):
            framework.search(generations=1, population_size=4, objectives=["latency"])


class TestServingObjectives:
    def test_family_peak_rate_builds_the_fourth_objective(self):
        family = OnOffBurstFamily(burst_rps=150.0)
        objectives = serving_objectives(family)
        assert objectives.names == (
            "latency_ms",
            "energy_mj",
            "accuracy",
            "expected_wait_ms",
        )
        wait_spec = objectives.specs[-1]
        assert isinstance(wait_spec.extractor, ExpectedWaitExtractor)
        assert wait_spec.extractor.rate_rps == 150.0

    def test_base_family_has_no_peak_rate(self):
        with pytest.raises(ConfigurationError):
            serving_objectives(WorkloadFamily())
        with pytest.raises(ConfigurationError):
            serving_objectives()

    def test_serving_sets_pickle(self):
        objectives = serving_objectives(target_rps=80.0)
        clone = pickle.loads(pickle.dumps(objectives))
        assert clone == objectives
        assert clone.fingerprint() == objectives.fingerprint()

    def test_expected_wait_saturates_to_inf(self, tiny_config_evaluator, tiny_space):
        evaluated = tiny_config_evaluator.evaluate(tiny_space.sample(seed=0))
        assert ExpectedWaitExtractor(rate_rps=1e9)(evaluated) == float("inf")
        gentle = ExpectedWaitExtractor(rate_rps=1e-3)(evaluated)
        assert math.isfinite(gentle) and gentle >= 0.0

    def test_select_serving_oriented_validation(self, tiny_config_evaluator, tiny_space):
        evaluated = [
            tiny_config_evaluator.evaluate(tiny_space.sample(seed=s)) for s in range(4)
        ]
        with pytest.raises(SearchError):
            select_serving_oriented([])
        with pytest.raises(SearchError):
            select_serving_oriented(evaluated)
        with pytest.raises(SearchError):
            select_serving_oriented(evaluated, rate_rps=0.0)
        pick = select_serving_oriented(evaluated, rate_rps=20.0)
        assert pick in evaluated


class TestEngineThreading:
    def test_nsga2_with_custom_set_front_is_non_dominated(
        self, tiny_network, platform
    ):
        framework = MapAndConquer(tiny_network, platform, seed=0)
        objectives = serving_objectives(target_rps=60.0)
        result = framework.search(
            generations=2, population_size=6, strategy="nsga2", objectives=objectives
        )
        assert result.pareto
        assert pareto_front(list(result.pareto), objectives) == list(result.pareto)

    def test_strategy_instance_conflicts_with_objectives(self, tiny_network, platform):
        from repro.engine.nsga import NSGA2Strategy

        framework = MapAndConquer(tiny_network, platform, seed=0)
        strategy = NSGA2Strategy(
            space=framework.space, population_size=4, generations=1
        )
        with pytest.raises(ConfigurationError):
            framework.search(
                strategy=strategy, objectives=serving_objectives(target_rps=60.0)
            )

    def test_surrogate_trains_a_model_per_extra_spec(self, tiny_network, platform):
        framework = MapAndConquer(tiny_network, platform, seed=0)
        objectives = serving_objectives(target_rps=60.0)
        result = framework.search(
            generations=8,
            population_size=6,
            strategy="nsga2",
            surrogate=SurrogateSettings(
                bootstrap_generations=2,
                validate_every=3,
                validation_cap=4,
                min_training_rows=8,
            ),
            objectives=objectives,
        )
        assert result.pareto
        assert result.surrogate is not None
        assert result.surrogate.surrogate_evaluations > 0


GRID = ("jetson-agx-xavier", "mobile-big-little")
BUDGET = dict(generations=2, population_size=6)
SEED = 7
SERVING_SET = serving_objectives(target_rps=80.0)


class TestCampaignThreading:
    @pytest.fixture(scope="class")
    def serial_summary(self, tiny_network):
        return campaign_summary(
            run_campaign(
                tiny_network, GRID, seed=SEED, objectives=SERVING_SET, **BUDGET
            )
        )

    def test_cell_parallel_matches_serial(self, tiny_network, serial_summary):
        parallel = run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            objectives=SERVING_SET,
            cell_workers=2,
            **BUDGET,
        )
        assert campaign_summary(parallel) == serial_summary

    def test_process_backend_matches_serial(self, tiny_network, serial_summary):
        processed = run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            objectives=SERVING_SET,
            backend="process",
            n_workers=2,
            **BUDGET,
        )
        assert campaign_summary(processed) == serial_summary

    def test_checkpoint_resume_matches_serial(
        self, tiny_network, serial_summary, tmp_path, monkeypatch
    ):
        run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            objectives=SERVING_SET,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )

        def forbidden(task, cache=None, framework=None):
            raise AssertionError(f"cell {task.platform.name} was re-searched")

        monkeypatch.setattr(runner_module, "_run_cell", forbidden)
        resumed = run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            objectives=SERVING_SET,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        assert campaign_summary(resumed) == serial_summary

    def test_changed_objective_set_refreshes_every_cell(
        self, tiny_network, tmp_path, monkeypatch
    ):
        run_campaign(tiny_network, GRID, seed=SEED, checkpoint_dir=tmp_path, **BUDGET)
        searched = []
        original = runner_module._run_cell

        def counting(task, cache=None, framework=None):
            searched.append(task.platform.name)
            return original(task, cache, framework)

        monkeypatch.setattr(runner_module, "_run_cell", counting)
        # A different objective set invalidates (refreshes) every cell ...
        run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            objectives=SERVING_SET,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        assert len(searched) == len(GRID)
        # ... and the refreshed checkpoints are keyed to the new set, so the
        # same set restores without re-searching.
        searched.clear()
        run_campaign(
            tiny_network,
            GRID,
            seed=SEED,
            objectives=SERVING_SET,
            checkpoint_dir=tmp_path,
            **BUDGET,
        )
        assert searched == []

    def test_campaign_rejects_non_objective_set(self, tiny_network):
        with pytest.raises(ConfigurationError):
            run_campaign(
                tiny_network, GRID, seed=SEED, objectives=["latency"], **BUDGET
            )


class TestReporting:
    def test_objective_table_renders_named_columns(
        self, tiny_config_evaluator, tiny_space
    ):
        evaluated = [
            tiny_config_evaluator.evaluate(tiny_space.sample(seed=s)) for s in range(3)
        ]
        default_text = objective_table(evaluated)
        assert "latency_ms" in default_text and "accuracy" in default_text
        custom_text = objective_table(evaluated, serving_objectives(target_rps=50.0))
        assert "expected_wait_ms" in custom_text

    def test_serving_table_surfaces_the_serving_pick(
        self, tiny_config_evaluator, tiny_space
    ):
        evaluated = [
            tiny_config_evaluator.evaluate(tiny_space.sample(seed=s)) for s in range(4)
        ]
        rows = [{"policy": "static", "p99_ms": 5.0}]
        plain = serving_table(rows)
        assert "serving-oriented pick" not in plain
        annotated = serving_table(
            rows, front=evaluated, family=OnOffBurstFamily(burst_rps=40.0)
        )
        assert annotated.startswith(plain)
        assert "serving-oriented pick @ 40 rps" in annotated
