"""Setuptools shim for environments without the ``wheel`` package.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that ``pip install -e . --no-build-isolation --no-use-pep517`` (the
legacy editable path) works on offline machines that lack the ``wheel``
build dependency required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
