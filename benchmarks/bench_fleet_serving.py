"""Fleet campaigns: heterogeneous mixes beat homogeneous fleets on joules.

The headline claim of the fleet layer: under a diurnal daily load, a
heterogeneous fleet (one fast board for the peak + one frugal board for the
trough) serves within the p99 SLO at **strictly lower total joules** than
every homogeneous fleet of the same instance count.  The bench constructs
the regime deliberately:

* a ``derive()``-scaled *eco* Xavier (25 % throughput at 10 % power) is far
  cheaper per request, but a pair of them saturates at the diurnal peak —
  its p99 explodes and the SLO is lost;
* a pair of stock Xaviers holds the SLO trivially but burns the full static
  draw of two big boards all day;
* the mixed fleet routes the peak to the stock board and the valley to the
  eco board, holding the SLO at lower total joules than the stock pair.

Asserted: the heterogeneous mix is within the SLO, every homogeneous
within-SLO fleet burns strictly more joules, the eco pair is the proof that
"just go frugal" fails (SLO miss), and the campaign's ``best_mix`` crowns
the heterogeneous fleet.  A second bench times the fleet simulator itself.
Both emit into ``BENCH_fleet.json`` (campaign joules + simulated requests/s
and router overhead) via :mod:`perf_trajectory`.

``REPRO_FLEET_SMOKE=1`` shrinks budgets for the CI smoke step without
changing any assertion.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_fleet_serving.py -q
"""

from __future__ import annotations

import os
import time

from perf_trajectory import emit, load

from repro.campaign import FleetMix, run_fleet_campaign
from repro.core.report import fleet_summary
from repro.nn.models import visformer
from repro.serving import (
    Deployment,
    FleetInstance,
    PoissonArrivals,
    simulate_deployment,
    simulate_fleet,
)
from repro.serving.families import DiurnalFamily
from repro.soc.presets import derive, get_platform

SMOKE = os.environ.get("REPRO_FLEET_SMOKE", "") == "1"

GENERATIONS = 3 if SMOKE else 5
POPULATION = 8 if SMOKE else 12
MEMBERS = 2 if SMOKE else 3
DURATION_MS = 3000.0 if SMOKE else 6000.0
SEED = 0
P99_SLO_MS = 150.0

#: The scaled day: load swings 10:1 between peak and trough.
DAILY = DiurnalFamily(peak_rps=90.0, trough_fraction=0.1, period_ms=1500.0)


def _merge_emit(metrics: dict) -> None:
    """Fold ``metrics`` into ``BENCH_fleet.json`` without losing prior keys."""
    previous = load("fleet") or {}
    previous.update(metrics)
    emit("fleet", previous)


def test_heterogeneous_fleet_wins_on_joules(save_table):
    eco = derive(
        get_platform("jetson-agx-xavier"),
        "xavier-eco",
        gflops_scale=0.25,
        power_scale=0.10,
    )
    mixes = (
        FleetMix(name="stock-pair", counts=(("jetson-agx-xavier", 2),)),
        FleetMix(name="eco-pair", counts=((eco, 2),)),
        FleetMix(
            name="hetero",
            counts=(("jetson-agx-xavier", 1), (eco, 1)),
            router="least-loaded",
        ),
    )
    fleet = run_fleet_campaign(
        visformer(),
        mixes,
        families=(DAILY,),
        members_per_family=MEMBERS,
        duration_ms=DURATION_MS,
        p99_slo_ms=P99_SLO_MS,
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=SEED,
    )
    summary = fleet_summary(fleet)
    print(summary)
    save_table("fleet_serving", summary)

    hetero = fleet.cell("hetero", DAILY.name)
    assert hetero.within_slo, (
        "the heterogeneous fleet must hold the p99 SLO over the whole day:\n"
        + summary
    )

    # "Just go frugal" fails: the eco pair saturates at the diurnal peak.
    eco_cell = fleet.cell("eco-pair", DAILY.name)
    assert not eco_cell.within_slo, (
        "the eco pair should lose the SLO at the diurnal peak:\n" + summary
    )

    # Every homogeneous fleet that *does* hold the SLO burns strictly more.
    for name in ("stock-pair", "eco-pair"):
        cell = fleet.cell(name, DAILY.name)
        if cell.within_slo:
            assert hetero.total_joules < cell.total_joules, (
                f"heterogeneous fleet must undercut {name} on joules:\n" + summary
            )
    assert fleet.best_mix(DAILY.name) == "hetero", summary

    stock = fleet.cell("stock-pair", DAILY.name)
    _merge_emit(
        {
            "hetero_daily_mj_per_1m_requests": round(hetero.daily_joules() / 1e6, 4),
            "hetero_total_joules": round(hetero.total_joules, 3),
            "stock_pair_total_joules": round(stock.total_joules, 3),
            "joules_savings_vs_stock_pair": round(
                1.0 - hetero.total_joules / stock.total_joules, 4
            ),
            "smoke": SMOKE,
        }
    )


def test_fleet_simulator_throughput_and_router_overhead(save_table):
    # Timing rig: a deliberately simple deterministic deployment so the
    # numbers measure the event loop + router, not the search.
    platform = get_platform("jetson-agx-xavier")
    deployment = Deployment(
        name="bench",
        unit_names=("gpu", "dla0"),
        service_ms=(4.0, 9.0),
        energy_mj=(30.0, 12.0),
        stage_accuracies=(0.6, 0.9),
        dvfs_scales=(1.0, 1.0),
    )
    rate = 150.0 if SMOKE else 300.0
    window_ms = 20_000.0 if SMOKE else 40_000.0
    workload = PoissonArrivals(rate).generate(duration_ms=window_ms, seed=1)
    trio = tuple(
        FleetInstance(name=f"node-{i}", platform=platform, deployment=deployment)
        for i in range(3)
    )

    start = time.perf_counter()
    result = simulate_fleet(trio, workload, router="least-loaded", seed=1)
    fleet_elapsed = time.perf_counter() - start
    served = result.num_requests
    fleet_rps = served / fleet_elapsed

    # Router overhead: a fleet of one replays the identical stream through
    # the identical event loop, plus the routing pass — the per-request
    # delta is what the fleet layer costs.
    solo_workload = PoissonArrivals(rate / 3.0).generate(
        duration_ms=window_ms, seed=2
    )
    start = time.perf_counter()
    solo_fleet = simulate_fleet(
        trio[:1], solo_workload, router="round-robin", seed=2
    )
    solo_fleet_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    simulate_deployment(deployment, platform, solo_workload, seed=2)
    solo_direct_elapsed = time.perf_counter() - start
    per_request_overhead_us = (
        1e6
        * max(0.0, solo_fleet_elapsed - solo_direct_elapsed)
        / max(1, solo_fleet.num_requests)
    )

    assert served > 1000, "timing window too small to be meaningful"
    assert fleet_rps > 1000.0, (
        f"fleet simulator should sustain >1k simulated requests/s, "
        f"got {fleet_rps:.0f}"
    )

    report = "\n".join(
        [
            f"fleet simulator: {served} requests in {fleet_elapsed * 1e3:.1f} ms "
            f"({fleet_rps:,.0f} simulated req/s on 3 instances)",
            f"fleet-layer overhead: {per_request_overhead_us:.1f} us/request "
            f"(fleet-of-1 vs direct simulate_deployment)",
        ]
    )
    print(report)
    save_table("fleet_simulator_perf", report)

    _merge_emit(
        {
            "simulated_requests_per_s": round(fleet_rps, 1),
            "requests_timed": served,
            "router_overhead_us_per_request": round(per_request_overhead_us, 2),
        }
    )
