"""Section VI-D -- generalisation to the VGG19 CNN architecture.

The paper reports that VGG19's heavy redundancy lets Map-and-Conquer reach
up to ~4.62x energy gain and ~4.44x latency speedup, with more than 80 % of
samples classified correctly at earlier stages.  This bench regenerates those
numbers from the shared VGG19 search scenarios.
"""

from __future__ import annotations

from repro.core.report import format_table

ACCURACY_GATE = 0.02


def test_vgg19_generalisation(benchmark, vgg19_scenarios, save_table):
    scenario = vgg19_scenarios["none"]
    framework = scenario.framework
    gpu = framework.baseline("gpu")
    dla = framework.baseline("dla0")

    def build():
        best_energy = framework.select_energy_oriented(
            scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
        )
        best_latency = framework.select_latency_oriented(
            scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
        )
        return best_energy, best_latency

    best_energy, best_latency = benchmark.pedantic(build, rounds=3, iterations=1)

    energy_gain = gpu.energy_mj / best_energy.energy_mj
    speedup = dla.latency_ms / best_latency.latency_ms
    early_exit = best_energy.inference.exit_statistics.early_exit_fraction
    rows = [
        {"metric": "GPU-only energy (mJ)", "value": gpu.energy_mj},
        {"metric": "DLA-only latency (ms)", "value": dla.latency_ms},
        {"metric": "Ours-E energy (mJ)", "value": best_energy.energy_mj},
        {"metric": "Ours-L latency (ms)", "value": best_latency.latency_ms},
        {"metric": "energy gain vs GPU (x)  [paper ~4.62x]", "value": energy_gain},
        {"metric": "latency speedup vs DLA (x) [paper ~4.44x]", "value": speedup},
        {"metric": "early-exit fraction [paper > 0.8]", "value": early_exit},
        {"metric": "Ours-E accuracy (%)", "value": 100 * best_energy.accuracy},
    ]
    summary = "\n".join(
        ["Section VI-D reproduction (VGG19 generalisation)", format_table(rows)]
    )
    save_table("vgg19_generalization", summary)

    assert energy_gain > 3.0
    assert speedup > 3.0
    assert early_exit > 0.6
    # Dynamic VGG19 keeps (or improves on) the pretrained accuracy.
    assert best_energy.accuracy > 0.80
