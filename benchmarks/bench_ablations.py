"""Ablation benches for the design choices called out in DESIGN.md.

Four ablations, each isolating one component of the framework on Visformer:

* **channel reordering** (Sect. V-D) -- importance-ordered vs original-order
  channel assignment to stages,
* **concurrent vs sequential execution** (Sect. III-B) -- the Eq. 13 makespan
  against the sum of stage latencies a pipeline-style deployment would pay,
* **DVFS** -- sweeping a fixed deployment across the DLA operating points to
  expose the latency/energy effect of the scaling factor ``theta``,
* **surrogate vs oracle** -- evaluating the same configurations with the
  learned GBDT predictor instead of the analytical oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import MapAndConquer
from repro.core.report import format_table
from repro.nn.models import visformer
from repro.search.evaluation import ConfigEvaluator
from repro.soc.platform import jetson_agx_xavier

ACCURACY_GATE = 0.02


def test_ablation_channel_reordering(benchmark, visformer_scenarios, save_table):
    """Reordering assigns important channels to early stages (Sect. V-D)."""
    scenario = visformer_scenarios["none"]
    network = visformer()
    platform = jetson_agx_xavier()
    ordered_eval = ConfigEvaluator(network, platform, reorder_channels=True, seed=0)
    unordered_eval = ConfigEvaluator(network, platform, reorder_channels=False, seed=0)
    configs = [item.config for item in scenario.result.pareto]

    def evaluate_both():
        ordered = [ordered_eval.evaluate(config) for config in configs]
        unordered = [unordered_eval.evaluate(config) for config in configs]
        return ordered, unordered

    ordered, unordered = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    ordered_first_exit = float(
        np.mean([e.inference.exit_statistics.stage_accuracies[0] for e in ordered])
    )
    unordered_first_exit = float(
        np.mean([e.inference.exit_statistics.stage_accuracies[0] for e in unordered])
    )
    ordered_energy = float(np.mean([e.energy_mj for e in ordered]))
    unordered_energy = float(np.mean([e.energy_mj for e in unordered]))
    rows = [
        {"variant": "with reordering", "first_exit_acc_%": 100 * ordered_first_exit,
         "avg_energy_mJ": ordered_energy},
        {"variant": "without reordering", "first_exit_acc_%": 100 * unordered_first_exit,
         "avg_energy_mJ": unordered_energy},
    ]
    save_table(
        "ablation_reordering",
        "Ablation: channel reordering (Visformer Pareto configs)\n" + format_table(rows),
    )
    # Reordering strengthens the first exit, which is what lets more samples
    # terminate early and saves energy on average.
    assert ordered_first_exit >= unordered_first_exit
    assert ordered_energy <= unordered_energy * 1.05


def test_ablation_concurrent_vs_sequential(benchmark, visformer_scenarios, save_table):
    """Concurrent stages (Eq. 13) vs a sequential pipeline over the same CUs."""
    scenario = visformer_scenarios["none"]

    def collect():
        rows = []
        for item in scenario.result.pareto:
            concurrent = item.worst_case_latency_ms
            sequential = sum(stage.latency_ms for stage in item.profile.stages)
            rows.append((concurrent, sequential))
        return rows

    pairs = benchmark.pedantic(collect, rounds=3, iterations=1)
    concurrent_mean = float(np.mean([c for c, _ in pairs]))
    sequential_mean = float(np.mean([s for _, s in pairs]))
    save_table(
        "ablation_concurrency",
        format_table(
            [
                {"model": "concurrent (Eq. 13)", "avg_worst_case_latency_ms": concurrent_mean},
                {"model": "sequential pipeline", "avg_worst_case_latency_ms": sequential_mean},
            ]
        ),
    )
    # Concurrency is never slower than running the stages back to back and is
    # substantially faster on average.
    assert all(concurrent <= sequential + 1e-9 for concurrent, sequential in pairs)
    assert concurrent_mean < 0.8 * sequential_mean


def test_ablation_dvfs(benchmark, save_table):
    """Characterise the latency/energy effect of the DVFS scaling factor.

    A fixed partitioned deployment (uniform split, GPU + 2 DLAs) is swept
    across the DLA DVFS operating points; latency must increase monotonically
    as the clocks drop (the 1/theta scaling of the cost model) while the
    energy response is non-trivial -- static power favours racing to idle,
    dynamic power favours slowing down -- which is why theta belongs in the
    search space at all.
    """
    network = visformer()
    platform = jetson_agx_xavier()
    framework = MapAndConquer(network, platform, seed=0)
    base = framework.sample(seed=0)
    gpu_last = platform.unit("gpu").num_dvfs_points() - 1
    dla_points = platform.unit("dla0").num_dvfs_points()

    def sweep():
        rows = []
        for index in range(dla_points):
            config = type(base)(
                partition=base.partition,
                indicator=base.indicator,
                unit_names=("gpu", "dla0", "dla1"),
                dvfs_indices=(gpu_last, index, index),
            )
            evaluated = framework.evaluate(config)
            rows.append(
                {
                    "dla_dvfs_index": index,
                    "dla_scale": evaluated.profile.stages[1].dvfs_scale,
                    "worst_case_latency_ms": evaluated.worst_case_latency_ms,
                    "worst_case_energy_mJ": evaluated.worst_case_energy_mj,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "ablation_dvfs",
        "Ablation: DLA DVFS sweep on a fixed partitioned deployment\n" + format_table(rows),
    )
    latencies = [row["worst_case_latency_ms"] for row in rows]
    energies = [row["worst_case_energy_mJ"] for row in rows]
    # Raising the DLA clock (higher index) monotonically reduces latency.
    assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))
    # And the energy response is non-trivial (worth searching over).
    assert max(energies) / min(energies) > 1.02


def test_ablation_surrogate_vs_oracle(benchmark, save_table):
    """Evaluating the same configurations with the GBDT surrogate vs the oracle."""
    network = visformer()
    platform = jetson_agx_xavier()
    oracle_framework = MapAndConquer(network, platform, seed=0)
    surrogate_framework = MapAndConquer(
        network, platform, use_surrogate=True, surrogate_samples=600, seed=0
    )
    configs = [oracle_framework.sample(seed=seed) for seed in range(12)]

    def evaluate_both():
        oracle = [oracle_framework.evaluate(config) for config in configs]
        surrogate = [surrogate_framework.evaluate(config) for config in configs]
        return oracle, surrogate

    oracle, surrogate = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    latency_ratio = np.array([s.latency_ms / o.latency_ms for o, s in zip(oracle, surrogate)])
    energy_ratio = np.array([s.energy_mj / o.energy_mj for o, s in zip(oracle, surrogate)])
    rank_agreement = float(
        np.corrcoef(
            np.argsort(np.argsort([o.energy_mj for o in oracle])),
            np.argsort(np.argsort([s.energy_mj for s in surrogate])),
        )[0, 1]
    )
    save_table(
        "ablation_surrogate",
        format_table(
            [
                {"metric": "median latency ratio (surrogate/oracle)",
                 "value": float(np.median(latency_ratio))},
                {"metric": "median energy ratio (surrogate/oracle)",
                 "value": float(np.median(energy_ratio))},
                {"metric": "energy rank correlation", "value": rank_agreement},
            ],
            float_format="{:.3f}",
        ),
    )
    # The surrogate tracks the oracle closely enough to steer the search: the
    # medians stay within ~40 % and the ranking of candidates is preserved.
    assert 0.6 < float(np.median(latency_ratio)) < 1.6
    assert 0.6 < float(np.median(energy_ratio)) < 1.6
    assert rank_agreement > 0.6
