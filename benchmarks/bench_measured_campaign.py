"""Measured campaigns at grid scale: the shared cache pays for the simulator.

The tentpole claim of the measured-campaign layer, pinned as an assertion: a
campaign whose searches run under ``measured_serving_objectives`` shares one
:class:`~repro.serving.ServingResultCache` across every cell *and* the serving
replays afterwards — and that sharing avoids at least **30 %** of the total
simulator invocations compared to per-cell-isolated caches (each cell warming
its own private cache from cold).  The sharing is structural, not
coincidental: :meth:`WorkloadFamily.peak_member` replays each member under the
same ``member_traffic_seed`` stream a serving campaign uses, so when the
replay budget matches, every front candidate the serving sweep ranks was
already simulated — and content-keyed — during the search that produced it.

Also emitted into ``BENCH_measured_campaign.json`` via :mod:`perf_trajectory`:

* ``cells_per_min`` — campaign cells (search + serving) per minute of the
  shared-cache measured run;
* ``measured_vs_proxy_wallclock_x`` — measured campaign wall clock over the
  same-budget proxy campaign's (the price of the simulator in the loop);
* the deterministic per-cell lookup/unique aggregates the campaign summary
  prints.

``REPRO_MEASURED_CAMPAIGN_SMOKE=1`` shrinks the search budget for the CI
smoke step without changing any assertion.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_measured_campaign.py -q
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from perf_trajectory import emit

import repro.campaign.runner as runner_module
import repro.campaign.serving_runner as serving_runner_module
import repro.serving.bridge as bridge
from repro.campaign import run_serving_campaign
from repro.nn.models import resnet20
from repro.search import MeasuredObjectives
from repro.serving.families import SteadyPoissonFamily

SMOKE = os.environ.get("REPRO_MEASURED_CAMPAIGN_SMOKE", "") == "1"

PLATFORMS = ["jetson-agx-xavier", "mobile-big-little"]
FAMILY = SteadyPoissonFamily(rate_rps=40.0)
SEED = 3
#: One replay budget for search-time measurement *and* the serving sweep —
#: the alignment that lets the serving replays reuse search-time entries.
DURATION_MS = 400.0
MEMBERS = 1
GENERATIONS = 2 if SMOKE else 3
POPULATION = 6 if SMOKE else 10

MEASURED = MeasuredObjectives(family=FAMILY, duration_ms=DURATION_MS, members=MEMBERS)
BUDGET = dict(
    members_per_family=MEMBERS,
    duration_ms=DURATION_MS,
    generations=GENERATIONS,
    population_size=POPULATION,
    seed=SEED,
)

#: The headline floor: cross-cell sharing must avoid at least this fraction
#: of the simulator invocations a per-cell-isolated baseline pays.
AVOIDED_FLOOR = 0.30


@contextmanager
def counting_simulators():
    """Count every ``TrafficSimulator`` the bridge constructs (= one replay)."""
    counter = {"n": 0}
    real = bridge.TrafficSimulator

    class Counting(real):
        def __init__(self, *args, **kwargs):
            counter["n"] += 1
            super().__init__(*args, **kwargs)

    bridge.TrafficSimulator = Counting
    try:
        yield counter
    finally:
        bridge.TrafficSimulator = real


@contextmanager
def isolated_cell_caches():
    """Sever the shared-cache wiring: every cell warms its own cache from cold.

    Dropping the live handle (and with it the worker merge-back) makes each
    search and serving cell build a private in-memory
    :class:`~repro.serving.result_cache.ServingResultCache` — the per-cell
    isolated baseline the ISSUE's headline compares against.  Results are
    byte-identical either way; only the simulator invocation count differs.
    """
    real_cell = runner_module._run_cell
    real_serving = serving_runner_module._run_serving_cell

    def isolated_cell(task, cache=None, framework=None, **kwargs):
        return real_cell(task, cache, framework)

    def isolated_serving(task, serving_cache=None):
        return real_serving(task)

    runner_module._run_cell = isolated_cell
    serving_runner_module._run_serving_cell = isolated_serving
    try:
        yield
    finally:
        runner_module._run_cell = real_cell
        serving_runner_module._run_serving_cell = real_serving


def _measured_campaign():
    return run_serving_campaign(
        resnet20(),
        PLATFORMS,
        families=[FAMILY],
        measured_objectives=MEASURED,
        **BUDGET,
    )


def test_shared_cache_beats_isolated_caches_by_the_floor(save_table):
    with counting_simulators() as shared_count:
        start = time.perf_counter()
        shared = _measured_campaign()
        shared_s = time.perf_counter() - start
    shared_sims = shared_count["n"]

    with counting_simulators() as isolated_count, isolated_cell_caches():
        isolated = _measured_campaign()
    isolated_sims = isolated_count["n"]

    # The cache only removes duplicate simulator invocations — the campaigns
    # themselves must be byte-identical.
    from repro.core.report import traffic_ranking_summary

    assert traffic_ranking_summary(shared) == traffic_ranking_summary(isolated)

    # Headline: strictly fewer simulations, and at least the floor avoided.
    assert shared_sims < isolated_sims
    avoided_fraction = 1.0 - shared_sims / isolated_sims
    assert avoided_fraction >= AVOIDED_FLOOR, (
        f"shared cache avoided only {avoided_fraction:.1%} of "
        f"{isolated_sims} isolated simulator calls (floor {AVOIDED_FLOOR:.0%})"
    )

    # Same budget through the proxy objectives: the wall-clock price of
    # putting the simulator in the loop.
    start = time.perf_counter()
    run_serving_campaign(resnet20(), PLATFORMS, families=[FAMILY], **BUDGET)
    proxy_s = time.perf_counter() - start

    stats = [
        cell.measured_cache_stats
        for cell in shared.campaign.cells
        if cell.measured_cache_stats is not None
    ]
    lookups = sum(item.lookups for item in stats)
    unique = sum(item.unique for item in stats)
    cells = len(shared.campaign.cells) + len(shared.cells)

    metrics = {
        "smoke": SMOKE,
        "platforms": len(PLATFORMS),
        "families": 1,
        "generations": GENERATIONS,
        "population_size": POPULATION,
        "cells": cells,
        "cells_per_min": round(cells / (shared_s / 60.0), 1),
        "shared_simulator_calls": shared_sims,
        "isolated_simulator_calls": isolated_sims,
        "avoided_fraction": round(avoided_fraction, 3),
        "search_lookups": lookups,
        "search_unique_replays": unique,
        "measured_vs_proxy_wallclock_x": round(shared_s / proxy_s, 2),
    }
    emit("measured_campaign", metrics)

    lines = ["measured campaign: shared vs per-cell-isolated serving cache", ""]
    lines += [f"{key}: {value}" for key, value in sorted(metrics.items())]
    save_table("measured_campaign_cache", "\n".join(lines) + "\n")
