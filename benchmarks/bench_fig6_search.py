"""Figure 6 -- search results under the three feature-reuse constraints.

The paper runs its evolutionary search three times for Visformer: with no
feature-map-reuse constraint, with at most 75 % reuse, and with at most 50 %
reuse, and plots the explored (latency, energy, accuracy) points.  The key
quantitative take-aways are an up-to ~2.1x energy gain over GPU-only at
<= 30 ms latency, an up-to ~1.7x latency speedup over DLA-only at comparable
energy, and a noticeable accuracy drop (~6 %) once reuse is capped at 50 %.

This bench reruns the three searches (shared session fixtures), reports the
Pareto front of each, and checks those relationships.
"""

from __future__ import annotations

from repro.core.report import format_table

ACCURACY_GATE = 0.02


def _scenario_rows(name, scenario, gpu, dla):
    framework = scenario.framework
    best_energy = framework.select_energy_oriented(
        scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
    )
    best_latency = framework.select_latency_oriented(
        scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
    )
    best_accuracy = max(item.accuracy for item in scenario.result.pareto)
    return {
        "scenario": name,
        "pareto_size": len(scenario.result.pareto),
        "evaluations": scenario.result.num_evaluations,
        "best_acc_%": 100 * best_accuracy,
        "energy_gain_vs_gpu_x": gpu.energy_mj / best_energy.energy_mj,
        "speedup_vs_dla_x": dla.latency_ms / best_latency.latency_ms,
        "best_energy_mJ": best_energy.energy_mj,
        "best_latency_ms": best_latency.latency_ms,
    }


def test_fig6_constrained_searches(benchmark, visformer_scenarios, save_table):
    framework = visformer_scenarios["none"].framework
    gpu = framework.baseline("gpu")
    dla = framework.baseline("dla0")

    def summarise():
        return [
            _scenario_rows("no constraint", visformer_scenarios["none"], gpu, dla),
            _scenario_rows("<= 75% reuse", visformer_scenarios["75"], gpu, dla),
            _scenario_rows("<= 50% reuse", visformer_scenarios["50"], gpu, dla),
        ]

    rows = benchmark.pedantic(summarise, rounds=3, iterations=1)
    summary = "\n".join(
        [
            "Figure 6 reproduction (Visformer, three reuse-constraint scenarios)",
            format_table(rows),
            "",
            f"GPU-only reference: {gpu.energy_mj:.1f} mJ / {gpu.latency_ms:.1f} ms",
            f"DLA-only reference: {dla.energy_mj:.1f} mJ / {dla.latency_ms:.1f} ms",
            "paper: >= 2.1x energy gain vs GPU-only, >= 1.7x speedup vs DLA-only,",
            "       ~6 % accuracy drop under the 50 % reuse constraint",
        ]
    )
    save_table("fig6_search", summary)

    unconstrained, r75, r50 = rows
    # Headline claims: the unconstrained search beats the paper's reported
    # factors (our exit model is idealised, see EXPERIMENTS.md).
    assert unconstrained["energy_gain_vs_gpu_x"] >= 2.1
    assert unconstrained["speedup_vs_dla_x"] >= 1.7
    # Constrained searches still find good trade-offs.
    assert r75["energy_gain_vs_gpu_x"] > 1.5
    assert r50["energy_gain_vs_gpu_x"] > 1.5
    # Tightening the reuse budget never helps accuracy.
    assert r50["best_acc_%"] <= unconstrained["best_acc_%"] + 1e-6
    # All searches respect their reuse caps.
    for key, cap in (("75", 0.75), ("50", 0.50)):
        for item in visformer_scenarios[key].result.feasible:
            assert item.reuse_fraction <= cap + 1e-9
