"""Table II -- performance breakdown of the Pareto-optimal models.

For both Visformer and VGG19 the paper reports, per feature-reuse scenario
(none / 75 % / 50 %), the most latency-oriented ("Ours-L") and the most
energy-oriented ("Ours-E") Pareto models next to the GPU-only and DLA-only
baselines, with top-1 accuracy, average energy, average latency and the
feature-map reuse percentage.  This bench regenerates the same rows.
"""

from __future__ import annotations

from repro.core.report import format_table, table2_row

ACCURACY_GATE = 0.02


def _model_rows(scenarios, framework):
    gpu = framework.baseline("gpu")
    dla = framework.baseline("dla0")
    rows = [
        table2_row("None", "GPU", gpu, use_worst_case=True),
        table2_row("None", "DLA", dla, use_worst_case=True),
    ]
    labels = {"none": "No Fmap Constr.", "75": "75% Fmap Constr.", "50": "50% Fmap Constr."}
    for key, label in labels.items():
        scenario = scenarios[key]
        ours_l = scenario.framework.select_latency_oriented(
            scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
        )
        ours_e = scenario.framework.select_energy_oriented(
            scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
        )
        rows.append(table2_row(label, "Ours-L", ours_l))
        rows.append(table2_row(label, "Ours-E", ours_e))
    return rows, gpu, dla


def test_table2_visformer(benchmark, visformer_scenarios, visformer_framework, save_table):
    def build():
        return _model_rows(visformer_scenarios, visformer_framework)

    rows, gpu, dla = benchmark.pedantic(build, rounds=3, iterations=1)
    summary = "\n".join(
        ["Table II reproduction -- Visformer (ViT-based architecture)", format_table(rows)]
    )
    save_table("table2_visformer", summary)

    by_label = {(r["Opt. Strategy"], r["NN Implement."]): r for r in rows}
    gpu_row = by_label[("None", "GPU")]
    dla_row = by_label[("None", "DLA")]
    # Baseline shape (Table II): GPU fast/hungry, DLA slow/frugal, both at
    # the pretrained 88.09 % accuracy.
    assert gpu_row["Avg. Lat. (ms)"] < dla_row["Avg. Lat. (ms)"]
    assert dla_row["Avg. Enrg. (mJ)"] < gpu_row["Avg. Enrg. (mJ)"]
    assert abs(gpu_row["TOP-1 Acc (%)"] - 88.09) < 0.1
    # Ours-E always consumes no more energy than Ours-L within a scenario.
    for label in ("No Fmap Constr.", "75% Fmap Constr.", "50% Fmap Constr."):
        ours_l = by_label[(label, "Ours-L")]
        ours_e = by_label[(label, "Ours-E")]
        assert ours_e["Avg. Enrg. (mJ)"] <= ours_l["Avg. Enrg. (mJ)"] + 1e-9
        assert ours_l["Avg. Lat. (ms)"] <= ours_e["Avg. Lat. (ms)"] + 1e-9
        # Dynamic models keep accuracy in the Table II band (>= 82 %).
        assert ours_e["TOP-1 Acc (%)"] > 80.0
        # Energy improves on the GPU baseline, latency on the DLA baseline.
        assert ours_e["Avg. Enrg. (mJ)"] < gpu_row["Avg. Enrg. (mJ)"]
        assert ours_l["Avg. Lat. (ms)"] < dla_row["Avg. Lat. (ms)"]
    # Reuse-capped scenarios respect the caps of their columns.
    assert by_label[("50% Fmap Constr.", "Ours-E")]["Fmap reuse (%)"] <= 50.0 + 1e-6
    assert by_label[("75% Fmap Constr.", "Ours-E")]["Fmap reuse (%)"] <= 75.0 + 1e-6


def test_table2_vgg19(benchmark, vgg19_scenarios, vgg19_framework, save_table):
    def build():
        return _model_rows(vgg19_scenarios, vgg19_framework)

    rows, gpu, dla = benchmark.pedantic(build, rounds=1, iterations=1)
    summary = "\n".join(
        ["Table II reproduction -- VGG19 (CNN-based architecture)", format_table(rows)]
    )
    save_table("table2_vgg19", summary)

    by_label = {(r["Opt. Strategy"], r["NN Implement."]): r for r in rows}
    gpu_row = by_label[("None", "GPU")]
    dla_row = by_label[("None", "DLA")]
    assert abs(gpu_row["TOP-1 Acc (%)"] - 80.55) < 0.1
    assert gpu_row["Avg. Enrg. (mJ)"] > 2 * dla_row["Avg. Enrg. (mJ)"]
    for label in ("No Fmap Constr.", "75% Fmap Constr.", "50% Fmap Constr."):
        ours_e = by_label[(label, "Ours-E")]
        ours_l = by_label[(label, "Ours-L")]
        # Table II: VGG19 dynamic variants stay in the 82-85 % band; under
        # the hard 50 % reuse cap our analytical accuracy model concedes a
        # little more, so the gate here is the pretrained baseline minus the
        # 2 % selection tolerance.
        assert ours_e["TOP-1 Acc (%)"] > 78.5
        assert ours_e["Avg. Enrg. (mJ)"] < gpu_row["Avg. Enrg. (mJ)"] / 2
        assert ours_l["Avg. Lat. (ms)"] < dla_row["Avg. Lat. (ms)"] / 2
    # Without a reuse cap the dynamic VGG19 matches or beats its baseline.
    assert by_label[("No Fmap Constr.", "Ours-E")]["TOP-1 Acc (%)"] > 80.0
