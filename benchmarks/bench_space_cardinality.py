"""Section V-A -- search-space cardinality and sampling throughput.

The paper illustrates the size of the mapping space with a single Visformer
layer: 8 partitioning ratios per stage, M = 3 stages and ~50 joint DVFS
settings give O(1.5e5) choices for one layer alone, which motivates the
evolutionary search.  This bench recomputes that figure for the modelled
Xavier platform (whose DVFS tables give 360 joint settings) and times how
fast the search space can sample valid configurations.
"""

from __future__ import annotations

import math

from repro.core.report import format_table


def test_space_cardinality_and_sampling(benchmark, visformer_framework, save_table):
    space = visformer_framework.space

    def sample_batch():
        return space.population(200, seed=0)

    population = benchmark.pedantic(sample_batch, rounds=3, iterations=1)
    assert len(population) == 200

    per_layer = space.per_layer_cardinality()
    rows = [
        {
            "quantity": "partition choices per layer (8^M)",
            "value": f"{len(space.ratio_choices) ** space.num_stages:,}",
        },
        {
            "quantity": "stage-to-CU assignments (M!)",
            "value": f"{space.mapping_cardinality():,}",
        },
        {
            "quantity": "joint DVFS settings",
            "value": f"{space.dvfs_cardinality():,}",
        },
        {
            "quantity": "per-layer cardinality (paper: O(1.5e5))",
            "value": f"{per_layer:,}",
        },
        {
            "quantity": "full joint space (upper bound)",
            "value": f"{space.total_cardinality():.2e}",
        },
    ]
    summary = "\n".join(
        ["Section V-A reproduction (search-space cardinality)", format_table(rows)]
    )
    save_table("space_cardinality", summary)

    # Same structure as the paper's estimate: ratios^M x M! x |DVFS|.
    expected = len(space.ratio_choices) ** space.num_stages
    expected *= math.factorial(space.num_stages)
    expected *= space.dvfs_cardinality()
    assert per_layer == expected
    # Order of magnitude of the paper's O(1.5e5) example (our DVFS table has
    # 360 joint settings instead of 50, hence the factor ~7 difference).
    assert 1e5 < per_layer < 1e7
    assert space.total_cardinality() > 1e30
