"""Measured serving in the loop: policies and simulator-backed objectives.

Two headline claims of the measured-serving layer, pinned as assertions:

1. **The DVFS governor can beat every static front point.**  Under the
   ``energy_per_request_mj`` ranking the searched winner is energy-frugal —
   its DVFS scales sit below 1.0 — and the linear power model makes
   race-to-idle optimal, so downclocking *never* pays per request.  In a
   saturating regime (steady ~130 req/s, just above the capacity of every
   static front point) the governor upclocks the frugal winner to full
   frequency under queue pressure, reaching a capacity/energy point that is
   on *no* searched front: it keeps up where every static deployment
   saturates.  Asserted: on ``mobile-big-little`` the governor's
   served-p99-per-joule beats the *best* static front point (not just the
   ranked winner); on ``jetson-agx-xavier`` — where the fronts have
   headroom — it does not.

2. **Measured objectives pick differently, and better.**  Swapping the
   M/D/1 ``expected_wait_ms`` proxy for the simulator-backed
   ``measured_wait_ms`` objective (``measured_serving_objectives``) changes
   the NSGA-II pick in a near-saturation steady regime, and the measured
   pick serves a strictly lower p99 on a long replay.  The
   :class:`~repro.serving.ServingResultCache` keeps the measured search
   within 3x the proxy search's wall clock at equal budget (asserted).

Emits Spearman rank correlation between proxy and measured waits over the
front plus the pick-agreement rate across regimes into
``BENCH_policy.json`` via :mod:`perf_trajectory`.

``REPRO_POLICY_SMOKE=1`` drops the agreeing control regime for the CI
smoke step without changing any assertion.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_policy_campaigns.py -q
"""

from __future__ import annotations

import os
import time

from perf_trajectory import emit, load

from repro.campaign import run_serving_campaign
from repro.core.framework import MapAndConquer
from repro.engine.surrogate import spearman_rank_correlation
from repro.nn.models import resnet20, visformer
from repro.search.objectives import measured_serving_objectives, serving_objectives
from repro.search.pareto import select_measured_serving, select_serving_oriented
from repro.serving.bridge import rank_under_traffic
from repro.serving.families import (
    OnOffBurstFamily,
    SteadyPoissonFamily,
    member_traffic_seed,
)
from repro.soc.presets import get_platform
from repro.utils import geometric_mean

SMOKE = os.environ.get("REPRO_POLICY_SMOKE", "") == "1"

#: Steady arrivals just above every static front point's bottleneck capacity
#: on the little board — the regime where only an upclocking governor keeps up.
SATURATING_FAMILY = SteadyPoissonFamily(
    rate_rps=130.0, jitter=0.03, name="steady-saturating"
)
GOVERNOR_SEED = 3
GOVERNOR_DURATION_MS = 1500.0
GOVERNOR_MEMBERS = 2

#: Near-saturation steady traffic where the M/D/1 steady-state proxy and the
#: finite-horizon simulator rank the front differently (divergent regime),
#: plus a burst regime with headroom where they agree (control regime).
DIVERGENT_REGIME = (
    SteadyPoissonFamily(rate_rps=90.0, jitter=0.1),
    "mobile-big-little",
)
CONTROL_REGIME = (
    OnOffBurstFamily(
        burst_rps=110.0, idle_rps=5.0, burst_ms=400.0, idle_ms=600.0, jitter=0.2
    ),
    "jetson-agx-xavier",
)
MEASURED_SEED = 0
MEASURED_DURATION_MS = 400.0
REPLAY_DURATION_MS = 3000.0
GENERATIONS = 3
POPULATION = 8


def _best_static_front_score(result, platform_name: str, family) -> float:
    """Best geometric-mean served-p99-per-joule over *all* static front points.

    The campaign's static outcome only covers the per-member ranked winner;
    the governor claim is stronger — better than every point the search
    found — so re-rank the whole front under each family member and score
    every candidate.
    """
    scenario = result.campaign.scenario_names[0]
    front = result.campaign.front(platform_name, scenario)
    platform = get_platform(platform_name)
    per_candidate: dict = {}
    for index, process in enumerate(
        family.expand(GOVERNOR_SEED, GOVERNOR_MEMBERS)
    ):
        seed = member_traffic_seed(GOVERNOR_SEED, family.name, index)
        for ranking in rank_under_traffic(
            list(front),
            platform,
            process,
            duration_ms=GOVERNOR_DURATION_MS,
            metric="energy_per_request_mj",
            seed=seed,
        ):
            score = (
                1000.0 / ranking.metrics.energy_per_request_mj
            ) / ranking.metrics.p99_latency_ms
            per_candidate.setdefault(ranking.deployment.name, []).append(score)
    return max(geometric_mean(scores) for scores in per_candidate.values())


def test_governor_beats_every_static_front_point_only_when_saturated(save_table):
    result = run_serving_campaign(
        resnet20(),
        ["jetson-agx-xavier", "mobile-big-little"],
        families=[SATURATING_FAMILY],
        members_per_family=GOVERNOR_MEMBERS,
        duration_ms=GOVERNOR_DURATION_MS,
        generations=2,
        population_size=6,
        seed=GOVERNOR_SEED,
        metric="energy_per_request_mj",
        policies=("static", "switcher", "dvfs-governor"),
    )

    scores = {}
    for platform_name in result.platform_names:
        cell = result.cell(platform_name, SATURATING_FAMILY.name)
        scores[platform_name] = {
            "best_static_front": _best_static_front_score(
                result, platform_name, SATURATING_FAMILY
            ),
            "governor": cell.policy_score("dvfs-governor"),
            "switcher": cell.policy_score("switcher"),
        }

    little = scores["mobile-big-little"]
    xavier = scores["jetson-agx-xavier"]

    assert little["governor"] > little["best_static_front"], (
        f"in the saturating regime the DVFS governor must beat every static "
        f"front point on mobile-big-little: governor "
        f"{little['governor']:.4f} vs best static {little['best_static_front']:.4f} "
        f"served-p99-per-joule"
    )
    assert xavier["governor"] < xavier["best_static_front"], (
        f"with front headroom the governor must NOT beat the best static "
        f"point on jetson-agx-xavier: governor {xavier['governor']:.4f} vs "
        f"best static {xavier['best_static_front']:.4f} served-p99-per-joule"
    )

    report = "\n".join(
        [
            f"saturating family: {SATURATING_FAMILY.rate_rps:.0f} rps steady "
            f"Poisson, metric=energy_per_request_mj",
            *(
                f"{name}: best static front point "
                f"{values['best_static_front']:.4f}, governor "
                f"{values['governor']:.4f}, switcher {values['switcher']:.4f} "
                f"(served-p99-per-joule)"
                for name, values in sorted(scores.items())
            ),
            "governor beats every static front point on mobile-big-little "
            "and loses on jetson-agx-xavier",
        ]
    )
    print(report)
    save_table("policy_campaigns_governor", report)

    trajectory = load("policy") or {}
    trajectory["governor"] = {
        "saturating_rate_rps": SATURATING_FAMILY.rate_rps,
        "governor_score_little": round(little["governor"], 4),
        "best_static_score_little": round(little["best_static_front"], 4),
        "governor_score_xavier": round(xavier["governor"], 4),
        "best_static_score_xavier": round(xavier["best_static_front"], 4),
        "governor_beats_all_little": little["governor"]
        > little["best_static_front"],
        "governor_beats_all_xavier": xavier["governor"]
        > xavier["best_static_front"],
        "smoke": SMOKE,
    }
    emit("policy", trajectory)


def _run_regime(family, platform_name: str):
    """Proxy and measured searches at equal budget on one regime."""
    platform = get_platform(platform_name)
    framework = MapAndConquer(visformer(), platform, seed=MEASURED_SEED)

    started = time.perf_counter()
    proxy = framework.search(
        strategy="nsga2",
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=MEASURED_SEED,
        objectives=serving_objectives(family),
    )
    proxy_seconds = time.perf_counter() - started

    objectives = measured_serving_objectives(
        family, platform, duration_ms=MEASURED_DURATION_MS, seed=MEASURED_SEED
    )
    measured_spec = objectives.specs[-1]
    cache = measured_spec.extractor.cache
    started = time.perf_counter()
    measured = framework.search(
        strategy="nsga2",
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=MEASURED_SEED,
        objectives=objectives,
    )
    measured_seconds = time.perf_counter() - started

    proxy_pick = select_serving_oriented(list(proxy.pareto), family)
    measured_pick = select_measured_serving(
        list(measured.pareto),
        platform,
        family,
        duration_ms=MEASURED_DURATION_MS,
        seed=MEASURED_SEED,
        cache=cache,
    )

    # Rank agreement between the proxy and the simulator over the measured
    # front: the M/D/1 wait vs the measured mean queueing wait per member.
    proxy_extractor = serving_objectives(family).specs[-1].extractor
    front = list(measured.pareto)
    proxy_waits = [proxy_extractor(item) for item in front]
    measured_waits = [measured_spec.extractor(item) for item in front]
    spearman = spearman_rank_correlation(proxy_waits, measured_waits)

    member = family.expand(seed=MEASURED_SEED, n=1)[0]
    proxy_metrics = framework.simulate_traffic(
        proxy_pick, member, duration_ms=REPLAY_DURATION_MS, seed=MEASURED_SEED
    ).metrics()
    measured_metrics = framework.simulate_traffic(
        measured_pick, member, duration_ms=REPLAY_DURATION_MS, seed=MEASURED_SEED
    ).metrics()

    return {
        "family": family.name,
        "platform": platform_name,
        "picks_agree": proxy_pick.config.describe()
        == measured_pick.config.describe(),
        "proxy_pick_p99_ms": proxy_metrics.p99_latency_ms,
        "measured_pick_p99_ms": measured_metrics.p99_latency_ms,
        "spearman": spearman,
        "proxy_seconds": proxy_seconds,
        "measured_seconds": measured_seconds,
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
    }


def test_measured_pick_diverges_from_proxy_and_serves_better(save_table):
    regimes = [DIVERGENT_REGIME] if SMOKE else [DIVERGENT_REGIME, CONTROL_REGIME]
    outcomes = [_run_regime(family, platform) for family, platform in regimes]

    divergent = outcomes[0]
    assert not divergent["picks_agree"], (
        "the measured objective must pick a different front member than the "
        "M/D/1 proxy in the near-saturation steady regime"
    )
    assert (
        divergent["measured_pick_p99_ms"] < divergent["proxy_pick_p99_ms"]
    ), (
        f"the measured pick must serve a strictly lower p99 on the long "
        f"replay: {divergent['measured_pick_p99_ms']:.2f} ms vs "
        f"{divergent['proxy_pick_p99_ms']:.2f} ms"
    )
    ratio = divergent["measured_seconds"] / max(1e-9, divergent["proxy_seconds"])
    assert ratio <= 3.0, (
        f"the serving-result cache must keep the measured search within 3x "
        f"the proxy search at equal budget; got {ratio:.2f}x "
        f"({divergent['cache_hits']} cache hits / "
        f"{divergent['cache_misses']} simulations)"
    )

    agreement_rate = sum(o["picks_agree"] for o in outcomes) / len(outcomes)
    report = "\n".join(
        [
            *(
                f"{o['family']}@{o['platform']}: picks "
                f"{'agree' if o['picks_agree'] else 'DIFFER'}, replayed p99 "
                f"proxy {o['proxy_pick_p99_ms']:.2f} ms vs measured "
                f"{o['measured_pick_p99_ms']:.2f} ms, spearman(proxy wait, "
                f"measured wait) = {o['spearman']:.3f}"
                for o in outcomes
            ),
            f"pick-agreement rate: {agreement_rate:.2f} over {len(outcomes)} "
            f"regime(s)",
            f"measured/proxy wall clock: {ratio:.2f}x "
            f"({divergent['cache_hits']} cache hits, "
            f"{divergent['cache_misses']} simulations)",
        ]
    )
    print(report)
    save_table("policy_campaigns_measured", report)

    trajectory = load("policy") or {}
    trajectory["measured_vs_proxy"] = {
        "regimes": [
            {
                "family": o["family"],
                "platform": o["platform"],
                "picks_agree": o["picks_agree"],
                "proxy_pick_p99_ms": round(o["proxy_pick_p99_ms"], 3),
                "measured_pick_p99_ms": round(o["measured_pick_p99_ms"], 3),
                "spearman_proxy_vs_measured": round(o["spearman"], 4),
            }
            for o in outcomes
        ],
        "pick_agreement_rate": round(agreement_rate, 4),
        "measured_over_proxy_wall_clock_x": round(ratio, 3),
        "cache_hits": divergent["cache_hits"],
        "cache_simulations": divergent["cache_misses"],
        "smoke": SMOKE,
    }
    emit("policy", trajectory)
