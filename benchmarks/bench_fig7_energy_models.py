"""Figure 7 -- energy-oriented Pareto models against the DLA-only baseline.

The paper selects the most energy-oriented model from each of the three
search strategies and compares them with Visformer mapped entirely to the
DLA: the dynamic models reach up to ~1.83x speedup and up to ~14.4 % energy
gain over the DLA, and the right sub-figure correlates feature-map reuse with
accuracy (dynamic mappings need ~40 % less reuse than the static mapping).
"""

from __future__ import annotations

from repro.core.report import format_table

ACCURACY_GATE = 0.02


def test_fig7_energy_oriented_models_vs_dla(benchmark, visformer_scenarios, save_table):
    framework = visformer_scenarios["none"].framework
    dla = framework.baseline("dla0")
    static = framework.static_baseline()

    def build_rows():
        rows = []
        for key, label in (("none", "No constr."), ("75", "75% constr."), ("50", "50% constr.")):
            scenario = visformer_scenarios[key]
            model = scenario.framework.select_energy_oriented(
                scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
            )
            rows.append(
                {
                    "model": f"Ours-E ({label})",
                    "speedup_vs_dla_x": dla.latency_ms / model.latency_ms,
                    "energy_gain_vs_dla_%": 100 * (1 - model.energy_mj / dla.energy_mj),
                    "accuracy_%": 100 * model.accuracy,
                    "fmap_reuse_%": 100 * model.reuse_fraction,
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=3, iterations=1)
    summary = "\n".join(
        [
            "Figure 7 reproduction (energy-oriented models vs DLA-only, Visformer)",
            format_table(rows),
            "",
            f"DLA-only reference : {dla.energy_mj:.1f} mJ / {dla.latency_ms:.1f} ms",
            f"static mapping reuse: {100 * static.reuse_fraction:.0f} %",
            "paper: up to ~1.83x speedup, up to ~14.4 % energy gain vs DLA-only;",
            "       reuse reduction vs static mapping trades against accuracy",
        ]
    )
    save_table("fig7_energy_models", summary)

    # Every energy-oriented model beats the DLA-only mapping on latency ...
    for row in rows:
        assert row["speedup_vs_dla_x"] > 1.5
    # ... and at least matches it on energy (the paper reports up to 14.4 %).
    assert max(row["energy_gain_vs_dla_%"] for row in rows) > 10.0
    # Reuse-vs-accuracy correlation: the dynamic models need less reuse than
    # the static exchange-everything mapping, and capping reuse harder never
    # improves accuracy.
    assert all(row["fmap_reuse_%"] < 100 * static.reuse_fraction for row in rows)
    accuracy_by_scenario = [row["accuracy_%"] for row in rows]
    assert accuracy_by_scenario[2] <= accuracy_by_scenario[0] + 1e-6
