"""Persistent performance trajectory for the benchmark harness.

The tables under ``benchmarks/results/`` are prose for humans; this module
keeps the *numbers* machine-readable across PRs.  Each benchmark area emits
one ``BENCH_<area>.json`` file at the repository root — sorted keys, two-space
indent, trailing newline — so successive commits produce reviewable diffs and
CI can archive the files as artifacts.  A regression then shows up as a diff
against a number the previous run committed, not as a feeling that something
got slower.

Usage from a bench::

    from perf_trajectory import emit

    emit("campaign_surrogate", {"oracle_call_reduction_x": 5.7, ...})

Only JSON-serialisable, seed- or host-determined values belong here; wall
clock timings are fine (they are what the trajectory tracks) but should be
rounded so the files do not churn on noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["REPO_ROOT", "bench_path", "emit", "load"]

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_path(area: str) -> Path:
    """Repo-root path of the trajectory file for one benchmark area."""
    if not area or not all(ch.isalnum() or ch == "_" for ch in area):
        raise ValueError(f"area must be a non-empty [a-zA-Z0-9_]+ slug, got {area!r}")
    return REPO_ROOT / f"BENCH_{area}.json"


def emit(area: str, metrics: Dict[str, Any]) -> Path:
    """Write one area's metrics to ``BENCH_<area>.json`` and return the path."""
    path = bench_path(area)
    path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load(area: str) -> Optional[Dict[str, Any]]:
    """Read one area's last emitted metrics, or ``None`` if never emitted."""
    path = bench_path(area)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
