"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The searches
are the expensive part, so they are run once per (model, reuse-constraint)
scenario in session-scoped fixtures and shared by all benches; each bench
then times its own characteristic computation with ``benchmark.pedantic`` and
writes the regenerated table to ``benchmarks/results/`` so the numbers
survive the run (pytest captures stdout by default).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro.core.framework import MapAndConquer
from repro.nn.models import vgg19, visformer
from repro.search.constraints import SearchConstraints
from repro.search.evolutionary import SearchResult
from repro.soc.platform import jetson_agx_xavier

#: Search budget used by the benches.  The paper runs 200 x 60 evaluations on
#: a GPU cluster; this reduced budget converges on the analytical problem in
#: a few seconds while keeping the same search dynamics.
BENCH_GENERATIONS = 20
BENCH_POPULATION = 24

#: Accuracy gate used when extracting "Ours-L" / "Ours-E" style models (the
#: paper highlights configurations within a 0.5 % accuracy drop; the coarser
#: analytical accuracy model warrants a slightly wider 2 % gate).
ACCURACY_GATE = 0.02

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@dataclass
class Scenario:
    """One search scenario: a framework plus its completed search result."""

    name: str
    framework: MapAndConquer
    result: SearchResult
    reuse_cap: Optional[float]


def _run_scenario(model_builder, reuse_cap: Optional[float], seed: int = 0) -> Scenario:
    framework = MapAndConquer(
        model_builder(),
        jetson_agx_xavier(),
        max_reuse_fraction=reuse_cap,
        seed=seed,
    )
    constraints = SearchConstraints(max_reuse_fraction=reuse_cap)
    result = framework.search(
        generations=BENCH_GENERATIONS,
        population_size=BENCH_POPULATION,
        constraints=constraints,
        seed=seed,
    )
    label = "no-constraint" if reuse_cap is None else f"{int(reuse_cap * 100)}%-reuse"
    return Scenario(
        name=f"{model_builder().name}/{label}",
        framework=framework,
        result=result,
        reuse_cap=reuse_cap,
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the regenerated tables are written to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """Persist a regenerated table to ``benchmarks/results/<name>.txt``."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save


@pytest.fixture(scope="session")
def visformer_scenarios() -> Dict[str, Scenario]:
    """Visformer searches under the three Fig. 6 reuse scenarios."""
    return {
        "none": _run_scenario(visformer, None),
        "75": _run_scenario(visformer, 0.75),
        "50": _run_scenario(visformer, 0.50),
    }


@pytest.fixture(scope="session")
def vgg19_scenarios() -> Dict[str, Scenario]:
    """VGG19 searches under the three Table II reuse scenarios."""
    return {
        "none": _run_scenario(vgg19, None),
        "75": _run_scenario(vgg19, 0.75),
        "50": _run_scenario(vgg19, 0.50),
    }


@pytest.fixture(scope="session")
def visformer_framework(visformer_scenarios) -> MapAndConquer:
    """The unconstrained Visformer framework (shared baselines)."""
    return visformer_scenarios["none"].framework


@pytest.fixture(scope="session")
def vgg19_framework(vgg19_scenarios) -> MapAndConquer:
    """The unconstrained VGG19 framework (shared baselines)."""
    return vgg19_scenarios["none"].framework
