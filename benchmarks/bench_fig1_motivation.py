"""Figure 1 -- motivational comparison of mapping strategies for Visformer.

Regenerates the left sub-figure (energy and latency of GPU-only, DLA-only,
static distributed mapping and the dynamic Map-Conquer mapping on the AGX
Xavier) and the right sub-figure (feature-map reuse of the dynamic mapping
relative to the static one, with the associated accuracy delta).

Paper reference points (Visformer / CIFAR-100):
  GPU-only   ~197 mJ / ~15 ms        DLA-only ~54 mJ / ~69 ms
  static mapping improves each single-CU deficiency
  dynamic mapping dominates DLA-only on both metrics and needs ~40 % less
  feature-map reuse than the static mapping at a ~0.5 % accuracy cost.
"""

from __future__ import annotations

from repro.core.report import format_table

#: Accuracy gate used when extracting the dynamic model (see conftest).
ACCURACY_GATE = 0.02


def test_fig1_mapping_strategy_comparison(benchmark, visformer_scenarios, save_table):
    scenario = visformer_scenarios["none"]
    framework = scenario.framework

    gpu = framework.baseline("gpu")
    dla = framework.baseline("dla0")
    static = framework.static_baseline()

    def pick_dynamic():
        return framework.select_energy_oriented(
            scenario.result.pareto, max_accuracy_drop=ACCURACY_GATE
        )

    dynamic = benchmark.pedantic(pick_dynamic, rounds=3, iterations=1)

    rows = [
        {
            "strategy": "GPU-Only",
            "energy_mJ": gpu.energy_mj,
            "latency_ms": gpu.latency_ms,
            "accuracy_%": 100 * gpu.accuracy,
            "fmap_reuse_%": 0.0,
        },
        {
            "strategy": "DLA-Only",
            "energy_mJ": dla.energy_mj,
            "latency_ms": dla.latency_ms,
            "accuracy_%": 100 * dla.accuracy,
            "fmap_reuse_%": 0.0,
        },
        {
            "strategy": "Static mapping",
            "energy_mJ": static.worst_case_energy_mj,
            "latency_ms": static.worst_case_latency_ms,
            "accuracy_%": 100 * static.accuracy,
            "fmap_reuse_%": 100 * static.reuse_fraction,
        },
        {
            "strategy": "Map-Conquer (dynamic)",
            "energy_mJ": dynamic.energy_mj,
            "latency_ms": dynamic.latency_ms,
            "accuracy_%": 100 * dynamic.accuracy,
            "fmap_reuse_%": 100 * dynamic.reuse_fraction,
        },
    ]
    table = format_table(rows)
    summary = "\n".join(
        [
            "Figure 1 reproduction (Visformer on AGX Xavier model)",
            table,
            "",
            f"dynamic vs GPU-only energy gain : {gpu.energy_mj / dynamic.energy_mj:.2f}x",
            f"dynamic vs DLA-only speedup     : {dla.latency_ms / dynamic.latency_ms:.2f}x",
            f"dynamic vs static fmap reuse    : "
            f"{dynamic.reuse_fraction / max(static.reuse_fraction, 1e-9):.2f}x "
            f"(accuracy delta {100 * (dynamic.accuracy - static.accuracy):+.2f} pp)",
        ]
    )
    save_table("fig1_motivation", summary)

    # Qualitative claims of Fig. 1.
    assert gpu.latency_ms < dla.latency_ms
    assert dla.energy_mj < gpu.energy_mj
    # Static mapping improves each single-CU mapping's deficient metric.
    assert static.worst_case_latency_ms < dla.latency_ms
    assert static.worst_case_energy_mj < gpu.energy_mj
    # The dynamic mapping dominates the DLA-only mapping on both metrics.
    assert dynamic.latency_ms < dla.latency_ms
    assert dynamic.energy_mj < dla.energy_mj * 1.05
    # And needs less feature-map reuse than the static (exchange-everything)
    # mapping at a small accuracy cost.
    assert dynamic.reuse_fraction < static.reuse_fraction
    assert static.accuracy - dynamic.accuracy < 0.05
