"""Serving throughput bench: static vs. adaptive policies under bursty load.

Beyond the paper: Table II ranks mappings by isolated per-sample averages;
this bench deploys the searched Pareto points behind the discrete-event
traffic simulator and sweeps offered load over a bursty (on/off) scenario.
For each load level it reports achieved requests/sec, p50/p99 latency and
energy per request for

* the search's best-objective mapping served statically,
* the energy-oriented Pareto point served statically,
* the latency-oriented Pareto point served statically,
* the load-adaptive switcher (energy point in calm traffic, latency point
  during surges).

At the highest load the bench asserts the serving-level claim: the adaptive
mapping switcher *demonstrably improves p99 latency* over the best static
mapping within its energy budget (always-fast statics buy their tail by
spending more energy on every request, which the switcher only spends during
surges), while staying cheaper per request than always serving the latency
point.

``REPRO_SERVING_SMOKE=1`` shrinks the search budget and trace (CI smoke
mode) without changing the assertions.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -q
"""

from __future__ import annotations

import os
import timeit
from dataclasses import replace

from repro.core.framework import MapAndConquer
from repro.core.report import format_table
from repro.nn.models import visformer
from repro.serving import (
    AdaptiveSwitchPolicy,
    Deployment,
    OnOffBursts,
    StaticPolicy,
    TrafficSimulator,
)
from repro.soc.platform import jetson_agx_xavier
from repro.soc.presets import derive

SMOKE = os.environ.get("REPRO_SERVING_SMOKE", "") == "1"

# Smoke mode shrinks the trace and the load sweep only.  The search budget is
# kept identical (it costs ~a second): a weaker search can collapse the
# energy- and latency-oriented Pareto points into one mapping, which makes
# the adaptive-vs-static comparison vacuous.
GENERATIONS = 12
POPULATION = 20
DURATION_MS = 20_000.0 if SMOKE else 60_000.0
LOAD_MULTIPLIERS = (1.0,) if SMOKE else (0.4, 0.7, 1.0)


def test_serving_throughput(save_table):
    platform = jetson_agx_xavier()
    framework = MapAndConquer(visformer(), platform, seed=0)
    result = framework.search(generations=GENERATIONS, population_size=POPULATION, seed=0)
    best = Deployment.from_evaluated(result.best, name="best-objective")
    frugal = Deployment.from_evaluated(
        framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02),
        name="ours-E",
    )
    fast = Deployment.from_evaluated(
        framework.select_latency_oriented(result.pareto, max_accuracy_drop=0.02),
        name="ours-L",
    )

    # Bursts sized to the searched mappings: clearly past the energy point's
    # effective (exit-weighted) capacity while the latency point can still
    # drain them.
    base_burst_rps = min(
        0.95 * fast.effective_capacity_rps(), 1.25 * frugal.effective_capacity_rps()
    )
    idle_rps = 0.25 * frugal.effective_capacity_rps()

    rows = []
    top_load_metrics = {}
    top_load_requests = 0
    for multiplier in LOAD_MULTIPLIERS:
        scenario = OnOffBursts(
            burst_rps=multiplier * base_burst_rps,
            idle_rps=multiplier * idle_rps,
            burst_ms=2500.0,
            idle_ms=4000.0,
        )
        requests = scenario.generate(DURATION_MS, seed=1)
        if multiplier == LOAD_MULTIPLIERS[-1]:
            top_load_requests = len(requests)
        offered_rps = 1000.0 * len(requests) / DURATION_MS
        policies = [
            StaticPolicy(best, name="static-best"),
            StaticPolicy(frugal, name="static-ours-E"),
            StaticPolicy(fast, name="static-ours-L"),
            AdaptiveSwitchPolicy(frugal, fast, high_watermark=8, low_watermark=2),
        ]
        for policy in policies:
            simulator = TrafficSimulator(platform, policy, seed=0)
            metrics = simulator.run(requests, duration_ms=DURATION_MS).metrics()
            rows.append(
                {
                    "offered_rps": offered_rps,
                    "policy": policy.name,
                    "achieved_rps": metrics.throughput_rps,
                    "p50_ms": metrics.p50_latency_ms,
                    "p99_ms": metrics.p99_latency_ms,
                    "mJ_per_req": metrics.energy_per_request_mj,
                }
            )
            if multiplier == LOAD_MULTIPLIERS[-1]:
                top_load_metrics[policy.name] = metrics

    table = format_table(rows)
    print(table)
    save_table("serving_throughput", table)

    adaptive = top_load_metrics["adaptive-switch"]
    static_fast = top_load_metrics["static-ours-L"]
    # The serving-level claim: under bursts the switcher beats every static
    # mapping that fits the same per-request energy budget on tail latency
    # (always-fast statics exceed the budget on every request)...
    iso_energy_statics = [
        metrics
        for name, metrics in top_load_metrics.items()
        if name != "adaptive-switch"
        and metrics.energy_per_request_mj <= 1.02 * adaptive.energy_per_request_mj
    ]
    assert iso_energy_statics, "no static mapping within the adaptive energy budget"
    best_iso_p99 = min(metrics.p99_latency_ms for metrics in iso_energy_statics)
    assert adaptive.p99_latency_ms < 0.8 * best_iso_p99
    # ... while spending clearly less energy than always serving the fast
    # mapping would.
    assert adaptive.energy_per_request_mj < static_fast.energy_per_request_mj
    # Sanity: nobody drops requests; every policy completes the full stream.
    assert top_load_requests > 0
    assert all(
        m.num_requests == top_load_requests for m in top_load_metrics.values()
    )


def test_unit_lookup_does_not_dominate():
    """Micro-assert: ``Platform.unit()`` is O(1), not a per-call linear scan.

    The serving event loop resolves unit names per request and scheduling
    does so per stage; before the name -> (index, unit) map those were O(M)
    scans.  On a 40-unit platform a scan makes the last-declared unit ~40x
    slower to resolve than the first; the dict makes lookup cost
    position-independent, so the ratio stays near 1.
    """
    base = jetson_agx_xavier()
    extras = tuple(
        replace(base.compute_units[1], name=f"dla{index}") for index in range(2, 40)
    )
    wide = derive(base, "xavier-wide", extra_units=extras)
    first, last = wide.unit_names[0], wide.unit_names[-1]
    calls = 20_000
    time_first = min(timeit.repeat(lambda: wide.unit(first), number=calls, repeat=5))
    time_last = min(timeit.repeat(lambda: wide.unit(last), number=calls, repeat=5))
    assert time_last < 5.0 * time_first, (
        f"unit lookup is position-dependent again ({time_last / time_first:.1f}x): "
        "did Platform lose its name lookup map?"
    )
    # And absolutely cheap: far below the ~ms-scale per-request simulation work.
    assert time_last / calls < 5e-6
