"""Serving-aware search: the fourth objective changes what you deploy.

The objective layer's headline claim: making the M/D/1 expected queueing
wait a first-class NSGA-II objective (``serving_objectives``) picks a front
member that *actually serves* a bursty workload, where the isolated
energy-oriented pick saturates.  The bench constructs the regime
deliberately:

* an on/off burst family fires 110 req/s bursts — above the bottleneck
  capacity of the energy-frugal mappings (~80 req/s on Xavier) but well
  inside what the latency-leaning front members sustain;
* the default objective trio cannot see this: its energy-oriented pick
  looks great on isolated averages and queues catastrophically under the
  bursts;
* ``select_serving_oriented`` over a serving-aware search picks a member
  whose capacity clears the burst, trading energy for a short queue.

Asserted: the serving-aware pick is a *different* front member than the
default set's energy-oriented pick, and its simulated served p99 under the
burst family is strictly lower.  Emits into ``BENCH_objectives.json`` via
:mod:`perf_trajectory`.

``REPRO_SERVING_AWARE_SMOKE=1`` shrinks budgets for the CI smoke step
without changing any assertion.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_serving_aware_search.py -q
"""

from __future__ import annotations

import os

from perf_trajectory import emit

from repro.core.framework import MapAndConquer
from repro.nn.models import visformer
from repro.search.objectives import serving_objectives
from repro.search.pareto import select_energy_oriented, select_serving_oriented
from repro.serving.families import OnOffBurstFamily
from repro.soc.presets import get_platform

SMOKE = os.environ.get("REPRO_SERVING_AWARE_SMOKE", "") == "1"

GENERATIONS = 3 if SMOKE else 5
POPULATION = 8 if SMOKE else 12
DURATION_MS = 3000.0 if SMOKE else 5000.0
SEED = 0

#: Bursts above the energy-frugal mappings' bottleneck capacity, with a
#: near-idle recovery phase — the regime where isolated averages mislead.
FAMILY = OnOffBurstFamily(
    burst_rps=110.0, idle_rps=5.0, burst_ms=400.0, idle_ms=600.0, jitter=0.2
)


def test_serving_aware_objective_beats_energy_pick_on_served_p99(save_table):
    framework = MapAndConquer(visformer(), get_platform("jetson-agx-xavier"), seed=SEED)

    # The default trio: latency/energy/accuracy, blind to load.
    default = framework.search(
        strategy="nsga2", generations=GENERATIONS, population_size=POPULATION, seed=SEED
    )
    energy_pick = select_energy_oriented(list(default.pareto))

    # The serving-aware set: same budget and seed, plus expected_wait_ms at
    # the family's peak rate as a fourth NSGA-II objective.
    aware = framework.search(
        strategy="nsga2",
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=SEED,
        objectives=serving_objectives(FAMILY),
    )
    serving_pick = select_serving_oriented(list(aware.pareto), FAMILY)

    assert energy_pick.config.describe() != serving_pick.config.describe(), (
        "the serving-aware objective should select a different front member "
        "than the isolated energy-oriented pick"
    )

    # Replay the same burst scenario against both picks: identical arrivals,
    # identical difficulty stream.
    member = FAMILY.expand(seed=SEED, n=1)[0]
    energy_metrics = framework.simulate_traffic(
        energy_pick, member, duration_ms=DURATION_MS, seed=SEED
    ).metrics()
    serving_metrics = framework.simulate_traffic(
        serving_pick, member, duration_ms=DURATION_MS, seed=SEED
    ).metrics()

    assert serving_metrics.p99_latency_ms < energy_metrics.p99_latency_ms, (
        f"serving-aware pick must serve a strictly lower p99 under bursts: "
        f"{serving_metrics.p99_latency_ms:.2f} ms vs "
        f"{energy_metrics.p99_latency_ms:.2f} ms"
    )

    report = "\n".join(
        [
            f"burst family: {FAMILY.burst_rps:.0f} rps bursts "
            f"({FAMILY.burst_ms:.0f} ms on / {FAMILY.idle_ms:.0f} ms off)",
            f"energy-oriented pick:  {energy_pick.latency_ms:.2f} ms isolated, "
            f"{energy_pick.energy_mj:.2f} mJ -> served p99 "
            f"{energy_metrics.p99_latency_ms:.2f} ms",
            f"serving-aware pick:    {serving_pick.latency_ms:.2f} ms isolated, "
            f"{serving_pick.energy_mj:.2f} mJ -> served p99 "
            f"{serving_metrics.p99_latency_ms:.2f} ms",
            f"served-p99 improvement: "
            f"{energy_metrics.p99_latency_ms / serving_metrics.p99_latency_ms:.2f}x",
        ]
    )
    print(report)
    save_table("serving_aware_search", report)

    emit(
        "objectives",
        {
            "burst_rps": FAMILY.burst_rps,
            "energy_pick_served_p99_ms": round(energy_metrics.p99_latency_ms, 3),
            "serving_pick_served_p99_ms": round(serving_metrics.p99_latency_ms, 3),
            "served_p99_speedup_x": round(
                energy_metrics.p99_latency_ms / serving_metrics.p99_latency_ms, 3
            ),
            "energy_pick_mj_per_request": round(
                energy_metrics.energy_per_request_mj, 3
            ),
            "serving_pick_mj_per_request": round(
                serving_metrics.energy_per_request_mj, 3
            ),
            "picks_differ": energy_pick.config.describe()
            != serving_pick.config.describe(),
            "smoke": SMOKE,
        },
    )
