"""Engine scaling: serial vs. process-pool evaluation of one search budget.

The paper's full budget is 60 x 200 = 12K evaluations run strictly serially;
the engine refactor lets a generation's uncached configurations fan out over
worker processes.  This bench runs the same seeded evolutionary search budget
through the :class:`~repro.engine.backends.SerialBackend` and through
:class:`~repro.engine.backends.ProcessPoolBackend` at increasing worker
counts, checks the results are identical (the pipeline is deterministic, so
parallelism must not change a single number), and reports the wall-clock
ratio.

Result parity is always asserted.  The wall-clock speedup itself depends on
actual host parallelism (cores, cgroup quotas, runner contention), so it is
only *asserted* when ``REPRO_BENCH_ASSERT_SPEEDUP=1`` is set *and* the host
has at least two cores — timings are reported either way (rows where the
host cannot actually run the workers in parallel carry
``parallel_meaningful: false``), and CI runs the bench for parity without
gating merges on a shared runner's scheduling luck.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_engine_scaling.py -q
"""

from __future__ import annotations

import os
import time

from perf_trajectory import emit
from repro.core.report import format_table
from repro.engine.backends import ProcessPoolBackend, SerialBackend
from repro.engine.engine import SearchEngine
from repro.engine.strategies import EvolutionaryStrategy
from repro.nn.models import visformer
from repro.search.evaluation import ConfigEvaluator
from repro.search.objectives import paper_objective
from repro.search.space import SearchSpace
from repro.soc.platform import jetson_agx_xavier

GENERATIONS = 6
POPULATION = 24
WORKER_COUNTS = (2, 4)


def _run_budget(backend_builder):
    """One full seeded search through ``backend_builder``'s backend."""
    network = visformer()
    platform = jetson_agx_xavier()
    evaluator = ConfigEvaluator(network=network, platform=platform, seed=0)
    space = SearchSpace(network=network, platform=platform)
    strategy = EvolutionaryStrategy(
        space=space, population_size=POPULATION, generations=GENERATIONS, seed=0
    )
    backend = backend_builder(evaluator)
    try:
        engine = SearchEngine(evaluator=evaluator, backend=backend)
        started = time.perf_counter()
        result = engine.run(strategy)
        elapsed = time.perf_counter() - started
    finally:
        backend.close()
    return result, elapsed


def test_engine_scaling(save_table):
    serial_result, serial_s = _run_budget(SerialBackend)
    rows = [
        {
            "backend": "serial",
            "workers": 1,
            "wall_s": serial_s,
            "speedup_x": 1.0,
            "parallel_meaningful": True,
            "best_objective": paper_objective(serial_result.best),
            "evaluations": serial_result.num_evaluations,
        }
    ]
    cores = os.cpu_count() or 1
    speedups = {}
    for workers in WORKER_COUNTS:
        result, elapsed = _run_budget(
            lambda evaluator: ProcessPoolBackend(evaluator, n_workers=workers)
        )
        # Parallel evaluation must not change a single number.
        assert paper_objective(result.best) == paper_objective(serial_result.best)
        assert result.num_evaluations == serial_result.num_evaluations
        assert [s.best_objective for s in result.generations] == [
            s.best_objective for s in serial_result.generations
        ]
        speedups[workers] = serial_s / elapsed
        rows.append(
            {
                "backend": "process-pool",
                "workers": workers,
                "wall_s": elapsed,
                "speedup_x": speedups[workers],
                # A 0.65x "speedup" for process-4 on a 1-core host is the
                # scheduler, not a regression — flag rows where the host
                # can't actually run the workers in parallel.
                "parallel_meaningful": cores >= workers,
                "best_objective": paper_objective(result.best),
                "evaluations": result.num_evaluations,
            }
        )
    summary = "\n".join(
        [
            "Engine scaling: identical seeded budget "
            f"({GENERATIONS} generations x {POPULATION} configs), Visformer/Xavier",
            format_table(rows, float_format="{:.3f}"),
            "",
            f"host cores: {cores}",
            "results are bit-identical across backends; speedup reflects host parallelism",
        ]
    )
    save_table("engine_scaling", summary)

    # Persist evaluations/sec per backend to the perf trajectory so backend
    # regressions show up as a diff at the repo root (see perf_trajectory).
    emit(
        "engine",
        {
            "generations": GENERATIONS,
            "population": POPULATION,
            "host_cores": cores,
            "evaluations": serial_result.num_evaluations,
            "backends": {
                ("serial" if row["backend"] == "serial" else f"process-{row['workers']}"): {
                    "wall_s": round(row["wall_s"], 3),
                    "evaluations_per_s": round(row["evaluations"] / row["wall_s"], 1),
                    "speedup_x": round(row["speedup_x"], 2),
                    "parallel_meaningful": row["parallel_meaningful"],
                }
                for row in rows
            },
        },
    )

    # Wall-clock is hardware- and contention-dependent, so the speedup gate
    # is opt-in for dedicated machines; parity above is the correctness bar.
    # On a host without real parallelism (1 core) the speedup numbers are
    # scheduler noise — parallel_meaningful=false above records that, and
    # the opt-in gate quietly stands down instead of failing spuriously.
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1" and cores >= 2:
        assert speedups[2] > 1.1, f"expected >1.1x speedup on {cores} cores, got {speedups[2]:.2f}x"
