"""Surrogate-accelerated campaign vs. the pure-oracle campaign, same seed.

The tentpole claim of the surrogate subsystem is *oracle-call reduction at
negligible front cost*: a campaign driven by per-platform GBDT surrogates
must reach (within a few percent of hypervolume) the same Pareto fronts as
the pure-oracle campaign while spending several times fewer oracle
evaluations.  This bench runs both campaigns at one seed and asserts the
claim directly:

* >= 5x fewer oracle evaluations in total (``MIN_ORACLE_REDUCTION``),
* every cell's front keeps >= 95 % of the oracle front's hypervolume under a
  shared reference point (``MAX_HV_REGRET``),
* the vectorised GBDT batch ``predict`` beats the row-by-row reference walk
  on a 256-row batch while producing identical numbers.

It also appends the numbers to the persistent perf trajectory
(``BENCH_campaign_surrogate.json`` at the repo root, via
:mod:`perf_trajectory`) so the oracle-calls-saved / fidelity curve survives
across PRs as a reviewable diff.

``REPRO_SURROGATE_SMOKE=1`` shrinks the grid to one platform for CI; every
assertion still runs.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_campaign_surrogate.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np

from perf_trajectory import emit
from repro.campaign import run_campaign
from repro.core.report import format_table, surrogate_summary
from repro.engine.surrogate import SurrogateSettings
from repro.nn.graph import NetworkGraph
from repro.nn.layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer
from repro.perf.gbdt import GradientBoostedTrees
from repro.search.pareto import hypervolume

SMOKE = os.environ.get("REPRO_SURROGATE_SMOKE", "") == "1"

GRID = ("jetson-agx-xavier",) if SMOKE else ("jetson-agx-xavier", "mobile-big-little")
SEED = 0
#: The oracle-reduction headline needs enough generations for the surrogate
#: phase to amortise its two bootstrap generations: at 60 generations the
#: pure-oracle campaign evaluates ~270 distinct configurations per cell while
#: the surrogate path spends ~38 (bootstrap + three 6-point validations).
BUDGET = dict(generations=60, population_size=12)
SURROGATE = SurrogateSettings(
    bootstrap_generations=2,
    validate_every=20,
    validation_cap=6,
    min_training_rows=16,
)

MIN_ORACLE_REDUCTION = 5.0
MAX_HV_REGRET = 0.05

PREDICT_BATCH = 256
PREDICT_REPEATS = 5


def _tiny_network() -> NetworkGraph:
    # Mirrors the campaign golden tests' network: small enough that the
    # oracle is cheap, structured enough that the search is non-trivial.
    layers = (
        Conv2dLayer(
            name="conv1",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(8, 8),
            out_spatial=(8, 8),
        ),
        AttentionLayer(name="attn", width=32, in_width=16, tokens=16, num_heads=4),
        FeedForwardLayer(name="mlp", width=32, in_width=32, tokens=16, expansion=2.0),
        LinearLayer(name="head", width=10, in_width=32, tokens=1),
    )
    return NetworkGraph(
        name="tiny",
        layers=layers,
        input_shape=(3, 8, 8),
        num_classes=10,
        base_accuracy=0.9,
        family="vit",
    )


def _shared_reference(fronts) -> list:
    """One reference point dominated by every member of all given fronts."""
    keys = (
        lambda item: item.latency_ms,
        lambda item: item.energy_mj,
        lambda item: -item.accuracy,
    )
    reference = []
    for key in keys:
        worst = max(key(item) for front in fronts for item in front)
        reference.append(worst + 0.1 * abs(worst) + 1e-9)
    return reference


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_campaign_surrogate(save_table):
    network = _tiny_network()

    started = time.perf_counter()
    baseline = run_campaign(network, GRID, seed=SEED, **BUDGET)
    baseline_s = time.perf_counter() - started

    started = time.perf_counter()
    accelerated = run_campaign(network, GRID, seed=SEED, surrogate=SURROGATE, **BUDGET)
    accelerated_s = time.perf_counter() - started

    # --- oracle-call reduction -------------------------------------------
    baseline_oracle = sum(cell.result.num_evaluations for cell in baseline.cells)
    reports = [cell.surrogate_report for cell in accelerated.cells]
    assert all(report is not None for report in reports)
    surrogate_oracle = sum(report.oracle_evaluations for report in reports)
    surrogate_candidates = surrogate_oracle + sum(
        report.surrogate_evaluations for report in reports
    )
    reduction = baseline_oracle / surrogate_oracle
    assert reduction >= MIN_ORACLE_REDUCTION, (
        f"expected >= {MIN_ORACLE_REDUCTION}x fewer oracle calls, got "
        f"{reduction:.2f}x ({baseline_oracle} -> {surrogate_oracle})"
    )

    # --- front fidelity ---------------------------------------------------
    regrets = {}
    for base_cell, cell in zip(baseline.cells, accelerated.cells):
        assert (base_cell.platform_name, base_cell.scenario_name) == (
            cell.platform_name,
            cell.scenario_name,
        )
        reference = _shared_reference([base_cell.front, cell.front])
        base_volume = hypervolume(base_cell.front, reference)
        volume = hypervolume(cell.front, reference)
        regret = 1.0 - volume / base_volume
        regrets[cell.platform_name] = regret
        assert regret <= MAX_HV_REGRET, (
            f"{cell.platform_name}: hypervolume regret {regret:.4f} exceeds "
            f"{MAX_HV_REGRET:.2f}"
        )

    # --- vectorised predict vs. the row walk ------------------------------
    rng = np.random.default_rng(0)
    features = rng.normal(size=(400, 12))
    targets = features @ rng.normal(size=12) + 0.1 * rng.normal(size=400)
    model = GradientBoostedTrees(n_estimators=60, max_depth=4, min_samples_leaf=3)
    model.fit(features, targets)
    batch = rng.normal(size=(PREDICT_BATCH, 12))
    np.testing.assert_array_equal(model.predict(batch), model.predict_rowwise(batch))
    vectorised_s = _time_best(lambda: model.predict(batch), PREDICT_REPEATS)
    rowwise_s = _time_best(lambda: model.predict_rowwise(batch), PREDICT_REPEATS)
    predict_speedup = rowwise_s / vectorised_s
    assert predict_speedup > 1.0, (
        f"vectorised predict must beat the row walk on a {PREDICT_BATCH}-row "
        f"batch, got {predict_speedup:.2f}x"
    )

    # --- persist the trajectory ------------------------------------------
    metrics = {
        "grid": list(GRID),
        "seed": SEED,
        "generations": BUDGET["generations"],
        "population_size": BUDGET["population_size"],
        "smoke": SMOKE,
        "oracle_evaluations_baseline": baseline_oracle,
        "oracle_evaluations_surrogate": surrogate_oracle,
        "candidate_evaluations_surrogate": surrogate_candidates,
        "oracle_call_reduction_x": round(reduction, 3),
        "hypervolume_regret_max": round(max(regrets.values()), 6),
        "rank_correlation_min": round(
            min(report.rank_correlation for report in reports), 4
        ),
        "oracle_evals_per_s": round(baseline_oracle / baseline_s, 1),
        "surrogate_evals_per_s": round(surrogate_candidates / accelerated_s, 1),
        "campaign_cells_per_min_baseline": round(
            60.0 * len(baseline.cells) / baseline_s, 2
        ),
        "campaign_cells_per_min_surrogate": round(
            60.0 * len(accelerated.cells) / accelerated_s, 2
        ),
        "predict_batch_rows": PREDICT_BATCH,
        "predict_speedup_x": round(predict_speedup, 1),
    }
    emit("campaign_surrogate", metrics)

    summary = "\n".join(
        [
            f"Surrogate campaign vs pure oracle, {len(GRID)} platform(s), "
            f"{BUDGET['generations']}x{BUDGET['population_size']} budget, seed {SEED}",
            "",
            surrogate_summary(accelerated, baseline=baseline),
            "",
            format_table(
                [
                    {
                        "oracle_reduction_x": reduction,
                        "hv_regret_max": max(regrets.values()),
                        "predict_speedup_x": predict_speedup,
                        "baseline_wall_s": baseline_s,
                        "surrogate_wall_s": accelerated_s,
                    }
                ],
                float_format="{:.3f}",
            ),
        ]
    )
    save_table("campaign_surrogate", summary)
