"""Cross-platform campaign bench: are searched mappings platform-specific?

Beyond the paper: the method is pitched as general over heterogeneous
MPSoCs, but the paper only ever deploys on the Xavier.  This bench runs one
campaign over three calibrated zoo presets — the paper's Xavier, an
Orin-class successor and a mobile big.LITTLE+NPU — with the process-pool
backend fanning each cell's evaluations over workers, and then checks the
claims the campaign subsystem exists to make:

* every platform gets its own non-empty Pareto front, and the portability
  matrix covers every (source, target) pair;
* the whole campaign is byte-deterministic for a fixed seed: a second run
  (sharing the evaluation cache, so cached and freshly computed paths must
  agree) renders the identical ``campaign_summary``;
* the Xavier-searched front is **not** Pareto-optimal on at least one other
  preset — translated Xavier mappings get dominated by natively searched
  ones, demonstrating the campaign finds platform-specific mappings rather
  than rediscovering one universal answer.

``REPRO_CAMPAIGN_SMOKE=1`` shrinks the grid to 2 platforms and a tiny
budget (CI smoke mode) without changing the assertions.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_campaign_portability.py -q
"""

from __future__ import annotations

import os

from repro.campaign import run_campaign
from repro.core.report import campaign_summary, portability_table
from repro.engine.cache import EvaluationCache
from repro.nn.models import visformer

SMOKE = os.environ.get("REPRO_CAMPAIGN_SMOKE", "") == "1"

PLATFORMS = (
    ("jetson-agx-xavier", "mobile-big-little")
    if SMOKE
    else ("jetson-agx-xavier", "jetson-agx-orin", "mobile-big-little")
)
GENERATIONS = 4 if SMOKE else 10
POPULATION = 10 if SMOKE else 20
SEED = 0


def test_campaign_portability(save_table):
    cache = EvaluationCache()
    campaign = run_campaign(
        visformer(),
        PLATFORMS,
        generations=GENERATIONS,
        population_size=POPULATION,
        backend="process",
        n_workers=2,
        cache=cache,
        seed=SEED,
    )

    summary = campaign_summary(campaign)
    print(summary)
    save_table("campaign_portability", summary)

    # Per-platform fronts and a complete portability matrix.
    for name in PLATFORMS:
        assert len(campaign.front(name)) >= 1
    matrix = campaign.portability_matrix()
    assert set(matrix) == {(a, b) for a in PLATFORMS for b in PLATFORMS if a != b}
    assert all(value > 0 for value in matrix.values())
    assert all(name in portability_table(campaign) for name in PLATFORMS)

    # Byte-determinism: the rerun shares the cache, so every number must be
    # reproduced exactly whether it came from the cache or a fresh worker.
    rerun = run_campaign(
        visformer(),
        PLATFORMS,
        generations=GENERATIONS,
        population_size=POPULATION,
        backend="process",
        n_workers=2,
        cache=cache,
        seed=SEED,
    )
    assert campaign_summary(rerun) == summary

    # The headline: Xavier's searched front does not survive translation
    # intact — on at least one other preset some of its mappings are
    # dominated by the natively searched front.
    xavier_outbound = [
        entry for entry in campaign.portability if entry.source == "jetson-agx-xavier"
    ]
    assert xavier_outbound
    assert any(
        entry.surviving_on_front < entry.transferred for entry in xavier_outbound
    ), "every translated Xavier mapping stayed Pareto-optimal everywhere"
