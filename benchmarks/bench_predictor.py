"""Section V-E -- quality and cost of the learned hardware surrogate.

The paper trains an XGBoost predictor on a layer-wise benchmark dataset and
uses it inside the search loop.  This bench reproduces that component with
the from-scratch GBDT: it measures held-out prediction quality (R^2 and
mean absolute percentage error for latency and energy) and times both
surrogate training and batched prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.perf.dataset import generate_benchmark_dataset
from repro.perf.predictor import train_surrogate
from repro.soc.platform import jetson_agx_xavier


def test_surrogate_training_and_quality(benchmark, save_table):
    platform = jetson_agx_xavier()
    dataset = generate_benchmark_dataset(platform, num_samples=1200, noise_std=0.05, seed=0)
    train, test = dataset.split(train_fraction=0.85, seed=0)

    def fit():
        return train_surrogate(platform, dataset=train, n_estimators=80, max_depth=5, seed=0)

    surrogate = benchmark.pedantic(fit, rounds=1, iterations=1)
    metrics = surrogate.evaluate(test)

    rows = [
        {"metric": "training rows", "value": float(len(train))},
        {"metric": "held-out rows", "value": float(len(test))},
        {"metric": "latency R^2 (log-space)", "value": metrics["latency_r2"]},
        {"metric": "energy R^2 (log-space)", "value": metrics["energy_r2"]},
        {"metric": "latency MAPE", "value": metrics["latency_mape"]},
        {"metric": "energy MAPE", "value": metrics["energy_mape"]},
    ]
    summary = "\n".join(
        ["Section V-E reproduction (hardware surrogate quality)", format_table(rows, float_format="{:.3f}")]
    )
    save_table("predictor_quality", summary)

    assert metrics["latency_r2"] > 0.8
    assert metrics["energy_r2"] > 0.8
    assert metrics["latency_mape"] < 0.5
    assert metrics["energy_mape"] < 0.5


def test_surrogate_prediction_throughput(benchmark):
    platform = jetson_agx_xavier()
    dataset = generate_benchmark_dataset(platform, num_samples=600, seed=1)
    surrogate = train_surrogate(platform, dataset=dataset, n_estimators=60, max_depth=4, seed=1)
    features = dataset.features

    def predict_batch():
        return surrogate.latency_model.predict(features)

    predictions = benchmark.pedantic(predict_batch, rounds=5, iterations=1)
    assert predictions.shape == (len(dataset),)
    assert np.all(np.isfinite(predictions))
