"""Serving campaigns: isolated-energy winners are not traffic winners.

The headline claim of the serving-campaign layer: ranking platforms by the
isolated per-sample energy of their searched mappings (the paper's view)
picks a *different* board than ranking by served-p99-per-joule under real
traffic families.  The bench constructs the regime deliberately:

* a ``derive()``-throttled Xavier (35 % throughput at 8 % power — the
  ROADMAP's power-axis scaling study) is by far the **isolated-energy
  best**: every inference costs a fraction of the stock boards';
* under **bursty families** its queues saturate — bursts arrive faster than
  even its latency-oriented Pareto point can drain — so its p99 explodes
  and its served-p99-per-joule collapses below the boards it beat on energy.

Asserted: the isolated-energy best platform is the throttled variant, it is
*not* the served-p99-per-joule winner under the bursty family, and the
mechanism is saturation (its p99 under bursts exceeds the traffic winner's
by a wide margin).

``REPRO_SERVING_CAMPAIGN_SMOKE=1`` shrinks budgets for the CI smoke step
without changing any assertion.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_serving_campaign.py -q
"""

from __future__ import annotations

import os

from repro.campaign import run_serving_campaign
from repro.core.report import traffic_ranking_summary
from repro.nn.models import visformer
from repro.serving.families import OnOffBurstFamily, SteadyPoissonFamily
from repro.soc.presets import derive, get_platform

SMOKE = os.environ.get("REPRO_SERVING_CAMPAIGN_SMOKE", "") == "1"

GENERATIONS = 3 if SMOKE else 5
POPULATION = 8 if SMOKE else 12
MEMBERS = 2 if SMOKE else 3
DURATION_MS = 3000.0 if SMOKE else 6000.0
SEED = 0

STEADY = SteadyPoissonFamily(rate_rps=15.0, jitter=0.2)
BURSTY = OnOffBurstFamily(
    burst_rps=150.0, idle_rps=10.0, burst_ms=400.0, idle_ms=600.0, jitter=0.2
)


def test_energy_best_platform_loses_under_bursts(save_table):
    throttled = derive(
        get_platform("jetson-agx-xavier"),
        "xavier-throttled",
        gflops_scale=0.35,
        power_scale=0.08,
    )
    serving = run_serving_campaign(
        visformer(),
        ("jetson-agx-xavier", throttled, "jetson-agx-orin"),
        families=(STEADY, BURSTY),
        members_per_family=MEMBERS,
        duration_ms=DURATION_MS,
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=SEED,
    )
    summary = traffic_ranking_summary(serving)
    print(summary)
    save_table("serving_campaign", summary)

    energy_best = serving.isolated_energy_best()
    assert energy_best == "xavier-throttled", (
        "the throttled derive() variant should win on isolated energy:\n" + summary
    )

    traffic_best = serving.best_platform(BURSTY.name)
    assert traffic_best != energy_best, (
        "the isolated-energy best platform must not also win "
        "served-p99-per-joule under the bursty family:\n" + summary
    )

    # The mechanism is saturation: under bursts the frugal board's tail
    # latency blows up far beyond the traffic winner's.
    energy_best_p99 = serving.cell(energy_best, BURSTY.name).p99_latency_ms
    winner_p99 = serving.cell(traffic_best, BURSTY.name).p99_latency_ms
    assert energy_best_p99 > 2.0 * winner_p99, (
        f"expected the energy-best board to saturate under bursts "
        f"(p99 {energy_best_p99:.1f} ms vs winner {winner_p99:.1f} ms):\n" + summary
    )
