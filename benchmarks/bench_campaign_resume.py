"""Resumable, warm-started campaigns: the three scale features under test.

Beyond the paper (and beyond PR 3's sequential campaign): this bench
exercises the production-grade grid runner end to end.

* **Kill-and-resume** — a campaign subprocess is SIGKILLed after its first
  cell checkpoint lands on disk; resuming from ``checkpoint_dir`` must
  reproduce the uninterrupted ``campaign_summary`` byte for byte, searching
  only the unfinished cells.
* **Transfer-aware warm starts** — seeding a related platform's search with
  the translated Pareto front of an already-searched platform (HADAS-style
  transfer) must reach the cold start's final hypervolume in *strictly
  fewer generations* on at least one preset pair, while cold-start
  behaviour itself stays bit-for-bit untouched.
* **Cell parallelism** — the fan-out path must render the identical summary
  (asserted as part of the resume test, where all three paths meet).

``REPRO_CAMPAIGN_RESUME_SMOKE=1`` shrinks budgets for the CI smoke step
without changing any assertion.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_campaign_resume.py -q
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.campaign import run_campaign, translate_front
from repro.core.framework import MapAndConquer
from repro.core.report import (
    campaign_summary,
    generations_to_reach,
    hypervolume_curve,
)
from repro.nn.models import visformer
from repro.soc.presets import get_platform

SMOKE = os.environ.get("REPRO_CAMPAIGN_RESUME_SMOKE", "") == "1"

GRID = ("jetson-agx-xavier", "mobile-big-little")
GENERATIONS = 3 if SMOKE else 5
POPULATION = 8 if SMOKE else 12
SEED = 0

#: (donor, receiver) preset pairs for the warm-start convergence study; the
#: Xavier -> Orin pair shares its whole unit vocabulary, the mobile pair
#: transfers across vocabularies.
WARM_PAIRS = (
    ("jetson-agx-xavier", "jetson-agx-orin"),
    ("jetson-agx-xavier", "mobile-big-little"),
)
WARM_GENERATIONS = 6 if SMOKE else 12
WARM_POPULATION = 10 if SMOKE else 16

_CHILD_SCRIPT = textwrap.dedent(
    """
    from repro.campaign import run_campaign
    from repro.nn.models import visformer

    run_campaign(
        visformer(),
        {grid!r},
        generations={generations},
        population_size={population},
        seed={seed},
        checkpoint_dir={checkpoint_dir!r},
    )
    """
)


def test_kill_and_resume_byte_identity(tmp_path, save_table):
    """SIGKILL mid-campaign, resume, and demand byte-identical output."""
    uninterrupted = campaign_summary(
        run_campaign(
            visformer(), GRID, generations=GENERATIONS, population_size=POPULATION, seed=SEED
        )
    )

    checkpoint_dir = tmp_path / "checkpoints"
    checkpoint_file = checkpoint_dir / "campaign_cells.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _CHILD_SCRIPT.format(
                grid=GRID,
                generations=GENERATIONS,
                population=POPULATION,
                seed=SEED,
                checkpoint_dir=str(checkpoint_dir),
            ),
        ],
        env=env,
    )
    try:
        # The hard kill lands as soon as the first cell checkpoint is on
        # disk — i.e. mid-campaign, between cells.
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if checkpoint_file.exists() and checkpoint_file.read_text(encoding="utf-8").count("\n") >= 1:
                break
            if child.poll() is not None:
                break
            time.sleep(0.01)
        else:
            raise AssertionError("first checkpoint never appeared")
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait()

    finished_cells = checkpoint_file.read_text(encoding="utf-8").count("\n")
    assert finished_cells >= 1
    # The kill must have interrupted the grid for the resume to mean much;
    # tiny race losses (child finishing everything) would void the test.
    assert finished_cells < len(GRID), "child finished before the kill landed"

    resumed = run_campaign(
        visformer(),
        GRID,
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=SEED,
        checkpoint_dir=checkpoint_dir,
    )
    assert campaign_summary(resumed) == uninterrupted

    # Where all paths meet: cell-parallel must agree with both of them.
    parallel = run_campaign(
        visformer(),
        GRID,
        generations=GENERATIONS,
        population_size=POPULATION,
        seed=SEED,
        cell_workers=2,
    )
    assert campaign_summary(parallel) == uninterrupted

    save_table(
        "campaign_resume",
        f"killed after {finished_cells}/{len(GRID)} cells; resume and "
        f"cell-parallel summaries byte-identical\n\n" + uninterrupted,
    )


def test_warm_start_converges_in_fewer_generations(save_table):
    """Translated fronts as seeds beat cold starts to the same hypervolume."""
    network = visformer()
    rows = []
    wins = 0
    for donor_name, receiver_name in WARM_PAIRS:
        donor_platform = get_platform(donor_name)
        receiver_platform = get_platform(receiver_name)
        stages = min(donor_platform.num_units, receiver_platform.num_units)

        donor = MapAndConquer(network, donor_platform, num_stages=stages, seed=SEED)
        donor_result = donor.search(
            generations=WARM_GENERATIONS, population_size=WARM_POPULATION, seed=SEED
        )
        seeds = list(
            translate_front(donor_result.pareto, donor_platform, receiver_platform)
        )[: WARM_POPULATION // 2]

        receiver = MapAndConquer(network, receiver_platform, num_stages=stages, seed=SEED)
        cold = receiver.search(
            generations=WARM_GENERATIONS, population_size=WARM_POPULATION, seed=SEED
        )
        warm = receiver.search(
            generations=WARM_GENERATIONS,
            population_size=WARM_POPULATION,
            seed=SEED,
            initial_population=seeds,
        )

        # One shared reference point spanning everything either run saw.
        union = list(cold.history) + list(warm.history)
        reference = (
            1.1 * max(item.latency_ms for item in union),
            1.1 * max(item.energy_mj for item in union),
            -0.9 * min(item.accuracy for item in union),
        )
        cold_curve = hypervolume_curve(cold, reference)
        warm_curve = hypervolume_curve(warm, reference)
        target = cold_curve[-1]
        cold_gens = generations_to_reach(cold_curve, target)
        warm_gens = generations_to_reach(warm_curve, target)
        reached = warm_gens is not None
        if reached and warm_gens < cold_gens:
            wins += 1
        rows.append(
            f"{donor_name} -> {receiver_name}: cold reaches HV {target:.4f} at "
            f"gen {cold_gens}, warm at gen {warm_gens} "
            f"({'win' if reached and warm_gens < cold_gens else 'no win'})"
        )

    report = "\n".join(rows)
    print(report)
    save_table("campaign_warm_start", report)
    assert wins >= 1, (
        "warm start never reached the cold-start hypervolume in strictly "
        "fewer generations on any preset pair:\n" + report
    )
