#!/usr/bin/env python3
"""Quickstart: map Visformer onto the Jetson AGX Xavier in a few lines.

Runs the full Map-and-Conquer pipeline with a small search budget:

1. build the Visformer network graph and the Xavier platform model,
2. evaluate the GPU-only and DLA-only baselines,
3. run a short evolutionary search over (P, I, M, theta),
4. extract the energy- and latency-oriented models from the Pareto set and
   print a Table-II style comparison,
5. rerun the same budget through the pluggable engine: NSGA-II strategy and
   the process-pool backend (``strategy=`` / ``n_workers=``).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MapAndConquer, jetson_agx_xavier, visformer
from repro.core.report import format_table, search_summary, table2_row


def main() -> None:
    network = visformer()
    platform = jetson_agx_xavier()
    print(platform.describe())
    print()
    print(network.summary())
    print()

    framework = MapAndConquer(network, platform, seed=0)

    # Single-CU baselines (the "GPU-Only" / "DLA-Only" rows of Table II).
    gpu_only = framework.baseline("gpu")
    dla_only = framework.baseline("dla0")

    # Evolutionary search over partitioning, feature reuse, mapping and DVFS.
    result = framework.search(generations=20, population_size=24, seed=0)
    print(
        f"search finished: {result.num_evaluations} configurations evaluated, "
        f"{len(result.pareto)} on the Pareto front"
    )

    ours_latency = framework.select_latency_oriented(result.pareto, max_accuracy_drop=0.02)
    ours_energy = framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)

    rows = [
        table2_row("None", "GPU", gpu_only, use_worst_case=True),
        table2_row("None", "DLA", dla_only, use_worst_case=True),
        table2_row("Map-and-Conquer", "Ours-L", ours_latency),
        table2_row("Map-and-Conquer", "Ours-E", ours_energy),
    ]
    print()
    print(format_table(rows))
    print()
    print(f"selected mapping (Ours-E): {ours_energy.config.describe()}")
    print(
        f"energy gain vs GPU-only : {gpu_only.energy_mj / ours_energy.energy_mj:.2f}x, "
        f"speedup vs DLA-only : {dla_only.latency_ms / ours_latency.latency_ms:.2f}x"
    )

    # The search stack is pluggable: swap the optimiser for NSGA-II and fan
    # evaluation out over two worker processes.  The default combination
    # (strategy="evolutionary", serial backend) reproduces the paper's loop.
    nsga = framework.search(
        generations=20, population_size=24, seed=0, strategy="nsga2", n_workers=2
    )
    print()
    print("NSGA-II + process-pool backend:")
    print(search_summary(nsga))


if __name__ == "__main__":
    main()
