#!/usr/bin/env python3
"""Search one network across the platform zoo and compare the boards.

The paper evaluates on a single board; this example runs a cross-platform
campaign instead: the same Visformer is searched on the paper's Xavier, an
Orin-class successor and a mobile big.LITTLE+NPU SoC, every front is
re-ranked under one shared bursty traffic scenario, and the portability
matrix shows how much quality a mapping searched on one board leaves on the
table when deployed on another.  A derived what-if variant (an underclocked
Orin) demonstrates the ``derive`` helper on the same grid.

Run with:  python examples/cross_platform_campaign.py
"""

from __future__ import annotations

from repro import MapAndConquer, campaign_summary, visformer
from repro.serving import OnOffBursts
from repro.soc import derive, get_platform, platform_names


def main() -> None:
    print(f"registered presets: {', '.join(platform_names())}")
    print()

    # A what-if board generated from a registry preset: an Orin cut down to
    # 60 % clocks-for-power, as a thermally constrained chassis would run it.
    throttled_orin = derive(
        get_platform("jetson-agx-orin"),
        "jetson-agx-orin-throttled",
        gflops_scale=0.6,
        power_scale=0.7,
    )

    framework = MapAndConquer(visformer(), seed=0)  # defaults to the Xavier
    campaign = framework.campaign(
        ["jetson-agx-orin", "mobile-big-little", throttled_orin],
        generations=10,
        population_size=20,
        n_workers=2,
        backend="process",
        traffic=OnOffBursts(burst_rps=60.0, idle_rps=10.0, burst_ms=2000.0, idle_ms=3000.0),
        traffic_duration_ms=20_000.0,
    )

    print(campaign_summary(campaign))
    print()

    xavier_away = [
        entry for entry in campaign.portability if entry.source == "jetson-agx-xavier"
    ]
    worst = max(xavier_away, key=lambda entry: entry.regret)
    print(
        f"deploying the Xavier-searched front on {worst.target} costs "
        f"{100.0 * (worst.regret - 1.0):.0f}% objective regret vs searching natively "
        f"({worst.surviving_on_front}/{worst.transferred} mappings stay Pareto-optimal)."
    )


if __name__ == "__main__":
    main()
