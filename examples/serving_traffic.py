#!/usr/bin/env python3
"""Serving searched Pareto mappings under a bursty day of traffic.

Table II scores each mapping on isolated samples; a deployed endpoint sees a
*stream* -- flash-crowd bursts over a diurnal baseline -- and what users feel
is tail latency including queueing.  This example searches the Visformer
mapping space, distils the energy- and latency-oriented Pareto points into
deployments, and plays one seeded bursty scenario through four policies:

* always the energy-oriented mapping (best Table II energy),
* always the latency-oriented mapping (best Table II latency),
* the load-adaptive switcher (energy mapping in calm traffic, latency
  mapping while the queue is deep, with a hysteresis dead band),
* a DVFS governor that keeps the energy mapping but raises the clocks
  under load.

Run with:  python examples/serving_traffic.py
"""

from __future__ import annotations

from repro import MapAndConquer, jetson_agx_xavier, visformer
from repro.core.report import format_table, serving_summary
from repro.serving import (
    AdaptiveSwitchPolicy,
    Deployment,
    DvfsGovernorPolicy,
    OnOffBursts,
    StaticPolicy,
    TrafficSimulator,
)


def main() -> None:
    platform = jetson_agx_xavier()
    framework = MapAndConquer(visformer(), platform, seed=0)
    result = framework.search(generations=12, population_size=20, seed=0)
    energy_point = framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)
    latency_point = framework.select_latency_oriented(result.pareto, max_accuracy_drop=0.02)

    frugal = Deployment.from_evaluated(energy_point, name="ours-E")
    fast = Deployment.from_evaluated(latency_point, name="ours-L")
    print(f"ours-E: {energy_point.config.describe()}")
    print(f"        capacity ~{frugal.effective_capacity_rps():.0f} req/s, "
          f"{energy_point.energy_mj:.1f} mJ/sample isolated")
    print(f"ours-L: {latency_point.config.describe()}")
    print(f"        capacity ~{fast.effective_capacity_rps():.0f} req/s, "
          f"{latency_point.latency_ms:.2f} ms/sample isolated")
    print()

    # Bursts push past the frugal mapping's effective (exit-weighted)
    # capacity but stay within the fast one's.
    burst_rps = 0.5 * (frugal.effective_capacity_rps() + fast.effective_capacity_rps())
    idle_rps = 0.3 * frugal.effective_capacity_rps()
    scenario = OnOffBursts(
        burst_rps=burst_rps, idle_rps=idle_rps, burst_ms=3000.0, idle_ms=5000.0
    )
    duration_ms = 60_000.0
    requests = scenario.generate(duration_ms, seed=1)
    print(
        f"scenario: {len(requests)} requests over {duration_ms / 1000.0:.0f}s "
        f"(bursts {burst_rps:.0f} rps / idle {idle_rps:.0f} rps)"
    )
    print()

    policies = [
        StaticPolicy(frugal, name="static ours-E"),
        StaticPolicy(fast, name="static ours-L"),
        AdaptiveSwitchPolicy(frugal, fast, high_watermark=8, low_watermark=2),
        DvfsGovernorPolicy(frugal, platform, high_watermark=4, low_watermark=1),
    ]
    rows = []
    adaptive_metrics = None
    for policy in policies:
        simulator = TrafficSimulator(platform, policy, seed=0, deadline_ms=250.0)
        metrics = simulator.run(requests, duration_ms=duration_ms).metrics()
        rows.append(metrics.summary_row())
        if isinstance(policy, AdaptiveSwitchPolicy):
            adaptive_metrics = metrics
            switches = policy.switches
    print(format_table(rows))
    print()
    print(f"adaptive switcher changed mapping {switches} times:")
    print(serving_summary(adaptive_metrics))


if __name__ == "__main__":
    main()
