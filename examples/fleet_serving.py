#!/usr/bin/env python3
"""Which fleet should serve a million requests a day?

The serving campaign picks the best single board for a traffic family; this
example asks the question an operator actually faces: given a **fleet** of
boards behind a router, which *mix* serves the daily diurnal load within the
p99 SLO at the fewest joules?  It sweeps three candidate fleets over a
scaled day —

* ``orin-pair``     — two Jetson AGX Orins (fast, power-hungry),
* ``nano-pair``     — two Nano-class boards (frugal, slow),
* ``hetero``        — one of each, behind a deadline-aware router with an
  autoscaler that powers the Orin down through the overnight valley,

— prints the fleet ranking, the autoscaler's boot/stop trace for the
heterogeneous mix, and the headline number: projected megajoules to serve
**1,000,000 requests/day** with each fleet.

Run with:  python examples/fleet_serving.py
"""

from __future__ import annotations

from repro import FleetMix, fleet_summary, run_fleet_campaign, visformer
from repro.serving import AutoscalerPolicy, simulate_fleet
from repro.serving.families import DiurnalFamily

#: A scaled day: each member replays one diurnal period with a 10:1 swing
#: between the midday peak and the overnight trough.
DAILY = DiurnalFamily(peak_rps=60.0, trough_fraction=0.1, period_ms=2000.0)

MIXES = (
    FleetMix(name="orin-pair", counts=(("jetson-agx-orin", 2),)),
    FleetMix(
        name="nano-pair",
        counts=(("jetson-nano-class", 2),),
        selection="latency",
    ),
    FleetMix(
        name="hetero",
        counts=(("jetson-agx-orin", 1), ("jetson-nano-class", 1)),
        selection="balanced",
        router="deadline-aware",
        autoscaler=AutoscalerPolicy(
            min_instances=1,
            target_utilisation=0.35,
            scale_down_utilisation=0.15,
            decision_interval_ms=200.0,
            window_ms=600.0,
        ),
    ),
)


def main() -> None:
    fleet = run_fleet_campaign(
        visformer(),
        MIXES,
        families=(DAILY,),
        members_per_family=3,
        duration_ms=4000.0,
        p99_slo_ms=120.0,
        generations=8,
        population_size=16,
        seed=0,
    )
    print(fleet_summary(fleet))

    # Replay the heterogeneous mix once more to show the autoscaler at work.
    hetero = next(mix for mix in fleet.mixes if mix.name == "hetero")
    from repro.campaign.fleet_runner import _mix_instances, _resolve_mixes

    _, entries, _ = _resolve_mixes(fleet.mixes)
    instances = _mix_instances(hetero, entries["hetero"], fleet.deployments)
    result = simulate_fleet(
        instances,
        DAILY.expand(fleet.seed, 1)[0],
        duration_ms=4000.0,
        router=hetero.router,
        autoscaler=hetero.autoscaler,
        seed=fleet.seed,
    )
    print()
    print(f"autoscaler trace for 'hetero' (initially {result.initial_active} warm):")
    if result.events:
        for event in result.events:
            print(
                f"  t={event.time_ms:8.1f} ms  {event.action:>4}  "
                f"{event.instance:<24} -> {event.active} active"
            )
    else:
        print("  (no scaling events; load never crossed the thresholds)")

    print()
    print("projected energy to serve 1,000,000 requests/day:")
    for cell in fleet.ranking(DAILY.name):
        slo = "within SLO" if cell.within_slo else "SLO MISS  "
        print(
            f"  {cell.mix_name:<10} {slo}  "
            f"{cell.daily_joules(1_000_000.0) / 1e6:7.3f} MJ/day"
        )
    best = fleet.best_mix(DAILY.name)
    print(f"\ndeploy: {best}")


if __name__ == "__main__":
    main()
