#!/usr/bin/env python3
"""Search for the mapping that survives the burst, not the one that naps well.

The default search optimises isolated per-sample averages: latency, energy,
accuracy.  Under bursty traffic that view lies — the energy-frugal winner's
bottleneck unit sustains ~80 req/s, so a 110 req/s flash crowd piles up a
queue two orders of magnitude deeper than its isolated latency suggests.

This example makes load a first-class objective instead:
``serving_objectives(family)`` appends the M/D/1 expected queueing wait at
the family's peak rate as a fourth NSGA-II axis, and
``select_serving_oriented`` picks the front member that still answers
quickly *while the burst is on*.  Both picks are then replayed through the
traffic simulator under the same seeded burst scenario, side by side.

Run with:  python examples/serving_aware_search.py
"""

from __future__ import annotations

from repro import MapAndConquer, select_serving_oriented, serving_objectives, visformer
from repro.core.report import objective_table, serving_table
from repro.search.pareto import select_energy_oriented
from repro.serving.families import OnOffBurstFamily
from repro.soc.presets import get_platform

#: Flash crowds above the frugal mappings' capacity, with idle recovery gaps.
FAMILY = OnOffBurstFamily(
    burst_rps=110.0, idle_rps=5.0, burst_ms=400.0, idle_ms=600.0, jitter=0.2
)
BUDGET = dict(generations=5, population_size=12, seed=0)


def main() -> None:
    framework = MapAndConquer(visformer(), get_platform("jetson-agx-xavier"), seed=0)

    # Blind search: the paper's trio, no notion of offered load.
    default = framework.search(strategy="nsga2", **BUDGET)
    energy_pick = select_energy_oriented(list(default.pareto))

    # Serving-aware search: same budget, plus expected_wait_ms at the
    # family's 110 req/s burst rate as a fourth objective.
    objectives = serving_objectives(FAMILY)
    aware = framework.search(strategy="nsga2", objectives=objectives, **BUDGET)
    serving_pick = select_serving_oriented(list(aware.pareto), FAMILY)

    print("serving-aware front (named objective columns):")
    print(objective_table(list(aware.pareto), objectives))
    print()

    # Replay the identical burst scenario against both picks.
    member = FAMILY.expand(seed=0, n=1)[0]
    rows = []
    for label, pick in (("energy-oriented", energy_pick), ("serving-aware", serving_pick)):
        metrics = framework.simulate_traffic(
            pick, member, duration_ms=5000.0, seed=0
        ).metrics()
        rows.append(
            {
                "pick": label,
                "isolated_ms": pick.latency_ms,
                "served_p99_ms": metrics.p99_latency_ms,
                "mJ_per_req": metrics.energy_per_request_mj,
                "acc_%": 100.0 * pick.accuracy,
            }
        )
    print(f"under {FAMILY.burst_rps:.0f} rps bursts:")
    print(serving_table(rows, front=list(aware.pareto), family=FAMILY))

    speedup = rows[0]["served_p99_ms"] / rows[1]["served_p99_ms"]
    print()
    print(
        f"the serving-aware pick serves a {speedup:.1f}x lower p99 than the "
        f"energy-oriented pick — the queue the isolated view cannot see"
    )


if __name__ == "__main__":
    main()
