#!/usr/bin/env python3
"""Measured serving in the loop: simulator-backed objectives + runtime policies.

Two upgrades over the proxy-based serving-aware search, demonstrated on the
regimes the benchmarks pin:

1. **Measured objectives.**  The M/D/1 ``expected_wait_ms`` proxy has no
   answer at saturation — it returns ``inf`` for every overloaded mapping,
   so near-saturation steady traffic collapses the fourth objective to a
   constant.  ``measured_serving_objectives`` replays each candidate through
   the deterministic traffic simulator instead (cached, so repeated
   configurations cost one lookup), and the measured pick serves a far
   lower p99 on a long replay than the proxy pick.

2. **The policy axis.**  ``serving_campaign(..., policies=...)`` replays
   every family member not just against the static winner but under
   adaptive runtime policies — a calm/surge switcher and a DVFS governor —
   and the summary's adaptivity table scores each policy against the best
   static point.  In a saturating regime the governor reaches a
   capacity/energy point that is on *no* searched front: it upclocks an
   energy-frugal winner under queue pressure where every static deployment
   drowns.

Run with:  python examples/policy_campaign.py
"""

from __future__ import annotations

from repro import (
    MapAndConquer,
    measured_serving_objectives,
    resnet20,
    select_measured_serving,
    select_serving_oriented,
    serving_objectives,
    traffic_ranking_summary,
    visformer,
    SteadyPoissonFamily,
)
from repro.soc.presets import get_platform

#: Near-saturation steady arrivals: the regime where the M/D/1 proxy and the
#: finite-horizon simulator disagree about which front member serves best.
MEASURED_FAMILY = SteadyPoissonFamily(rate_rps=90.0, jitter=0.1)
MEASURED_BUDGET = dict(strategy="nsga2", generations=3, population_size=8, seed=0)

#: Steady arrivals just above every static front point's capacity on the
#: little board — only an upclocking DVFS governor keeps up.
SATURATING_FAMILY = SteadyPoissonFamily(
    rate_rps=130.0, jitter=0.03, name="steady-saturating"
)


def measured_objectives_demo() -> None:
    platform = get_platform("mobile-big-little")
    framework = MapAndConquer(visformer(), platform, seed=0)

    proxy = framework.search(
        objectives=serving_objectives(MEASURED_FAMILY), **MEASURED_BUDGET
    )
    proxy_pick = select_serving_oriented(list(proxy.pareto), MEASURED_FAMILY)

    objectives = measured_serving_objectives(
        MEASURED_FAMILY, platform, duration_ms=400.0, seed=0
    )
    measured = framework.search(objectives=objectives, **MEASURED_BUDGET)
    cache = objectives.specs[-1].extractor.cache
    measured_pick = select_measured_serving(
        list(measured.pareto),
        platform,
        MEASURED_FAMILY,
        duration_ms=400.0,
        seed=0,
        cache=cache,
    )

    member = MEASURED_FAMILY.expand(seed=0, n=1)[0]
    for label, pick in (("proxy", proxy_pick), ("measured", measured_pick)):
        metrics = framework.simulate_traffic(
            pick, member, duration_ms=3000.0, seed=0
        ).metrics()
        print(
            f"{label:>8} pick {pick.config.describe()}: replayed p99 "
            f"{metrics.p99_latency_ms:.1f} ms"
        )
    print(
        f"  ({cache.stats.hits} cache hits saved re-simulating repeated "
        f"configurations; {cache.stats.misses} simulations ran)"
    )


def policy_campaign_demo() -> None:
    framework = MapAndConquer(resnet20(), seed=3)
    serving = framework.serving_campaign(
        ("mobile-big-little",),
        families=(SATURATING_FAMILY,),
        members_per_family=2,
        duration_ms=1500.0,
        generations=2,
        population_size=6,
        seed=3,
        metric="energy_per_request_mj",
        policies=("static", "switcher", "dvfs-governor"),
    )
    print(traffic_ranking_summary(serving))
    print()
    for policy in ("switcher", "dvfs-governor"):
        wins = serving.adaptivity_wins(policy)
        where = ", ".join(f"{p}/{f}" for p, f in wins) if wins else "nowhere"
        print(f"{policy} beats its cell's static winner: {where}")


def main() -> None:
    print("=== measured objectives vs the M/D/1 proxy (90 rps steady) ===")
    measured_objectives_demo()
    print()
    print("=== policy-axis campaign (130 rps saturating steady) ===")
    policy_campaign_demo()


if __name__ == "__main__":
    main()
