#!/usr/bin/env python3
"""Which platform should serve this traffic?

The search campaign answers "which mapping is Pareto-optimal on which
platform?" from isolated per-sample averages.  This example asks the
deployment question instead: it searches three boards — including a
``derive()``-throttled Xavier that wins the isolated-energy comparison by a
mile — then sweeps four workload families (steady Poisson, on/off bursts,
diurnal, multi-tenant) over every board's Pareto front and ranks the boards
by **served-p99-per-joule**: requests-per-joule discounted by the p99 tail
each board actually serves under that traffic.

The punchline is the last section of the summary: the isolated-energy best
board is *not* the board you should deploy on once bursts saturate its
queues.

Run with:  python examples/serving_campaign.py
"""

from __future__ import annotations

from repro import traffic_ranking_summary, visformer
from repro.campaign import run_serving_campaign
from repro.serving.families import (
    DiurnalFamily,
    MultiTenantMixFamily,
    OnOffBurstFamily,
    SteadyPoissonFamily,
)
from repro.soc.presets import derive, get_platform

FAMILIES = (
    SteadyPoissonFamily(rate_rps=15.0, jitter=0.2),
    OnOffBurstFamily(burst_rps=150.0, idle_rps=10.0, burst_ms=400.0, idle_ms=600.0),
    DiurnalFamily(peak_rps=60.0, trough_fraction=0.2, period_ms=2000.0),
    MultiTenantMixFamily(steady_rps=10.0, burst_rps=80.0, burst_ms=400.0, idle_ms=800.0),
)


def main() -> None:
    throttled = derive(
        get_platform("jetson-agx-xavier"),
        "xavier-throttled",
        gflops_scale=0.35,
        power_scale=0.08,
    )
    serving = run_serving_campaign(
        visformer(),
        ("jetson-agx-xavier", throttled, "jetson-agx-orin"),
        families=FAMILIES,
        members_per_family=3,
        duration_ms=5000.0,
        generations=8,
        population_size=16,
        seed=0,
    )
    print(traffic_ranking_summary(serving))

    energy_best = serving.isolated_energy_best()
    print()
    for family in serving.family_names:
        winner = serving.best_platform(family)
        verdict = "agrees with" if winner == energy_best else "OVERTURNS"
        print(f"{family}: traffic {verdict} the isolated-energy choice ({winner})")


if __name__ == "__main__":
    main()
