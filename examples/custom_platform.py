#!/usr/bin/env python3
"""Define a custom MPSoC and map a model onto it.

The paper evaluates on the Jetson AGX Xavier, but nothing in the framework is
Xavier-specific: the platform model is data.  This example builds a
hypothetical edge MPSoC with one big GPU, one NPU-style accelerator and one
efficiency CPU cluster, then maps the ResNet-20 extension model onto it and
compares the result with the single-unit baselines.  It shows every knob a
platform definition exposes: throughput, bandwidth, launch overheads,
per-layer-kind utilisation, the linear power model and the DVFS table.

Run with:  python examples/custom_platform.py
"""

from __future__ import annotations

from repro import MapAndConquer, resnet20
from repro.core.report import format_table, table2_row
from repro.soc import (
    ComputeUnit,
    ComputeUnitKind,
    DvfsTable,
    Interconnect,
    Platform,
    PowerModel,
    SharedMemory,
)


def build_platform() -> Platform:
    """A hypothetical 3-unit edge MPSoC (big GPU + NPU + efficiency CPU)."""
    gpu = ComputeUnit(
        name="gpu",
        kind=ComputeUnitKind.GPU,
        peak_gflops=60.0,
        memory_bandwidth_gbs=150.0,
        launch_overhead_ms=0.06,
        power=PowerModel(static_w=3.0, dynamic_w=12.0),
        dvfs=DvfsTable.from_frequencies([420, 650, 900, 1100, 1300]),
        utilisation={"conv2d": 1.0, "attention": 0.8, "feedforward": 0.85, "linear": 0.5},
    )
    npu = ComputeUnit(
        name="npu",
        kind=ComputeUnitKind.DLA,
        peak_gflops=25.0,
        memory_bandwidth_gbs=60.0,
        launch_overhead_ms=0.15,
        power=PowerModel(static_w=0.3, dynamic_w=1.2),
        dvfs=DvfsTable.from_frequencies([400, 600, 800, 1000]),
        utilisation={"conv2d": 1.0, "attention": 0.2, "feedforward": 0.45, "linear": 0.35},
    )
    cpu = ComputeUnit(
        name="cpu",
        kind=ComputeUnitKind.CPU,
        peak_gflops=4.0,
        memory_bandwidth_gbs=25.0,
        launch_overhead_ms=0.02,
        power=PowerModel(static_w=0.8, dynamic_w=2.2),
        dvfs=DvfsTable.from_frequencies([800, 1200, 1600, 2000]),
        utilisation={"conv2d": 0.6, "attention": 0.5, "feedforward": 0.55, "linear": 0.7},
    )
    return Platform(
        name="custom-edge-mpsoc",
        compute_units=(gpu, npu, cpu),
        interconnect=Interconnect(bandwidth_gbs=80.0, sync_overhead_ms=0.04),
        shared_memory=SharedMemory(capacity_bytes=8 * 2**30, feature_budget_bytes=8 * 2**20),
    )


def main() -> None:
    platform = build_platform()
    print(platform.describe())
    print()

    framework = MapAndConquer(resnet20(), platform, seed=0)
    gpu_only = framework.baseline("gpu")
    npu_only = framework.baseline("npu")
    cpu_only = framework.baseline("cpu")
    result = framework.search(generations=15, population_size=20, seed=0)
    best = framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)

    rows = [
        table2_row("None", "GPU", gpu_only, use_worst_case=True),
        table2_row("None", "NPU", npu_only, use_worst_case=True),
        table2_row("None", "CPU", cpu_only, use_worst_case=True),
        table2_row("Map-and-Conquer", "Ours-E", best),
    ]
    print("ResNet-20 on the custom platform:")
    print(format_table(rows))
    print()
    print(f"selected mapping: {best.config.describe()}")
    print(
        f"energy gain vs GPU-only: {gpu_only.energy_mj / best.energy_mj:.2f}x, "
        f"speedup vs NPU-only: {npu_only.latency_ms / best.latency_ms:.2f}x"
    )


if __name__ == "__main__":
    main()
