#!/usr/bin/env python3
"""Energy-oriented mapping of VGG19 with the surrogate predictor in the loop.

Reproduces the Sect. VI-D generalisation study at example scale and, unlike
the quickstart, uses the learned GBDT hardware surrogate (the paper's XGBoost
stand-in) instead of the analytical oracle for every evaluation inside the
search.  It also prints the per-stage breakdown of the selected deployment:
which compute unit hosts each stage, at which DVFS point, and how samples
distribute over the exits.

Run with:  python examples/vgg19_energy_mapping.py
"""

from __future__ import annotations

from repro import MapAndConquer, jetson_agx_xavier, vgg19
from repro.core.report import format_table


def main() -> None:
    network = vgg19()
    platform = jetson_agx_xavier()

    framework = MapAndConquer(
        network,
        platform,
        use_surrogate=True,       # GBDT predictor trained on a generated dataset
        surrogate_samples=800,
        seed=0,
    )

    gpu_only = framework.baseline("gpu")
    dla_only = framework.baseline("dla0")
    result = framework.search(generations=15, population_size=20, seed=0)
    best = framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)

    print("VGG19 on the AGX Xavier (surrogate-in-the-loop search)")
    print(
        f"  GPU-only : {gpu_only.energy_mj:7.1f} mJ  {gpu_only.latency_ms:6.1f} ms"
    )
    print(
        f"  DLA-only : {dla_only.energy_mj:7.1f} mJ  {dla_only.latency_ms:6.1f} ms"
    )
    print(
        f"  Ours-E   : {best.energy_mj:7.1f} mJ  {best.latency_ms:6.1f} ms  "
        f"acc {100 * best.accuracy:.2f} %  reuse {100 * best.reuse_fraction:.0f} %"
    )
    print(
        f"  energy gain vs GPU-only: {gpu_only.energy_mj / best.energy_mj:.2f}x, "
        f"speedup vs DLA-only: {dla_only.latency_ms / best.latency_ms:.2f}x"
    )
    print()

    statistics = best.inference.exit_statistics
    rows = []
    for stage in best.profile.stages:
        rows.append(
            {
                "stage": f"S{stage.stage_index + 1}",
                "compute_unit": stage.unit_name,
                "dvfs_scale": stage.dvfs_scale,
                "stage_latency_ms": stage.latency_ms,
                "stage_energy_mJ": stage.energy_mj,
                "exit_accuracy_%": 100 * statistics.stage_accuracies[stage.stage_index],
                "samples_exiting_%": 100 * statistics.exit_fractions[stage.stage_index],
            }
        )
    print("Per-stage deployment of the selected configuration:")
    print(format_table(rows))
    print()
    print(
        f"{100 * statistics.early_exit_fraction:.0f} % of samples terminate before the "
        f"last stage (the paper reports > 80 % for VGG19), which is where the "
        f"energy gains come from."
    )


if __name__ == "__main__":
    main()
