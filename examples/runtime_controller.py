#!/usr/bin/env python3
"""Deploying a searched mapping behind a realistic runtime exit controller.

The paper's analysis assumes ideal input mapping: every sample runs exactly
the stages it needs (Sect. III-B).  A deployed system instead decides at run
time from exit confidences.  This example takes the best energy-oriented
mapping found for Visformer and simulates it behind confidence-threshold
controllers of different strictness, quantifying how much of the idealised
energy gain survives a realistic policy and where the premature-exit /
escalation errors come from.

Run with:  python examples/runtime_controller.py
"""

from __future__ import annotations

from repro import MapAndConquer, jetson_agx_xavier, visformer
from repro.core.report import format_table
from repro.dynamics import AccuracyModel, ThresholdExitController


def main() -> None:
    framework = MapAndConquer(visformer(), jetson_agx_xavier(), seed=0)
    gpu_only = framework.baseline("gpu")

    result = framework.search(generations=15, population_size=20, seed=0)
    best = framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)
    stage_accuracies = AccuracyModel().stage_accuracies(best.dynamic_network)

    rows = [
        {
            "policy": "ideal input mapping (paper)",
            "accuracy_%": 100 * best.accuracy,
            "avg_energy_mJ": best.energy_mj,
            "avg_latency_ms": best.latency_ms,
            "avg_stages": best.inference.exit_statistics.expected_stages(),
            "premature_exits_%": 0.0,
        }
    ]
    for threshold in (0.5, 0.7, 0.9):
        controller = ThresholdExitController(threshold=threshold, confidence_noise=0.1, seed=0)
        outcome = controller.simulate(stage_accuracies, best.profile, num_samples=10_000)
        rows.append(
            {
                "policy": f"confidence threshold {threshold:.1f}",
                "accuracy_%": 100 * outcome.accuracy,
                "avg_energy_mJ": outcome.expected_energy_mj,
                "avg_latency_ms": outcome.expected_latency_ms,
                "avg_stages": outcome.expected_stages,
                "premature_exits_%": 100 * outcome.premature_exit_fraction,
            }
        )

    print(f"selected mapping: {best.config.describe()}")
    print()
    print(format_table(rows))
    print()
    ideal_gain = gpu_only.energy_mj / best.energy_mj
    realistic_gain = gpu_only.energy_mj / rows[2]["avg_energy_mJ"]
    print(
        f"energy gain vs GPU-only: {ideal_gain:.2f}x under ideal input mapping, "
        f"{realistic_gain:.2f}x behind the 0.7-threshold controller"
    )
    print(
        "Raising the threshold trades premature exits (accuracy) against "
        "escalations (energy/latency) -- the knob a deployment would tune."
    )


if __name__ == "__main__":
    main()
