#!/usr/bin/env python3
"""Resume an interrupted campaign and warm-start related platforms.

A big platform x scenario grid is hours of search; this example shows the
three production features of ``run_campaign`` that make it survivable:

* ``checkpoint_dir=`` persists every finished ``(platform, scenario)`` cell,
  so a second invocation restarts exactly where the first stopped — here the
  "interruption" is simply running the same campaign twice and watching the
  second invocation restore every cell instead of searching;
* ``cell_workers=`` fans independent cells over a process pool with
  bit-for-bit identical output;
* ``warm_start=True`` seeds each platform's initial population with the
  translated Pareto points of the platforms before it in the list, which is
  how a front searched on the Xavier accelerates the Orin's search.

Run with:  python examples/resumable_campaign.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import campaign_summary, visformer
from repro.campaign import run_campaign

GRID = ("jetson-agx-xavier", "jetson-agx-orin", "mobile-big-little")
BUDGET = dict(generations=8, population_size=16, seed=0)


def timed(label: str, **kwargs):
    started = time.perf_counter()
    campaign = run_campaign(visformer(), GRID, **BUDGET, **kwargs)
    print(f"{label}: {time.perf_counter() - started:.1f}s")
    return campaign


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint_dir = Path(scratch) / "campaign-checkpoints"

        # First run: every cell is searched, checkpointed as it finishes,
        # and independent cells run two at a time.
        first = timed(
            "initial run (cell_workers=2, checkpointed)",
            checkpoint_dir=checkpoint_dir,
            cell_workers=2,
        )

        # "After the crash": same invocation, same directory.  Every cell is
        # restored from disk, nothing is searched, and the summary is
        # byte-identical — which is the whole point.
        resumed = timed("resumed run (all cells restored)", checkpoint_dir=checkpoint_dir)
        assert campaign_summary(resumed) == campaign_summary(first)
        print("resumed summary is byte-identical to the uninterrupted run\n")

    # Warm starts: platforms after the first are seeded with translated
    # Pareto points from the platforms before them (the first stays cold, so
    # its result is unchanged — compare the summaries to see what moved).
    warm = run_campaign(visformer(), GRID, warm_start=True, **BUDGET)
    print(campaign_summary(warm))


if __name__ == "__main__":
    main()
