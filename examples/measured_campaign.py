#!/usr/bin/env python3
"""A campaign that searches under *measured* serving objectives.

``measured_serving_objectives`` binds one concrete platform, so a campaign —
which fans the same search across a grid of boards — cannot take a ready
set.  ``MeasuredObjectives`` is the campaign form: a frozen recipe (family,
replay horizon, member count) every cell binds to its *own* platform at
fan-out time, so each board's NSGA-II ranks candidates by the queueing wait
the traffic simulator actually measured on that board.

One ``ServingResultCache`` is shared campaign-wide: the measured searches
fill it, and the serving replays afterwards rank every front from entries
the searches already paid for (``peak_member`` replays each family member
under the same ``member_traffic_seed`` stream the serving sweep uses).  The
summary shows the payoff directly — a per-cell ``sim_cache`` column and a
campaign-wide "lookups avoided a simulation" line, both byte-identical
across serial, cell-parallel and checkpoint-resumed runs.

Run with:  python examples/measured_campaign.py
"""

from __future__ import annotations

from repro import MapAndConquer, MeasuredObjectives, visformer
from repro.core.report import campaign_summary, traffic_ranking_summary
from repro.serving.families import SteadyPoissonFamily

#: Near-saturation steady traffic — the regime where the M/D/1 proxy goes
#: blind (rho >= 1 collapses the wait objective to a constant) and only a
#: measured replay can still rank candidates.
FAMILY = SteadyPoissonFamily(rate_rps=40.0, jitter=0.1)

#: The replay budget is shared between the search-time measurements and the
#: serving sweep below; matching them is what lets the serving replays reuse
#: the search-time simulations through the shared cache.
DURATION_MS = 400.0
MEMBERS = 2


def main() -> None:
    measured = MeasuredObjectives(
        family=FAMILY, duration_ms=DURATION_MS, members=MEMBERS
    )
    framework = MapAndConquer(visformer())
    serving = framework.serving_campaign(
        ["mobile-big-little"],  # plus the framework's default Xavier
        families=[FAMILY],
        measured_objectives=measured,
        members_per_family=MEMBERS,
        duration_ms=DURATION_MS,
        generations=4,
        population_size=10,
        seed=3,
    )

    # The search grid: note the sim_cache column — per cell, how many
    # measured-objective lookups were answered without a fresh simulation.
    print(campaign_summary(serving.campaign))
    print()
    # The serving sweep over the measured fronts, plus the campaign-wide
    # cache-efficiency line.
    print(traffic_ranking_summary(serving))

    stats = [
        cell.measured_cache_stats
        for cell in serving.campaign.cells
        if cell.measured_cache_stats is not None
    ]
    lookups = sum(item.lookups for item in stats)
    unique = sum(item.unique for item in stats)
    print()
    print(
        f"search phase: {lookups} measured lookups collapsed onto {unique} "
        f"unique replays ({lookups - unique} simulator calls avoided)"
    )


if __name__ == "__main__":
    main()
