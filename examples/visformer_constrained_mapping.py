#!/usr/bin/env python3
"""Constrained mapping of Visformer under feature-map-reuse budgets.

Reproduces the Fig. 6 experiment flow at example scale: three searches with
no reuse constraint, at most 75 % reuse and at most 50 % reuse, followed by a
comparison of the best energy-oriented model of each scenario against the
GPU-only and DLA-only baselines.  The example also shows how to impose the
paper's latency / energy targets (Eq. 15) through ``SearchConstraints``.

Run with:  python examples/visformer_constrained_mapping.py
"""

from __future__ import annotations

from repro import MapAndConquer, SearchConstraints, jetson_agx_xavier, visformer
from repro.core.report import format_table

SCENARIOS = (
    ("no constraint", None),
    ("<= 75% reuse", 0.75),
    ("<= 50% reuse", 0.50),
)


def main() -> None:
    platform = jetson_agx_xavier()
    reference = MapAndConquer(visformer(), platform, seed=0)
    gpu_only = reference.baseline("gpu")
    dla_only = reference.baseline("dla0")

    rows = []
    for label, reuse_cap in SCENARIOS:
        framework = MapAndConquer(
            visformer(), platform, max_reuse_fraction=reuse_cap, seed=0
        )
        constraints = SearchConstraints(
            max_reuse_fraction=reuse_cap,
            # Eq. 15 style targets: stay below the DLA-only latency and the
            # GPU-only energy even in the worst case (all stages running).
            latency_target_ms=dla_only.latency_ms,
            energy_target_mj=gpu_only.energy_mj,
        )
        result = framework.search(
            generations=15, population_size=20, constraints=constraints, seed=0
        )
        best = framework.select_energy_oriented(result.pareto, max_accuracy_drop=0.02)
        rows.append(
            {
                "scenario": label,
                "accuracy_%": 100 * best.accuracy,
                "avg_energy_mJ": best.energy_mj,
                "avg_latency_ms": best.latency_ms,
                "fmap_reuse_%": 100 * best.reuse_fraction,
                "energy_gain_vs_gpu_x": gpu_only.energy_mj / best.energy_mj,
                "speedup_vs_dla_x": dla_only.latency_ms / best.latency_ms,
            }
        )

    print("Baselines (worst case, no early exits):")
    print(
        f"  GPU-only: {gpu_only.energy_mj:7.1f} mJ  {gpu_only.latency_ms:6.1f} ms  "
        f"acc {100 * gpu_only.accuracy:.2f} %"
    )
    print(
        f"  DLA-only: {dla_only.energy_mj:7.1f} mJ  {dla_only.latency_ms:6.1f} ms  "
        f"acc {100 * dla_only.accuracy:.2f} %"
    )
    print()
    print("Energy-oriented Map-and-Conquer models per reuse scenario:")
    print(format_table(rows))
    print()
    print(
        "Tightening the reuse budget reduces inter-CU traffic but costs "
        "accuracy, exactly the trade-off the paper highlights in Fig. 6."
    )


if __name__ == "__main__":
    main()
