#!/usr/bin/env python3
"""Surrogate-accelerated campaigns: the same fronts for a fraction of the oracle.

A campaign cell spends essentially all of its time in the analytical oracle —
every candidate of every generation runs the full partition/profile/simulate
pipeline.  This example runs the same two-platform campaign twice at one
seed: once pure-oracle, once with per-platform GBDT surrogates in the loop
(``SurrogateSettings``), where the true oracle is only spent on a short
bootstrap plus periodic re-validation of the surrogate-incumbent Pareto
front.

The punchline is the side-by-side: ~2.5x fewer oracle evaluations and a 5x
candidate-throughput multiplier, with per-cell hypervolume within a few
percent of the pure-oracle front (the ``hv_vs_oracle`` column — on one cell
the surrogate front is even *better*, because validation spends its oracle
budget on predicted-Pareto candidates instead of whole populations).

Run with:  python examples/surrogate_campaign.py
"""

from __future__ import annotations

from repro import SurrogateSettings, run_campaign, surrogate_summary, visformer

BUDGET = dict(generations=30, population_size=12)
GRID = ("jetson-agx-xavier", "mobile-big-little")


def main() -> None:
    network = visformer()

    baseline = run_campaign(network, GRID, seed=0, **BUDGET)
    accelerated = run_campaign(
        network,
        GRID,
        seed=0,
        surrogate=SurrogateSettings(
            bootstrap_generations=4,
            validate_every=6,
            validation_cap=8,
        ),
        **BUDGET,
    )

    print(surrogate_summary(accelerated, baseline=baseline))
    print()

    baseline_oracle = sum(cell.result.num_evaluations for cell in baseline.cells)
    reports = [cell.surrogate_report for cell in accelerated.cells]
    surrogate_oracle = sum(report.oracle_evaluations for report in reports)
    print(
        f"oracle evaluations: {baseline_oracle} -> {surrogate_oracle} "
        f"({baseline_oracle / surrogate_oracle:.1f}x fewer)"
    )
    for cell, report in zip(accelerated.cells, reports):
        print(
            f"  {cell.platform_name}: {report.validations} validation rounds, "
            f"rank correlation {report.rank_correlation:.3f}, "
            f"front regret {report.front_regret:.4f}"
        )


if __name__ == "__main__":
    main()
