"""Model registry: look up model builders by name.

Keeping the registry separate from the builders avoids import cycles and
gives the CLI-style entry points (examples, benchmarks) a single place to
resolve ``--model visformer`` style arguments.
"""

from __future__ import annotations

from typing import Callable, Dict

from ...errors import ConfigurationError
from ..graph import NetworkGraph
from .resnet import resnet20
from .vgg import vgg19
from .visformer import visformer

__all__ = ["MODEL_BUILDERS", "build_model"]

#: Mapping from model name to its builder function.
MODEL_BUILDERS: Dict[str, Callable[..., NetworkGraph]] = {
    "visformer": visformer,
    "vgg19": vgg19,
    "resnet20": resnet20,
}


def build_model(name: str, **kwargs) -> NetworkGraph:
    """Build the model called ``name`` with builder keyword arguments.

    Raises
    ------
    ConfigurationError
        If ``name`` is not a registered model.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise ConfigurationError(f"unknown model {name!r}; available models: {known}") from None
    return builder(**kwargs)
