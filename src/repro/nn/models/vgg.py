"""VGG19 builder (CNN-based architecture used in the paper).

VGG19 on CIFAR-100 follows the standard 16-convolution / 3-fully-connected
configuration with max-pooling after each convolutional block.  Pooling is
folded into the layer chain by halving the spatial size of the layer *after*
each pooling point, which is how the analytical FLOP and feature-map sizes are
derived.  The classifier is the usual 512-512-classes stack used for CIFAR
variants of VGG.
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import Conv2dLayer, LinearLayer

__all__ = ["vgg19"]

#: Baseline top-1 accuracy of VGG19 on CIFAR-100 reported in Table II.
VGG19_BASE_ACCURACY = 0.8055

#: Standard VGG19 configuration: channel count per conv layer, "M" = max-pool.
_VGG19_CFG = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
]


def vgg19(
    num_classes: int = 100,
    image_size: int = 32,
    base_accuracy: float = VGG19_BASE_ACCURACY,
) -> NetworkGraph:
    """Build the VGG19 network graph used for the CNN generalisation study."""
    if image_size % 32 != 0:
        raise ValueError(f"image_size must be divisible by 32, got {image_size}")

    layers = []
    in_channels = 3
    spatial = image_size
    conv_index = 0
    for item in _VGG19_CFG:
        if item == "M":
            spatial //= 2
            continue
        out_channels = int(item)
        conv_index += 1
        layers.append(
            Conv2dLayer(
                name=f"conv{conv_index}",
                width=out_channels,
                in_width=in_channels,
                kernel_size=3,
                stride=1,
                in_spatial=(spatial, spatial),
                out_spatial=(spatial, spatial),
                fused_overhead=1.05,
            )
        )
        in_channels = out_channels
    # After the final pool the feature map is 1x1x512 for 32x32 inputs, so the
    # classifier operates on 512-dimensional vectors.
    layers.extend(
        [
            LinearLayer(name="fc1", width=512, in_width=512, tokens=1, fused_overhead=1.02),
            LinearLayer(name="fc2", width=512, in_width=512, tokens=1, fused_overhead=1.02),
            LinearLayer(name="fc3", width=num_classes, in_width=512, tokens=1),
        ]
    )
    return NetworkGraph(
        name="vgg19",
        layers=tuple(layers),
        input_shape=(3, image_size, image_size),
        num_classes=num_classes,
        base_accuracy=base_accuracy,
        family="cnn",
    )
