"""Visformer builder (ViT-based architecture used in the paper).

The layer chain follows the Visformer design of convolutional early stages
followed by transformer stages, scaled to CIFAR-100's 32x32 inputs.  The
absolute channel counts follow the Visformer-Tiny configuration (96 / 192 /
384 embedding widths, MLP expansion 4, head dimension 32); token counts are
derived from the CIFAR-sized spatial resolution at each stage.

The builder only produces a *symbolic* description -- enough to drive the
hardware cost and accuracy models -- not an executable network.
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer

__all__ = ["visformer"]

#: Baseline top-1 accuracy of Visformer on CIFAR-100 reported in Table II.
VISFORMER_BASE_ACCURACY = 0.8809


def visformer(
    num_classes: int = 100,
    image_size: int = 32,
    base_accuracy: float = VISFORMER_BASE_ACCURACY,
) -> NetworkGraph:
    """Build the Visformer network graph used throughout the paper.

    Parameters
    ----------
    num_classes:
        Output classes (100 for CIFAR-100).
    image_size:
        Square input resolution; CIFAR-100 uses 32.
    base_accuracy:
        Baseline accuracy of the pretrained model (``Acc_base`` in Eq. 16).
    """
    if image_size % 8 != 0:
        raise ValueError(f"image_size must be divisible by 8, got {image_size}")

    stage1_hw = image_size // 2
    stage2_hw = image_size // 4
    stage3_hw = image_size // 8
    stage2_tokens = stage2_hw * stage2_hw
    stage3_tokens = stage3_hw * stage3_hw

    layers = [
        # Convolutional stem: 3 -> 32 channels at full resolution.
        Conv2dLayer(
            name="stem",
            width=32,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(image_size, image_size),
            out_spatial=(image_size, image_size),
            fused_overhead=1.05,
        ),
        # Patch embedding into stage 1 (downsample x2, 96 channels).
        Conv2dLayer(
            name="embed1",
            width=96,
            in_width=32,
            kernel_size=2,
            stride=2,
            in_spatial=(image_size, image_size),
            out_spatial=(stage1_hw, stage1_hw),
            fused_overhead=1.05,
        ),
        # Stage 1: convolutional Visformer blocks.
        Conv2dLayer(
            name="stage1.block1",
            width=96,
            in_width=96,
            kernel_size=3,
            stride=1,
            in_spatial=(stage1_hw, stage1_hw),
            out_spatial=(stage1_hw, stage1_hw),
            groups=8,
            fused_overhead=1.10,
        ),
        Conv2dLayer(
            name="stage1.block2",
            width=96,
            in_width=96,
            kernel_size=3,
            stride=1,
            in_spatial=(stage1_hw, stage1_hw),
            out_spatial=(stage1_hw, stage1_hw),
            groups=8,
            fused_overhead=1.10,
        ),
        # Patch embedding into stage 2 (downsample x2, 192 channels).
        Conv2dLayer(
            name="embed2",
            width=192,
            in_width=96,
            kernel_size=2,
            stride=2,
            in_spatial=(stage1_hw, stage1_hw),
            out_spatial=(stage2_hw, stage2_hw),
            fused_overhead=1.05,
        ),
        # Stage 2: attention + MLP blocks, 6 heads of 32 channels each.
        AttentionLayer(
            name="stage2.attn1",
            width=192,
            in_width=192,
            tokens=stage2_tokens,
            num_heads=6,
            fused_overhead=1.10,
        ),
        FeedForwardLayer(
            name="stage2.mlp1",
            width=192,
            in_width=192,
            tokens=stage2_tokens,
            expansion=4.0,
            fused_overhead=1.05,
        ),
        AttentionLayer(
            name="stage2.attn2",
            width=192,
            in_width=192,
            tokens=stage2_tokens,
            num_heads=6,
            fused_overhead=1.10,
        ),
        FeedForwardLayer(
            name="stage2.mlp2",
            width=192,
            in_width=192,
            tokens=stage2_tokens,
            expansion=4.0,
            fused_overhead=1.05,
        ),
        # Patch embedding into stage 3 (downsample x2, 384 channels).
        Conv2dLayer(
            name="embed3",
            width=384,
            in_width=192,
            kernel_size=2,
            stride=2,
            in_spatial=(stage2_hw, stage2_hw),
            out_spatial=(stage3_hw, stage3_hw),
            fused_overhead=1.05,
        ),
        # Stage 3: attention + MLP blocks, 12 heads of 32 channels each.
        AttentionLayer(
            name="stage3.attn1",
            width=384,
            in_width=384,
            tokens=stage3_tokens,
            num_heads=12,
            fused_overhead=1.10,
        ),
        FeedForwardLayer(
            name="stage3.mlp1",
            width=384,
            in_width=384,
            tokens=stage3_tokens,
            expansion=4.0,
            fused_overhead=1.05,
        ),
        AttentionLayer(
            name="stage3.attn2",
            width=384,
            in_width=384,
            tokens=stage3_tokens,
            num_heads=12,
            fused_overhead=1.10,
        ),
        FeedForwardLayer(
            name="stage3.mlp2",
            width=384,
            in_width=384,
            tokens=stage3_tokens,
            expansion=4.0,
            fused_overhead=1.05,
        ),
        # Classification head on globally pooled features.
        LinearLayer(
            name="head",
            width=num_classes,
            in_width=384,
            tokens=1,
        ),
    ]
    return NetworkGraph(
        name="visformer",
        layers=tuple(layers),
        input_shape=(3, image_size, image_size),
        num_classes=num_classes,
        base_accuracy=base_accuracy,
        family="vit",
    )
