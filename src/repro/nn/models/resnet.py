"""ResNet-20 builder (extension model, not part of the paper's evaluation).

ResNet-20 is the classic CIFAR-scale residual network.  It is included as a
third architecture to exercise the public API on a model family with residual
connections folded into per-layer overheads; the examples and ablation
benches use it to show the framework generalises beyond the two architectures
reported in the paper.
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import Conv2dLayer, LinearLayer

__all__ = ["resnet20"]


def resnet20(
    num_classes: int = 100,
    image_size: int = 32,
    base_accuracy: float = 0.68,
) -> NetworkGraph:
    """Build a ResNet-20 network graph (3 groups of 3 basic blocks)."""
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")

    layers = [
        Conv2dLayer(
            name="stem",
            width=16,
            in_width=3,
            kernel_size=3,
            stride=1,
            in_spatial=(image_size, image_size),
            out_spatial=(image_size, image_size),
            fused_overhead=1.05,
        )
    ]
    group_channels = (16, 32, 64)
    spatial = image_size
    in_channels = 16
    for group_index, channels in enumerate(group_channels, start=1):
        for block_index in range(1, 4):
            downsample = group_index > 1 and block_index == 1
            in_spatial = spatial
            if downsample:
                spatial //= 2
            for conv_index in (1, 2):
                stride = 2 if downsample and conv_index == 1 else 1
                layers.append(
                    Conv2dLayer(
                        name=f"group{group_index}.block{block_index}.conv{conv_index}",
                        width=channels,
                        in_width=in_channels,
                        kernel_size=3,
                        stride=stride,
                        in_spatial=(in_spatial if conv_index == 1 else spatial,) * 2,
                        out_spatial=(spatial, spatial),
                        # Residual additions and shortcut projections folded in.
                        fused_overhead=1.12,
                    )
                )
                in_channels = channels
    layers.append(LinearLayer(name="head", width=num_classes, in_width=64, tokens=1))
    return NetworkGraph(
        name="resnet20",
        layers=tuple(layers),
        input_shape=(3, image_size, image_size),
        num_classes=num_classes,
        base_accuracy=base_accuracy,
        family="cnn",
    )
