"""Model zoo: symbolic builders for the architectures evaluated in the paper.

The paper validates Map-and-Conquer on two architectures on CIFAR-100:

* **Visformer** (Chen et al., ICCV 2021) -- a vision-friendly transformer
  mixing convolutional early stages and attention/MLP later stages; built by
  :func:`visformer`.
* **VGG19** (Simonyan & Zisserman, ICLR 2015) -- a deep plain CNN; built by
  :func:`vgg19`.

A ResNet-style builder is provided as an extension model for examples and
ablations.  All builders return a :class:`~repro.nn.graph.NetworkGraph` whose
layer chain is the sequence of partitionable layers, with normalisation /
activation / pooling folded into the adjoining layer descriptors.
"""

from .visformer import visformer
from .vgg import vgg19
from .resnet import resnet20
from .registry import MODEL_BUILDERS, build_model

__all__ = ["visformer", "vgg19", "resnet20", "MODEL_BUILDERS", "build_model"]
