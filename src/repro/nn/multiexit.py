"""Static-to-dynamic transformation: stages, sub-layers and exit heads.

Given a network, a :class:`~repro.nn.partition.PartitionScheme` and a channel
ranking, this module materialises the dynamic multi-exit network of Eq. 5-6:
every stage ``S_i`` is the chain of its sub-layers ``l^j_i`` augmented with an
exit classifier at its tail, so the stage can terminate the inference when the
runtime controller deems its prediction sufficient.

The produced :class:`DynamicNetwork` is still symbolic; it records, for every
sub-layer, the input width actually available (own channels plus reused
features from earlier stages), its FLOPs / parameters / feature-map bytes, and
the cross-stage bytes that must move between compute units.  These numbers
feed the hardware model in :mod:`repro.perf` and the accuracy model in
:mod:`repro.dynamics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .channels import ChannelRanking
from .graph import NetworkGraph
from .layers import Layer, LinearLayer
from .partition import IndicatorMatrix, PartitionMatrix, PartitionScheme

__all__ = ["SubLayer", "Stage", "DynamicNetwork", "build_dynamic_network"]


@dataclass(frozen=True)
class SubLayer:
    """One sub-layer ``l^j_i``: stage ``i``'s slice of backbone layer ``j``."""

    base: Layer
    stage_index: int
    layer_index: int
    in_units: int
    out_units: int
    reused_input_bytes: int

    @property
    def name(self) -> str:
        """Qualified name ``<layer>@stage<i>``."""
        return f"{self.base.name}@stage{self.stage_index}"

    def flops(self) -> float:
        """FLOPs of this sub-layer for one input sample."""
        return self.base.flops(in_units=self.in_units, out_units=self.out_units)

    def params(self) -> float:
        """Parameters held by this sub-layer."""
        return self.base.params(in_units=self.in_units, out_units=self.out_units)

    def output_bytes(self) -> int:
        """Bytes of the feature map this sub-layer produces."""
        return self.base.output_bytes(self.out_units)

    def output_elements(self) -> int:
        """Elements of the feature map this sub-layer produces."""
        return self.base.output_elements(self.out_units)


@dataclass(frozen=True)
class Stage:
    """One inference stage ``S_i``: a sub-layer chain plus its exit head."""

    index: int
    sublayers: Tuple[SubLayer, ...]
    exit_head: LinearLayer

    def __post_init__(self) -> None:
        if not self.sublayers:
            raise ConfigurationError(f"stage {self.index} must contain at least one sub-layer")

    @property
    def num_sublayers(self) -> int:
        """Number of backbone sub-layers (excluding the exit head)."""
        return len(self.sublayers)

    def flops(self) -> float:
        """Total FLOPs of the stage, including its exit head."""
        return sum(sub.flops() for sub in self.sublayers) + self.exit_head.flops()

    def params(self) -> float:
        """Total parameters of the stage, including its exit head."""
        return sum(sub.params() for sub in self.sublayers) + self.exit_head.params()

    def imported_bytes(self) -> int:
        """Bytes of features imported from earlier stages across all layers."""
        return sum(sub.reused_input_bytes for sub in self.sublayers)


@dataclass(frozen=True)
class DynamicNetwork:
    """The dynamic multi-exit network ``NN_dyn`` deployed on the MPSoC."""

    network: NetworkGraph
    scheme: PartitionScheme
    stages: Tuple[Stage, ...]
    ranking: Optional[ChannelRanking] = None
    reordered: bool = True

    def __post_init__(self) -> None:
        if len(self.stages) != self.scheme.num_stages:
            raise ConfigurationError(
                f"expected {self.scheme.num_stages} stages, got {len(self.stages)}"
            )

    @property
    def num_stages(self) -> int:
        """Number of inference stages ``M``."""
        return len(self.stages)

    @property
    def num_layers(self) -> int:
        """Number of backbone layers per stage."""
        return self.scheme.num_layers

    def reuse_fraction(self) -> float:
        """Fraction of forwardable feature maps reused (Table II column)."""
        return self.scheme.reuse_fraction()

    def stored_feature_bytes(self) -> int:
        """Shared-memory footprint of forwarded features (Eq. 15 constraint)."""
        return self.scheme.stored_feature_bytes()

    def total_flops_through(self, stage: int) -> float:
        """FLOPs spent when the inference terminates at ``stage`` (inclusive)."""
        self._check_stage(stage)
        return float(sum(self.stages[k].flops() for k in range(stage + 1)))

    def stage_coverage(self, stage: int) -> float:
        """Importance mass available to stage ``stage``'s exit, in ``[0, 1]``.

        For every backbone layer we take the channels computed by this stage
        plus the channels of earlier stages whose features are reused, measure
        the channel-importance mass of that set, and average over layers.
        With channel reordering on, stage ranges are contiguous blocks of the
        importance-sorted ordering, so stage 0 holds the most valuable
        channels; with reordering off, mass reduces to the plain width
        fraction -- the quantity that makes the reordering ablation visible.
        """
        self._check_stage(stage)
        per_layer = []
        for layer_index, layer in enumerate(self.scheme.backbone):
            included = [stage] + [
                k for k in range(stage) if self.scheme.indicator.reused(k, layer_index)
            ]
            if self.reordered and self.ranking is not None:
                curve = self.ranking.cumulative_curve(layer.name)
                curve = np.concatenate(([0.0], curve))
                mass = 0.0
                for k in included:
                    start, end = self.scheme.stage_range(k, layer_index)
                    mass += float(curve[end] - curve[start])
            else:
                owned = sum(self.scheme.stage_channels(k, layer_index) for k in included)
                mass = owned / layer.width
            per_layer.append(min(1.0, mass))
        return float(np.mean(per_layer))

    def summary(self) -> str:
        """Multi-line human-readable summary of stages and their costs."""
        lines = [
            f"dynamic {self.network.name}: {self.num_stages} stages, "
            f"{self.num_layers} backbone layers, reuse={self.reuse_fraction():.1%}"
        ]
        for stage in self.stages:
            lines.append(
                f"  stage {stage.index}: {stage.flops() / 1e9:.3f} GFLOPs, "
                f"{stage.params() / 1e6:.3f} M params, "
                f"imports {stage.imported_bytes() / 1e3:.1f} KB"
            )
        return "\n".join(lines)

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.num_stages:
            raise ConfigurationError(f"stage index {stage} out of range [0, {self.num_stages})")


def build_dynamic_network(
    network: NetworkGraph,
    partition: PartitionMatrix,
    indicator: IndicatorMatrix,
    ranking: Optional[ChannelRanking] = None,
    reorder: bool = True,
) -> DynamicNetwork:
    """Materialise the dynamic multi-exit network for a ``(P, I)`` choice.

    Parameters
    ----------
    network:
        The pretrained static network to transform.
    partition, indicator:
        The ``P`` and ``I`` matrices of Eq. 4, sized for the network backbone.
    ranking:
        Channel-importance ranking used for the Sect. V-D reordering and the
        accuracy coverage computation.  Optional; without it coverage falls
        back to plain width fractions.
    reorder:
        Whether to apply importance reordering (the paper's default).  The
        ablation benches set this to ``False``.
    """
    scheme = PartitionScheme(network=network, partition=partition, indicator=indicator)
    stages = []
    last_layer_index = scheme.num_layers - 1
    for stage_index in range(scheme.num_stages):
        sublayers = []
        for layer_index, layer in enumerate(scheme.backbone):
            sublayers.append(
                SubLayer(
                    base=layer,
                    stage_index=stage_index,
                    layer_index=layer_index,
                    in_units=scheme.available_in_units(stage_index, layer_index),
                    out_units=scheme.stage_channels(stage_index, layer_index),
                    reused_input_bytes=scheme.reused_input_bytes(stage_index, layer_index),
                )
            )
        # The exit head classifies from every feature available to this stage
        # at the final backbone layer (own channels plus reused ones).
        exit_in = scheme.stage_channels(stage_index, last_layer_index)
        exit_in += sum(
            scheme.stage_channels(k, last_layer_index)
            for k in range(stage_index)
            if scheme.indicator.reused(k, last_layer_index)
        )
        exit_head = LinearLayer(
            name=f"exit{stage_index}",
            width=network.num_classes,
            in_width=int(exit_in),
            tokens=1,
        )
        stages.append(Stage(index=stage_index, sublayers=tuple(sublayers), exit_head=exit_head))
    return DynamicNetwork(
        network=network,
        scheme=scheme,
        stages=tuple(stages),
        ranking=ranking,
        reordered=reorder and ranking is not None,
    )
