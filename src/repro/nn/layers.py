"""Symbolic layer descriptors with analytical cost accounting.

Layers are *not* executed: the reproduction never multiplies tensors.  Each
descriptor knows how to compute, for a given number of input and output
width-units (channels for convolutions, attention heads for self-attention,
hidden units for transformer feed-forward blocks), the number of floating
point operations, the number of parameters, and the size of the produced
feature map.  These analytical quantities drive both the hardware cost model
(:mod:`repro.perf`) and the accuracy model (:mod:`repro.dynamics`).

The ``width`` of a layer is the partitionable dimension used by the paper's
``P`` matrix (Sect. III-A): output channels for convolutional layers, heads
for multi-head self-attention, and output features for linear layers.
Normalisation / activation / pooling overheads are folded into each layer via
a small ``fused_overhead`` multiplier, mirroring how TensorRT fuses these
operations into the preceding kernel on the Jetson platform used by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..errors import ConfigurationError

__all__ = [
    "BYTES_PER_ELEMENT",
    "Layer",
    "Conv2dLayer",
    "LinearLayer",
    "AttentionLayer",
    "FeedForwardLayer",
]

#: Feature maps are exchanged in half precision (fp16) on the Jetson DLA/GPU.
BYTES_PER_ELEMENT = 2


def _check_units(layer_name: str, width: int, in_width: int, in_units: int, out_units: int) -> None:
    if not 0 < out_units <= width:
        raise ConfigurationError(
            f"layer {layer_name!r}: out_units must lie in [1, {width}], got {out_units}"
        )
    if not 0 < in_units <= in_width:
        raise ConfigurationError(
            f"layer {layer_name!r}: in_units must lie in [1, {in_width}], got {in_units}"
        )


@dataclass(frozen=True)
class Layer:
    """Base class for all symbolic layers.

    Attributes
    ----------
    name:
        Unique layer identifier within a :class:`~repro.nn.graph.NetworkGraph`.
    width:
        Number of partitionable output units (the paper's ``W`` in Eq. 2).
    in_width:
        Number of input units consumed from the previous layer.
    fused_overhead:
        Multiplicative factor on FLOPs accounting for fused normalisation and
        activation operations.
    """

    name: str
    width: int
    in_width: int
    fused_overhead: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError(f"layer {self.name!r}: width must be >= 1, got {self.width}")
        if self.in_width < 1:
            raise ConfigurationError(
                f"layer {self.name!r}: in_width must be >= 1, got {self.in_width}"
            )
        if self.fused_overhead < 1.0:
            raise ConfigurationError(
                f"layer {self.name!r}: fused_overhead must be >= 1.0, got {self.fused_overhead}"
            )

    # -- analytical accounting -------------------------------------------------
    def flops(self, in_units: int | None = None, out_units: int | None = None) -> float:
        """Floating-point operations for one input sample.

        ``in_units`` / ``out_units`` default to the full layer width, i.e. the
        unpartitioned cost.
        """
        raise NotImplementedError

    def params(self, in_units: int | None = None, out_units: int | None = None) -> float:
        """Number of trainable parameters for the selected slice."""
        raise NotImplementedError

    def output_elements(self, out_units: int | None = None) -> int:
        """Number of scalar elements in the produced feature map (per sample)."""
        raise NotImplementedError

    def input_elements(self, in_units: int | None = None) -> int:
        """Number of scalar elements consumed from the input feature map."""
        raise NotImplementedError

    # -- convenience helpers ---------------------------------------------------
    def output_bytes(self, out_units: int | None = None) -> int:
        """Size of the produced feature map in bytes (fp16)."""
        return self.output_elements(out_units) * BYTES_PER_ELEMENT

    def input_bytes(self, in_units: int | None = None) -> int:
        """Size of the consumed feature map in bytes (fp16)."""
        return self.input_elements(in_units) * BYTES_PER_ELEMENT

    def resolve_units(self, in_units: int | None, out_units: int | None) -> Tuple[int, int]:
        """Fill in defaults and validate a ``(in_units, out_units)`` pair."""
        in_u = self.in_width if in_units is None else int(in_units)
        out_u = self.width if out_units is None else int(out_units)
        _check_units(self.name, self.width, self.in_width, in_u, out_u)
        return in_u, out_u

    def with_name(self, name: str) -> "Layer":
        """Return a copy of this layer under a different name."""
        return replace(self, name=name)

    @property
    def kind(self) -> str:
        """Short lowercase identifier of the layer type (``conv2d`` ...)."""
        return type(self).__name__.removesuffix("Layer").lower()

    @property
    def partition_granularity(self) -> int:
        """Smallest indivisible group of width-units when partitioning.

        Convolutions and linear layers can be split at single-channel
        granularity; attention layers can only be split at whole-head
        granularity (``head_dim`` channels per head).
        """
        return 1


@dataclass(frozen=True)
class Conv2dLayer(Layer):
    """2-D convolution (optionally grouped) with fused norm/activation.

    ``width`` is the number of output channels; ``in_width`` the number of
    input channels.  ``out_spatial`` is the spatial size of the produced
    feature map, which already accounts for stride and any pooling folded
    into this layer by the model builder.
    """

    kernel_size: int = 3
    stride: int = 1
    in_spatial: Tuple[int, int] = (32, 32)
    out_spatial: Tuple[int, int] = (32, 32)
    groups: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kernel_size < 1 or self.stride < 1:
            raise ConfigurationError(
                f"layer {self.name!r}: kernel_size and stride must be >= 1"
            )
        if self.groups < 1:
            raise ConfigurationError(f"layer {self.name!r}: groups must be >= 1")
        for dims, label in ((self.in_spatial, "in_spatial"), (self.out_spatial, "out_spatial")):
            if len(dims) != 2 or min(dims) < 1:
                raise ConfigurationError(
                    f"layer {self.name!r}: {label} must be a pair of positive ints, got {dims!r}"
                )

    def flops(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        height, width = self.out_spatial
        macs = (
            self.kernel_size
            * self.kernel_size
            * (in_u / self.groups)
            * out_u
            * height
            * width
        )
        return 2.0 * macs * self.fused_overhead

    def params(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        weights = self.kernel_size * self.kernel_size * (in_u / self.groups) * out_u
        bias_and_norm = 3 * out_u  # bias + fused batch-norm scale/shift
        return weights + bias_and_norm

    def output_elements(self, out_units: int | None = None) -> int:
        _, out_u = self.resolve_units(None, out_units)
        height, width = self.out_spatial
        return int(out_u * height * width)

    def input_elements(self, in_units: int | None = None) -> int:
        in_u, _ = self.resolve_units(in_units, None)
        height, width = self.in_spatial
        return int(in_u * height * width)


@dataclass(frozen=True)
class LinearLayer(Layer):
    """Fully-connected layer applied to ``tokens`` positions.

    ``width`` is the number of output features, ``in_width`` the number of
    input features.  With ``tokens == 1`` this models a classifier head; with
    ``tokens > 1`` it models a token-wise projection.
    """

    tokens: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.tokens < 1:
            raise ConfigurationError(f"layer {self.name!r}: tokens must be >= 1")

    def flops(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        return 2.0 * self.tokens * in_u * out_u * self.fused_overhead

    def params(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        return in_u * out_u + out_u

    def output_elements(self, out_units: int | None = None) -> int:
        _, out_u = self.resolve_units(None, out_units)
        return int(self.tokens * out_u)

    def input_elements(self, in_units: int | None = None) -> int:
        in_u, _ = self.resolve_units(in_units, None)
        return int(self.tokens * in_u)


@dataclass(frozen=True)
class AttentionLayer(Layer):
    """Multi-head self-attention over ``tokens`` positions.

    ``width`` is the number of *output embedding channels* so the layer chains
    naturally with its neighbours; the partitionable granularity is a whole
    attention head (``head_dim = width // num_heads`` channels), the dimension
    exploited by MIA-Former and by the paper for ViT architectures.
    ``in_width`` is the number of embedding channels available at the input.
    """

    tokens: int = 64
    num_heads: int = 6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.tokens < 1 or self.num_heads < 1:
            raise ConfigurationError(
                f"layer {self.name!r}: tokens and num_heads must be >= 1"
            )
        if self.width % self.num_heads != 0:
            raise ConfigurationError(
                f"layer {self.name!r}: width ({self.width}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )

    @property
    def head_dim(self) -> int:
        """Embedding channels contributed by a single attention head."""
        return self.width // self.num_heads

    @property
    def partition_granularity(self) -> int:
        return self.head_dim

    def flops(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        qkv = 3 * 2.0 * self.tokens * in_u * out_u
        attention = 2 * 2.0 * self.tokens * self.tokens * out_u
        projection = 2.0 * self.tokens * out_u * out_u
        return (qkv + attention + projection) * self.fused_overhead

    def params(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        qkv = 3 * in_u * out_u + 3 * out_u
        projection = out_u * out_u + out_u
        return qkv + projection

    def output_elements(self, out_units: int | None = None) -> int:
        _, out_u = self.resolve_units(None, out_units)
        return int(self.tokens * out_u)

    def input_elements(self, in_units: int | None = None) -> int:
        in_u, _ = self.resolve_units(in_units, None)
        return int(self.tokens * in_u)


@dataclass(frozen=True)
class FeedForwardLayer(Layer):
    """Transformer feed-forward block (two linear projections with expansion).

    ``width`` is the number of *output* embedding channels; the hidden layer
    is scaled proportionally through ``expansion`` so that partitioning along
    the output width also shrinks the hidden projection, as in S2DNAS-style
    width partitioning.
    """

    tokens: int = 64
    expansion: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.expansion <= 0:
            raise ConfigurationError(f"layer {self.name!r}: expansion must be > 0")

    def hidden_units(self, out_units: int | None = None) -> int:
        """Hidden width used for a slice producing ``out_units`` channels."""
        _, out_u = self.resolve_units(None, out_units)
        return max(1, int(round(out_u * self.expansion)))

    def flops(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        hidden = self.hidden_units(out_u)
        first = 2.0 * self.tokens * in_u * hidden
        second = 2.0 * self.tokens * hidden * out_u
        return (first + second) * self.fused_overhead

    def params(self, in_units: int | None = None, out_units: int | None = None) -> float:
        in_u, out_u = self.resolve_units(in_units, out_units)
        hidden = self.hidden_units(out_u)
        return in_u * hidden + hidden + hidden * out_u + out_u

    def output_elements(self, out_units: int | None = None) -> int:
        _, out_u = self.resolve_units(None, out_units)
        return int(self.tokens * out_u)

    def input_elements(self, in_units: int | None = None) -> int:
        in_u, _ = self.resolve_units(in_units, None)
        return int(self.tokens * in_u)
