"""Sequential network graph.

The paper models a network as a chain of layers (Eq. 1),

    NN = L_n o L_{n-1} o ... o L_1,

each of which carries a partitionable width (Eq. 2).  :class:`NetworkGraph`
captures that chain together with dataset-level metadata (input shape, number
of classes, and the baseline accuracy ``Acc_base`` that enters the search
objective of Eq. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..errors import ConfigurationError
from ..utils import check_fraction
from .layers import Layer

__all__ = ["NetworkGraph"]


@dataclass(frozen=True)
class NetworkGraph:
    """An immutable chain of symbolic layers.

    Parameters
    ----------
    name:
        Human-readable model identifier (``"visformer"``, ``"vgg19"`` ...).
    layers:
        The partitionable layer chain, ordered from input to output.  Each
        layer's ``in_width`` must equal the preceding layer's ``width``.
    input_shape:
        ``(channels, height, width)`` of the model input.
    num_classes:
        Number of output classes of the classification head.
    base_accuracy:
        Top-1 accuracy of the unmodified pretrained model (``Acc_base`` in
        Eq. 16), expressed as a fraction in ``[0, 1]``.
    family:
        Architecture family tag, ``"vit"`` or ``"cnn"``; used by the accuracy
        model to pick redundancy characteristics.
    """

    name: str
    layers: Tuple[Layer, ...]
    input_shape: Tuple[int, int, int] = (3, 32, 32)
    num_classes: int = 100
    base_accuracy: float = 0.88
    family: str = "cnn"

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(f"network {self.name!r} must contain at least one layer")
        object.__setattr__(self, "layers", tuple(self.layers))
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"network {self.name!r} has duplicate layer names")
        for previous, current in zip(self.layers, self.layers[1:]):
            if current.in_width != previous.width:
                raise ConfigurationError(
                    f"network {self.name!r}: layer {current.name!r} expects in_width="
                    f"{current.in_width} but {previous.name!r} produces width={previous.width}"
                )
        if len(self.input_shape) != 3 or min(self.input_shape) < 1:
            raise ConfigurationError(
                f"network {self.name!r}: input_shape must be (C, H, W) of positive ints"
            )
        if self.num_classes < 2:
            raise ConfigurationError(f"network {self.name!r}: num_classes must be >= 2")
        check_fraction(self.base_accuracy, "base_accuracy", allow_zero=False)
        if self.family not in ("vit", "cnn"):
            raise ConfigurationError(
                f"network {self.name!r}: family must be 'vit' or 'cnn', got {self.family!r}"
            )

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    # -- lookups ---------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of partitionable layers ``n`` in the chain."""
        return len(self.layers)

    @property
    def widths(self) -> Tuple[int, ...]:
        """Width of every layer, ordered from input to output."""
        return tuple(layer.width for layer in self.layers)

    @property
    def layer_names(self) -> Tuple[str, ...]:
        """Names of every layer, ordered from input to output."""
        return tuple(layer.name for layer in self.layers)

    def layer_index(self, name: str) -> int:
        """Return the position of the layer called ``name``."""
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise KeyError(f"network {self.name!r} has no layer named {name!r}")

    # -- analytical totals -----------------------------------------------------
    def total_flops(self) -> float:
        """FLOPs of one full (unpartitioned) forward pass."""
        return float(sum(layer.flops() for layer in self.layers))

    def total_params(self) -> float:
        """Parameter count of the unpartitioned model."""
        return float(sum(layer.params() for layer in self.layers))

    def total_feature_bytes(self) -> int:
        """Total bytes of all intermediate feature maps for one sample."""
        return int(sum(layer.output_bytes() for layer in self.layers))

    def summary(self) -> str:
        """Multi-line human-readable summary of the layer chain."""
        lines = [
            f"{self.name} ({self.family}, {self.num_classes} classes, "
            f"input {self.input_shape}, Acc_base={self.base_accuracy:.2%})"
        ]
        header = f"{'#':>3} {'name':<22} {'kind':<12} {'in':>6} {'width':>6} {'GFLOPs':>9} {'MParams':>9}"
        lines.append(header)
        for index, layer in enumerate(self.layers):
            lines.append(
                f"{index:>3} {layer.name:<22} {layer.kind:<12} {layer.in_width:>6} "
                f"{layer.width:>6} {layer.flops() / 1e9:>9.3f} {layer.params() / 1e6:>9.3f}"
            )
        lines.append(
            f"total: {self.total_flops() / 1e9:.3f} GFLOPs, "
            f"{self.total_params() / 1e6:.3f} M params, "
            f"{self.total_feature_bytes() / 1e6:.3f} MB feature maps"
        )
        return "\n".join(lines)
