"""Width partitioning: the ``P`` and ``I`` parameter matrices (Sect. III-A).

The paper characterises the static-to-dynamic transformation with two
matrices (Eq. 4):

* the **partitioning matrix** ``P`` (M stages x n layers), where ``p[i, j]``
  is the fraction of layer ``j``'s width-units assigned to stage ``i`` --
  every column distributes a whole layer, so columns sum to one;
* the **indicator matrix** ``I`` (M stages x n layers), where ``I[i, j] = 1``
  means the intermediate features produced by stage ``i`` at layer ``j`` are
  forwarded to (and reused by) all subsequent stages at layer ``j + 1``.

This module provides validated wrappers for both matrices plus the integer
channel-splitting arithmetic (largest-remainder rounding constrained to each
layer's partition granularity) that converts fractions into concrete channel
ranges.  The actual construction of per-stage sub-models lives in
:mod:`repro.nn.multiexit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import PartitionError
from .graph import NetworkGraph
from .layers import Layer, LinearLayer

__all__ = [
    "PartitionMatrix",
    "IndicatorMatrix",
    "PartitionScheme",
    "backbone_layers",
    "split_units",
]

#: Discrete partition-ratio choices used by the search space (Sect. V-A uses
#: "8 channel partitioning ratios" per layer).
RATIO_CHOICES: Tuple[float, ...] = tuple((k + 1) / 8 for k in range(8))


def backbone_layers(network: NetworkGraph) -> Tuple[Layer, ...]:
    """Return the partitionable backbone of ``network``.

    The trailing classifier head (a :class:`LinearLayer` whose width equals
    the number of classes) is excluded: in the dynamic transformation every
    stage receives its *own* exit head, so the original head is replaced
    rather than partitioned.
    """
    layers = network.layers
    last = layers[-1]
    if isinstance(last, LinearLayer) and last.width == network.num_classes:
        layers = layers[:-1]
    if not layers:
        raise PartitionError(f"network {network.name!r} has no partitionable backbone layers")
    return layers


def split_units(width: int, fractions: Sequence[float], granularity: int = 1) -> Tuple[int, ...]:
    """Split ``width`` units into integer shares proportional to ``fractions``.

    Every share is at least one granule of ``granularity`` units, shares sum
    exactly to ``width``, and the largest-remainder method keeps the result
    as close as possible to the requested fractions.

    Raises
    ------
    PartitionError
        If ``width`` cannot accommodate one granule per share, or if the
        fractions are not a valid distribution.
    """
    fractions = np.asarray(fractions, dtype=float)
    if fractions.ndim != 1 or fractions.size == 0:
        raise PartitionError("fractions must be a non-empty 1-D sequence")
    if np.any(fractions < 0) or abs(float(fractions.sum()) - 1.0) > 1e-6:
        raise PartitionError(f"fractions must be non-negative and sum to 1, got {fractions}")
    if granularity < 1 or width % granularity != 0:
        raise PartitionError(
            f"granularity must divide the width ({width} % {granularity} != 0)"
        )
    num_shares = fractions.size
    granules = width // granularity
    if granules < num_shares:
        raise PartitionError(
            f"cannot split {width} units ({granules} granules of {granularity}) "
            f"into {num_shares} non-empty shares"
        )
    # Largest-remainder rounding in granule space with a floor of one granule.
    ideal = fractions * granules
    shares = np.maximum(1, np.floor(ideal).astype(int))
    # Remove any excess introduced by the floor-of-one, taking from the
    # largest shares first.
    while shares.sum() > granules:
        candidates = np.where(shares > 1)[0]
        victim = candidates[np.argmax(shares[candidates] - ideal[candidates])]
        shares[victim] -= 1
    # Distribute any remaining granules to the largest remainders.
    remainder = ideal - shares
    while shares.sum() < granules:
        winner = int(np.argmax(remainder))
        shares[winner] += 1
        remainder[winner] -= 1.0
    return tuple(int(share) * granularity for share in shares)


@dataclass(frozen=True)
class PartitionMatrix:
    """The ``P`` matrix: per-stage, per-layer width fractions."""

    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2 or values.size == 0:
            raise PartitionError("P must be a non-empty 2-D array (stages x layers)")
        if np.any(values < 0) or np.any(values > 1):
            raise PartitionError("P entries must lie in [0, 1]")
        column_sums = values.sum(axis=0)
        if not np.allclose(column_sums, 1.0, atol=1e-6):
            raise PartitionError(
                f"every column of P must sum to 1 (got column sums {column_sums})"
            )
        object.__setattr__(self, "values", values)

    @property
    def num_stages(self) -> int:
        """Number of stages ``M``."""
        return int(self.values.shape[0])

    @property
    def num_layers(self) -> int:
        """Number of backbone layers ``n``."""
        return int(self.values.shape[1])

    def fraction(self, stage: int, layer: int) -> float:
        """Fraction ``p[stage, layer]`` of layer ``layer`` owned by ``stage``."""
        return float(self.values[stage, layer])

    @classmethod
    def uniform(cls, num_stages: int, num_layers: int) -> "PartitionMatrix":
        """Equal split: every stage owns ``1/M`` of every layer."""
        if num_stages < 1 or num_layers < 1:
            raise PartitionError("num_stages and num_layers must be >= 1")
        return cls(np.full((num_stages, num_layers), 1.0 / num_stages))

    @classmethod
    def from_stage_fractions(cls, fractions: Sequence[float], num_layers: int) -> "PartitionMatrix":
        """Same per-stage split replicated across all layers."""
        column = np.asarray(fractions, dtype=float)
        return cls(np.tile(column[:, None], (1, num_layers)))


@dataclass(frozen=True)
class IndicatorMatrix:
    """The ``I`` matrix: whether a stage's features are reused downstream."""

    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        if values.ndim != 2 or values.size == 0:
            raise PartitionError("I must be a non-empty 2-D array (stages x layers)")
        if not np.all(np.isin(values, (0, 1))):
            raise PartitionError("I entries must be 0 or 1")
        object.__setattr__(self, "values", values.astype(int))

    @property
    def num_stages(self) -> int:
        """Number of stages ``M``."""
        return int(self.values.shape[0])

    @property
    def num_layers(self) -> int:
        """Number of backbone layers ``n``."""
        return int(self.values.shape[1])

    def reused(self, stage: int, layer: int) -> bool:
        """Whether stage ``stage``'s features at ``layer`` feed later stages."""
        return bool(self.values[stage, layer])

    def reuse_fraction(self) -> float:
        """Fraction of forwardable feature maps that are actually reused.

        Only stages ``1 .. M-1`` can forward features (the last stage has no
        successor), so the denominator is ``(M - 1) * n``.  This is the
        "Fmap. reuse (%)" column of Table II.
        """
        if self.num_stages < 2:
            return 0.0
        relevant = self.values[:-1, :]
        return float(relevant.mean())

    @classmethod
    def full(cls, num_stages: int, num_layers: int) -> "IndicatorMatrix":
        """All features reused -- the static-mapping behaviour of Fig. 1."""
        if num_stages < 1 or num_layers < 1:
            raise PartitionError("num_stages and num_layers must be >= 1")
        return cls(np.ones((num_stages, num_layers), dtype=int))

    @classmethod
    def none(cls, num_stages: int, num_layers: int) -> "IndicatorMatrix":
        """No cross-stage feature reuse (fully independent stages)."""
        if num_stages < 1 or num_layers < 1:
            raise PartitionError("num_stages and num_layers must be >= 1")
        return cls(np.zeros((num_stages, num_layers), dtype=int))


@dataclass(frozen=True)
class PartitionScheme:
    """A validated ``(P, I)`` pair bound to a concrete network backbone.

    The scheme converts the fractional ``P`` matrix into integer channel
    counts per (stage, layer), respecting each layer's partition granularity
    (whole attention heads), and exposes the quantities needed downstream:
    per-stage channel ranges in importance order, available input widths
    including reused features, and the reuse fraction.
    """

    network: NetworkGraph
    partition: PartitionMatrix
    indicator: IndicatorMatrix

    def __post_init__(self) -> None:
        backbone = backbone_layers(self.network)
        if self.partition.num_layers != len(backbone):
            raise PartitionError(
                f"P has {self.partition.num_layers} layers but the backbone of "
                f"{self.network.name!r} has {len(backbone)}"
            )
        if self.indicator.values.shape != self.partition.values.shape:
            raise PartitionError(
                f"P and I must have the same shape, got {self.partition.values.shape} "
                f"and {self.indicator.values.shape}"
            )
        channels = np.zeros(self.partition.values.shape, dtype=int)
        for layer_index, layer in enumerate(backbone):
            shares = split_units(
                layer.width,
                self.partition.values[:, layer_index],
                granularity=layer.partition_granularity,
            )
            channels[:, layer_index] = shares
        object.__setattr__(self, "_backbone", backbone)
        object.__setattr__(self, "_channels", channels)

    # -- basic shape -----------------------------------------------------------
    @property
    def backbone(self) -> Tuple[Layer, ...]:
        """Partitionable backbone layers of the bound network."""
        return self._backbone

    @property
    def num_stages(self) -> int:
        """Number of stages ``M``."""
        return self.partition.num_stages

    @property
    def num_layers(self) -> int:
        """Number of backbone layers ``n``."""
        return self.partition.num_layers

    # -- channel arithmetic ----------------------------------------------------
    @property
    def channels(self) -> np.ndarray:
        """Integer channel counts, shape ``(num_stages, num_layers)``."""
        return self._channels.copy()

    def stage_channels(self, stage: int, layer: int) -> int:
        """Channels of ``layer`` owned by ``stage``."""
        return int(self._channels[stage, layer])

    def stage_range(self, stage: int, layer: int) -> Tuple[int, int]:
        """Half-open channel range owned by ``stage`` in importance order.

        Stage 0 owns the most important channels, stage 1 the next block, and
        so on -- the reordering policy of Sect. V-D.
        """
        start = int(self._channels[:stage, layer].sum())
        return start, start + self.stage_channels(stage, layer)

    def available_in_units(self, stage: int, layer: int) -> int:
        """Input width available to stage ``stage`` at backbone layer ``layer``.

        Layer 0 consumes the raw model input, which every stage receives in
        full.  For later layers the available input is the stage's own
        previous-layer output plus the previous-layer outputs of every earlier
        stage whose indicator bit is set (Eq. 8's dependency set).
        """
        self._check_stage_layer(stage, layer)
        if layer == 0:
            return self._backbone[0].in_width
        own = self.stage_channels(stage, layer - 1)
        reused = sum(
            self.stage_channels(k, layer - 1)
            for k in range(stage)
            if self.indicator.reused(k, layer - 1)
        )
        return int(own + reused)

    def reused_input_bytes(self, stage: int, layer: int) -> int:
        """Bytes of previous-layer features imported from earlier stages.

        These are the feature maps that have to cross compute units (the
        transfer overhead ``u_{k->i}`` of Eq. 8) and to live in shared memory
        (the ``size(F, I) < M`` constraint of Eq. 15).
        """
        self._check_stage_layer(stage, layer)
        if layer == 0 or stage == 0:
            return 0
        previous = self._backbone[layer - 1]
        total = 0
        for k in range(stage):
            if self.indicator.reused(k, layer - 1):
                total += previous.output_bytes(self.stage_channels(k, layer - 1))
        return int(total)

    def stored_feature_bytes(self) -> int:
        """Total bytes of forwarded feature maps held in shared memory.

        Every (stage, layer) whose indicator bit is set must keep its output
        available for subsequent stages for the duration of the inference
        (Fig. 4), so the memory-constraint term sums their sizes.
        """
        total = 0
        for stage in range(self.num_stages - 1):
            for layer_index, layer in enumerate(self._backbone):
                if self.indicator.reused(stage, layer_index):
                    total += layer.output_bytes(self.stage_channels(stage, layer_index))
        return int(total)

    def reuse_fraction(self) -> float:
        """Fraction of forwardable feature maps reused (Table II column)."""
        return self.indicator.reuse_fraction()

    # -- per-stage aggregate costs ----------------------------------------------
    def stage_flops(self, stage: int) -> float:
        """FLOPs executed by ``stage`` over its whole sub-layer chain."""
        self._check_stage_layer(stage, 0)
        total = 0.0
        for layer_index, layer in enumerate(self._backbone):
            total += layer.flops(
                in_units=self.available_in_units(stage, layer_index),
                out_units=self.stage_channels(stage, layer_index),
            )
        return total

    def stage_params(self, stage: int) -> float:
        """Parameters held by ``stage`` over its whole sub-layer chain."""
        self._check_stage_layer(stage, 0)
        total = 0.0
        for layer_index, layer in enumerate(self._backbone):
            total += layer.params(
                in_units=self.available_in_units(stage, layer_index),
                out_units=self.stage_channels(stage, layer_index),
            )
        return total

    def cumulative_width_fraction(self, stage: int, layer: int) -> float:
        """Fraction of layer width available to stage ``stage`` (incl. reuse)."""
        self._check_stage_layer(stage, layer)
        layer_width = self._backbone[layer].width
        own = self.stage_channels(stage, layer)
        reused = sum(
            self.stage_channels(k, layer)
            for k in range(stage)
            if self.indicator.reused(k, layer)
        )
        return float((own + reused) / layer_width)

    def _check_stage_layer(self, stage: int, layer: int) -> None:
        if not 0 <= stage < self.num_stages:
            raise PartitionError(f"stage index {stage} out of range [0, {self.num_stages})")
        if not 0 <= layer < self.num_layers:
            raise PartitionError(f"layer index {layer} out of range [0, {self.num_layers})")
