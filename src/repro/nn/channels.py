"""Channel importance ranking and reordering (Sect. V-D of the paper).

Before a candidate configuration is evaluated, the paper reorders the width
channels of every layer by importance so that the most important channels are
assigned to the earliest inference stages.  The paper estimates importance
with the Taylor-expansion criterion of Molchanov et al. (CVPR 2019) on the
trained weights; since this reproduction does not train networks, importance
scores are *synthesised* from a heavy-tailed (log-normal) distribution, which
reproduces the property the method exploits -- a small fraction of channels
carries most of the accuracy-relevant signal.  Scores are deterministic per
``(network, layer, seed)`` so repeated runs and tests agree.

The quantity consumed downstream is the *cumulative importance coverage*:
given the top ``k`` channels of a layer, which fraction of total importance
mass they retain.  The accuracy model (:mod:`repro.dynamics.accuracy`) maps
coverage to stage accuracy, and the search benefits from assigning important
channels to early stages exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utils import as_rng, check_fraction
from .graph import NetworkGraph

__all__ = ["ChannelRanking", "rank_channels"]

#: Spread of the synthetic log-normal importance distribution.  A sigma of
#: 1.0 makes the top ~25% of channels carry roughly 60-70% of the mass, in
#: line with published Taylor-importance histograms for CNNs and ViTs.
_DEFAULT_SIGMA = 1.0


@dataclass(frozen=True)
class ChannelRanking:
    """Per-layer channel importance scores and the derived ordering.

    Attributes
    ----------
    network_name:
        Name of the network the ranking was computed for.
    scores:
        Mapping from layer name to the importance score of every channel
        (original channel order, normalised to sum to one per layer).
    order:
        Mapping from layer name to channel indices sorted by decreasing
        importance -- the reordering applied before partitioning.
    """

    network_name: str
    scores: Mapping[str, np.ndarray]
    order: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        if set(self.scores) != set(self.order):
            raise ConfigurationError("scores and order must cover the same layers")
        for layer_name, layer_scores in self.scores.items():
            if layer_scores.ndim != 1 or layer_scores.size == 0:
                raise ConfigurationError(
                    f"scores for layer {layer_name!r} must be a non-empty 1-D array"
                )
            if abs(float(layer_scores.sum()) - 1.0) > 1e-6:
                raise ConfigurationError(
                    f"scores for layer {layer_name!r} must sum to 1.0"
                )

    def layer_names(self) -> Tuple[str, ...]:
        """Names of all ranked layers."""
        return tuple(self.scores)

    def coverage(self, layer_name: str, fraction: float) -> float:
        """Importance mass retained by the top ``fraction`` of channels.

        This is the cumulative importance curve evaluated at ``fraction``,
        assuming channels are taken in decreasing order of importance (i.e.
        after the reordering of Sect. V-D).
        """
        check_fraction(fraction, "fraction")
        layer_scores = self._layer_scores(layer_name)
        if fraction == 0.0:
            return 0.0
        sorted_scores = layer_scores[self.order[layer_name]]
        count = max(1, int(round(fraction * sorted_scores.size)))
        return float(sorted_scores[:count].sum())

    def coverage_unordered(self, layer_name: str, fraction: float) -> float:
        """Importance mass retained without reordering (ablation baseline).

        The first ``fraction`` of channels in their *original* order is used,
        which models switching channel reordering off.
        """
        check_fraction(fraction, "fraction")
        layer_scores = self._layer_scores(layer_name)
        if fraction == 0.0:
            return 0.0
        count = max(1, int(round(fraction * layer_scores.size)))
        return float(layer_scores[:count].sum())

    def cumulative_curve(self, layer_name: str) -> np.ndarray:
        """Full cumulative importance curve (length = layer width)."""
        layer_scores = self._layer_scores(layer_name)
        return np.cumsum(layer_scores[self.order[layer_name]])

    def _layer_scores(self, layer_name: str) -> np.ndarray:
        try:
            return np.asarray(self.scores[layer_name], dtype=float)
        except KeyError:
            raise KeyError(
                f"ranking for {self.network_name!r} has no layer named {layer_name!r}"
            ) from None


def rank_channels(
    network: NetworkGraph,
    seed: int | np.random.Generator | None = 0,
    sigma: float = _DEFAULT_SIGMA,
) -> ChannelRanking:
    """Synthesise Taylor-style channel importance scores for ``network``.

    Parameters
    ----------
    network:
        The network whose layers are to be ranked.
    seed:
        Seed (or generator) controlling the synthetic scores.  The layer name
        is hashed into the stream so that two layers of equal width still get
        distinct score vectors.
    sigma:
        Log-normal spread; larger values concentrate importance in fewer
        channels (more redundancy to exploit).
    """
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be > 0, got {sigma}")
    rng = as_rng(seed)
    scores: Dict[str, np.ndarray] = {}
    order: Dict[str, np.ndarray] = {}
    for layer in network.layers:
        raw = rng.lognormal(mean=0.0, sigma=sigma, size=layer.width)
        normalised = raw / raw.sum()
        scores[layer.name] = normalised
        order[layer.name] = np.argsort(-normalised, kind="stable")
    return ChannelRanking(network_name=network.name, scores=scores, order=order)
