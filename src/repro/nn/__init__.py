"""Neural-network intermediate representation and model zoo.

The paper treats a network as a chain of layers (Eq. 1) whose *width*
(channels, attention heads, hidden units) can be partitioned across stages.
This subpackage provides:

* :mod:`repro.nn.layers` -- symbolic layer descriptors with analytical
  FLOP / parameter / feature-map-size accounting,
* :mod:`repro.nn.graph` -- the sequential :class:`NetworkGraph`,
* :mod:`repro.nn.models` -- Visformer, VGG19 and ResNet builders,
* :mod:`repro.nn.channels` -- channel-importance ranking (Sect. V-D),
* :mod:`repro.nn.partition` -- the ``P`` / ``I`` matrices and the width
  partitioning operation (Sect. III-A),
* :mod:`repro.nn.multiexit` -- the static-to-dynamic multi-exit
  transformation producing per-stage sub-models (Eq. 5-6).
"""

from .layers import (
    AttentionLayer,
    Conv2dLayer,
    FeedForwardLayer,
    Layer,
    LinearLayer,
)
from .graph import NetworkGraph
from .channels import ChannelRanking, rank_channels
from .partition import IndicatorMatrix, PartitionMatrix, PartitionScheme
from .multiexit import DynamicNetwork, Stage, SubLayer, build_dynamic_network

__all__ = [
    "Layer",
    "Conv2dLayer",
    "LinearLayer",
    "AttentionLayer",
    "FeedForwardLayer",
    "NetworkGraph",
    "ChannelRanking",
    "rank_channels",
    "PartitionMatrix",
    "IndicatorMatrix",
    "PartitionScheme",
    "Stage",
    "SubLayer",
    "DynamicNetwork",
    "build_dynamic_network",
]
