"""Baseline mapping strategies used throughout the evaluation.

Fig. 1 and Table II compare Map-and-Conquer against:

* **GPU-only / DLA-only** -- the whole unmodified network on one compute unit
  (:func:`single_unit_baseline`),
* **static partitioned mapping** -- width-partitioned across all units with
  every feature map exchanged, but no early exits: every input runs all
  stages (:func:`static_partitioned_baseline`),
* **random search** -- the sanity-check optimiser baseline
  (:func:`random_search`).

Baselines use an accuracy model without exit penalties/bonuses so the
single-unit rows report exactly the pretrained baseline accuracy, as in
Table II.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..dynamics.accuracy import AccuracyModel
from ..errors import SearchError
from ..nn.graph import NetworkGraph
from ..nn.partition import IndicatorMatrix, PartitionMatrix, backbone_layers
from ..perf.layer_cost import CostModel
from ..soc.platform import Platform
from ..utils import as_rng
from .constraints import SearchConstraints
from .evaluation import ConfigEvaluator, EvaluatedConfig
from .objectives import nan_guarded, paper_objective
from .space import MappingConfig, SearchSpace

__all__ = ["single_unit_baseline", "static_partitioned_baseline", "random_search"]


def _baseline_evaluator(
    network: NetworkGraph,
    platform: Platform,
    cost_model: Optional[CostModel],
    seed: int,
) -> ConfigEvaluator:
    """Evaluator whose accuracy model reproduces the pretrained baseline."""
    return ConfigEvaluator(
        network=network,
        platform=platform,
        cost_model=cost_model,
        accuracy_model=AccuracyModel(exit_bonus=0.0, exit_penalty=0.0),
        seed=seed,
    )


def single_unit_baseline(
    network: NetworkGraph,
    platform: Platform,
    unit_name: str,
    cost_model: Optional[CostModel] = None,
    dvfs_index: Optional[int] = None,
    seed: int = 0,
) -> EvaluatedConfig:
    """Map the whole (static) network onto a single compute unit.

    This is the "GPU-Only" / "DLA-Only" row of Fig. 1 and Table II: one
    stage owning 100 % of every layer, no feature reuse, no early exits
    (a single-stage cascade always terminates at its only exit).
    """
    unit = platform.unit(unit_name)
    num_layers = len(backbone_layers(network))
    config = MappingConfig(
        partition=PartitionMatrix(np.ones((1, num_layers))),
        indicator=IndicatorMatrix(np.zeros((1, num_layers), dtype=int)),
        unit_names=(unit_name,),
        dvfs_indices=(unit.num_dvfs_points() - 1 if dvfs_index is None else int(dvfs_index),),
    )
    evaluator = _baseline_evaluator(network, platform, cost_model, seed)
    return evaluator.evaluate(config)


def static_partitioned_baseline(
    network: NetworkGraph,
    platform: Platform,
    cost_model: Optional[CostModel] = None,
    unit_names: Optional[Tuple[str, ...]] = None,
    seed: int = 0,
) -> EvaluatedConfig:
    """Width-partition the network across units with full feature exchange.

    This is the "static mapping" strategy of the motivational example
    (Fig. 1): the model is split uniformly along its width and distributed
    over the compute units, every intermediate feature map is exchanged, and
    there are no early exits -- so the relevant metrics are the *worst-case*
    latency and energy of the returned configuration (all stages always run).
    """
    names = tuple(unit_names) if unit_names is not None else platform.unit_names
    if len(set(names)) != len(names):
        raise SearchError(f"unit names must be distinct, got {names}")
    num_stages = len(names)
    num_layers = len(backbone_layers(network))
    indicator = np.ones((num_stages, num_layers), dtype=int)
    indicator[-1, :] = 0
    config = MappingConfig(
        partition=PartitionMatrix.uniform(num_stages, num_layers),
        indicator=IndicatorMatrix(indicator),
        unit_names=names,
        dvfs_indices=tuple(
            platform.unit(name).num_dvfs_points() - 1 for name in names
        ),
    )
    evaluator = _baseline_evaluator(network, platform, cost_model, seed)
    return evaluator.evaluate(config)


def random_search(
    space: SearchSpace,
    evaluator: ConfigEvaluator,
    num_samples: int = 200,
    constraints: Optional[SearchConstraints] = None,
    objective: Callable[[EvaluatedConfig], float] = paper_objective,
    seed: int = 0,
) -> List[EvaluatedConfig]:
    """Uniform random search baseline over the same space and budget.

    Returns all feasible evaluated samples sorted by the objective (best
    first); falls back to all samples when nothing is feasible.
    """
    if num_samples < 1:
        raise SearchError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_rng(seed)
    gate = constraints if constraints is not None else SearchConstraints()
    evaluated = [evaluator.evaluate(space.sample(rng)) for _ in range(num_samples)]
    feasible = [item for item in evaluated if gate.is_feasible(item, platform=space.platform)]
    pool = feasible if feasible else evaluated
    # A NaN-returning objective would shuffle rather than sort (every NaN
    # comparison is false); nan_guarded pins undefined scores to the back.
    return sorted(pool, key=nan_guarded(objective))
