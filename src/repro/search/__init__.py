"""Optimisation framework (Sect. IV and V of the paper).

The search jointly optimises the configuration ``Pi = (P, I, M, theta)``:

* :mod:`repro.search.space` -- the :class:`MappingConfig` encoding of ``Pi``
  and the :class:`SearchSpace` that samples it (Sect. V-A),
* :mod:`repro.search.evaluation` -- the evaluation pipeline turning a
  configuration into hardware + dynamic-inference metrics (Fig. 5's
  "Evaluate" box),
* :mod:`repro.search.objectives` -- the composite objective of Eq. 16,
  latency/energy/serving-oriented scalarisations, and the first-class
  :class:`~repro.search.objectives.ObjectiveSet` layer (named objectives
  with directions and surrogate transforms, pluggable through the engine,
  surrogate and campaigns),
* :mod:`repro.search.constraints` -- the constraint filter of Eq. 15,
* :mod:`repro.search.operators` -- mutation and crossover,
* :mod:`repro.search.pareto` -- non-dominated sorting and Pareto selection,
* :mod:`repro.search.evolutionary` -- the evolutionary loop with elite
  selection,
* :mod:`repro.search.baselines` -- GPU-only / DLA-only / static-partitioned /
  random-search baselines used by Fig. 1 and Table II.
"""

from .space import MappingConfig, SearchSpace
from .evaluation import ConfigEvaluator, EvaluatedConfig
from .objectives import (
    DEFAULT_OBJECTIVES,
    ObjectiveSet,
    ObjectiveSpec,
    as_objective_set,
    default_objective_set,
    energy_oriented_objective,
    latency_oriented_objective,
    MeasuredObjectives,
    measured_serving_objectives,
    nan_guarded,
    paper_objective,
    serving_objectives,
    serving_oriented_objective,
)
from .constraints import SearchConstraints
from .operators import crossover, mutate
from .pareto import (
    pareto_front,
    select_energy_oriented,
    select_latency_oriented,
    select_measured_serving,
    select_serving_oriented,
)
from .evolutionary import EvolutionarySearch, SearchResult
from .baselines import (
    random_search,
    single_unit_baseline,
    static_partitioned_baseline,
)

__all__ = [
    "MappingConfig",
    "SearchSpace",
    "ConfigEvaluator",
    "EvaluatedConfig",
    "paper_objective",
    "energy_oriented_objective",
    "latency_oriented_objective",
    "serving_oriented_objective",
    "nan_guarded",
    "ObjectiveSpec",
    "ObjectiveSet",
    "DEFAULT_OBJECTIVES",
    "default_objective_set",
    "serving_objectives",
    "MeasuredObjectives",
    "measured_serving_objectives",
    "as_objective_set",
    "SearchConstraints",
    "mutate",
    "crossover",
    "pareto_front",
    "select_energy_oriented",
    "select_latency_oriented",
    "select_serving_oriented",
    "select_measured_serving",
    "EvolutionarySearch",
    "SearchResult",
    "single_unit_baseline",
    "static_partitioned_baseline",
    "random_search",
]
