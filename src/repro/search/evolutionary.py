"""Evolutionary search loop with constraint filtering and elite selection.

The loop follows the workflow of Fig. 5: every generation, the current
population is evaluated (through the pluggable hardware/accuracy pipeline),
candidates violating the hard constraints are filtered out, the survivors are
ranked by the objective, and an elite subset seeds the next generation via
crossover and mutation, topped up with fresh random samples to preserve
diversity.  When the budget expires, the Pareto set over *all* evaluated
configurations is computed (Sect. V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import SearchError
from ..utils import as_rng
from .constraints import SearchConstraints
from .evaluation import ConfigEvaluator, EvaluatedConfig
from .objectives import paper_objective
from .space import SearchSpace

__all__ = ["GenerationStats", "SearchResult", "EvolutionarySearch"]


@dataclass(frozen=True)
class GenerationStats:
    """Aggregate statistics of one generation, for convergence analysis.

    ``cache_hit_rate`` and ``wall_clock_s`` are engine telemetry: the
    fraction of this generation's evaluations served from the shared
    evaluation cache, and the wall-clock time the generation's evaluation
    took (including dispatch to parallel backends).  ``new_configs`` counts
    the configurations this generation contributed to the deduplicated
    search history, so cumulative per-generation fronts (and hence
    hypervolume-convergence curves) can be reconstructed from a
    :class:`SearchResult` without re-running the search.
    """

    generation: int
    evaluated: int
    feasible: int
    best_objective: float
    best_latency_ms: float
    best_energy_mj: float
    best_accuracy: float
    cache_hit_rate: float = 0.0
    wall_clock_s: float = 0.0
    new_configs: int = 0


@dataclass(frozen=True)
class SearchResult:
    """Everything the search produced.

    ``surrogate`` carries the
    :class:`~repro.engine.surrogate.SurrogateReport` of a
    surrogate-assisted run and is ``None`` for a pure-oracle search (typed
    loosely to avoid a circular import; results pickled before the field
    existed read back as ``None`` via ``getattr``).  ``serving_cache_stats``
    carries the
    :class:`~repro.serving.result_cache.MeasuredCellStats` of a
    measured-objective campaign cell — deterministic lookup/unique-replay
    counts — and is ``None`` everywhere else (same loose typing and
    ``getattr`` compatibility for results pickled before the field existed).
    """

    history: Tuple[EvaluatedConfig, ...]
    feasible: Tuple[EvaluatedConfig, ...]
    pareto: Tuple[EvaluatedConfig, ...]
    best: EvaluatedConfig
    generations: Tuple[GenerationStats, ...]
    surrogate: Optional[object] = None
    serving_cache_stats: Optional[object] = None

    @property
    def num_evaluations(self) -> int:
        """Total number of distinct configurations evaluated."""
        return len(self.history)


class EvolutionarySearch:
    """Evolutionary optimisation of mapping configurations (Fig. 5).

    Parameters
    ----------
    space:
        The search space to sample and vary.
    evaluator:
        Evaluation pipeline producing :class:`EvaluatedConfig` instances.
    objective:
        Scalar objective to minimise; defaults to the paper's Eq. 16.
    constraints:
        Hard constraint filter; infeasible candidates are never selected as
        elites (but are kept in the history for analysis).
    population_size, generations:
        Search budget; the paper uses 60 x 200 (= 12 K evaluations).
    elite_fraction:
        Fraction of the feasible population carried over and used as parents.
    mutation_rate:
        Probability that an offspring is mutated after crossover.
    fresh_fraction:
        Fraction of every new population drawn uniformly at random.
    seed:
        Seed for all stochastic decisions.
    """

    def __init__(
        self,
        space: SearchSpace,
        evaluator: ConfigEvaluator,
        objective: Callable[[EvaluatedConfig], float] = paper_objective,
        constraints: Optional[SearchConstraints] = None,
        population_size: int = 60,
        generations: int = 200,
        elite_fraction: float = 0.25,
        mutation_rate: float = 0.8,
        fresh_fraction: float = 0.10,
        seed: int = 0,
    ) -> None:
        if population_size < 2:
            raise SearchError(f"population_size must be >= 2, got {population_size}")
        if generations < 1:
            raise SearchError(f"generations must be >= 1, got {generations}")
        if not 0 < elite_fraction <= 1:
            raise SearchError(f"elite_fraction must lie in (0, 1], got {elite_fraction}")
        if not 0 <= mutation_rate <= 1:
            raise SearchError(f"mutation_rate must lie in [0, 1], got {mutation_rate}")
        if not 0 <= fresh_fraction < 1:
            raise SearchError(f"fresh_fraction must lie in [0, 1), got {fresh_fraction}")
        self.space = space
        self.evaluator = evaluator
        self.objective = objective
        self.constraints = constraints if constraints is not None else SearchConstraints()
        self.population_size = population_size
        self.generations = generations
        self.elite_fraction = elite_fraction
        self.mutation_rate = mutation_rate
        self.fresh_fraction = fresh_fraction
        self._rng = as_rng(seed)

    # -- public API ---------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run the full search and return its result.

        Since the engine refactor this is a thin composition: the loop's
        sampling/selection logic lives in
        :class:`~repro.engine.strategies.EvolutionaryStrategy` (same RNG
        consumption, bit-for-bit identical populations for a given seed) and
        evaluation, caching and history bookkeeping live in
        :class:`~repro.engine.engine.SearchEngine`.  History deduplication is
        by the evaluator's content key, so ``num_evaluations`` stays correct
        even with backends that do not share the evaluator's object cache.
        """
        # Imported here: the engine package depends on this module for the
        # result types, so a module-level import would be circular.
        from ..engine.backends import SerialBackend
        from ..engine.engine import SearchEngine
        from ..engine.strategies import EvolutionaryStrategy

        strategy = EvolutionaryStrategy(
            space=self.space,
            objective=self.objective,
            constraints=self.constraints,
            population_size=self.population_size,
            generations=self.generations,
            elite_fraction=self.elite_fraction,
            mutation_rate=self.mutation_rate,
            fresh_fraction=self.fresh_fraction,
            seed=self._rng,
        )
        engine = SearchEngine(
            evaluator=self.evaluator,
            backend=SerialBackend(self.evaluator),
            constraints=self.constraints,
            objective=self.objective,
            platform=self.space.platform,
        )
        return engine.run(strategy)
