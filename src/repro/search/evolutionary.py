"""Evolutionary search loop with constraint filtering and elite selection.

The loop follows the workflow of Fig. 5: every generation, the current
population is evaluated (through the pluggable hardware/accuracy pipeline),
candidates violating the hard constraints are filtered out, the survivors are
ranked by the objective, and an elite subset seeds the next generation via
crossover and mutation, topped up with fresh random samples to preserve
diversity.  When the budget expires, the Pareto set over *all* evaluated
configurations is computed (Sect. V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import SearchError
from ..utils import as_rng
from .constraints import SearchConstraints
from .evaluation import ConfigEvaluator, EvaluatedConfig
from .objectives import paper_objective
from .operators import crossover, mutate
from .pareto import pareto_front
from .space import MappingConfig, SearchSpace

__all__ = ["GenerationStats", "SearchResult", "EvolutionarySearch"]


@dataclass(frozen=True)
class GenerationStats:
    """Aggregate statistics of one generation, for convergence analysis."""

    generation: int
    evaluated: int
    feasible: int
    best_objective: float
    best_latency_ms: float
    best_energy_mj: float
    best_accuracy: float


@dataclass(frozen=True)
class SearchResult:
    """Everything the search produced."""

    history: Tuple[EvaluatedConfig, ...]
    feasible: Tuple[EvaluatedConfig, ...]
    pareto: Tuple[EvaluatedConfig, ...]
    best: EvaluatedConfig
    generations: Tuple[GenerationStats, ...]

    @property
    def num_evaluations(self) -> int:
        """Total number of distinct configurations evaluated."""
        return len(self.history)


class EvolutionarySearch:
    """Evolutionary optimisation of mapping configurations (Fig. 5).

    Parameters
    ----------
    space:
        The search space to sample and vary.
    evaluator:
        Evaluation pipeline producing :class:`EvaluatedConfig` instances.
    objective:
        Scalar objective to minimise; defaults to the paper's Eq. 16.
    constraints:
        Hard constraint filter; infeasible candidates are never selected as
        elites (but are kept in the history for analysis).
    population_size, generations:
        Search budget; the paper uses 60 x 200 (= 12 K evaluations).
    elite_fraction:
        Fraction of the feasible population carried over and used as parents.
    mutation_rate:
        Probability that an offspring is mutated after crossover.
    fresh_fraction:
        Fraction of every new population drawn uniformly at random.
    seed:
        Seed for all stochastic decisions.
    """

    def __init__(
        self,
        space: SearchSpace,
        evaluator: ConfigEvaluator,
        objective: Callable[[EvaluatedConfig], float] = paper_objective,
        constraints: Optional[SearchConstraints] = None,
        population_size: int = 60,
        generations: int = 200,
        elite_fraction: float = 0.25,
        mutation_rate: float = 0.8,
        fresh_fraction: float = 0.10,
        seed: int = 0,
    ) -> None:
        if population_size < 2:
            raise SearchError(f"population_size must be >= 2, got {population_size}")
        if generations < 1:
            raise SearchError(f"generations must be >= 1, got {generations}")
        if not 0 < elite_fraction <= 1:
            raise SearchError(f"elite_fraction must lie in (0, 1], got {elite_fraction}")
        if not 0 <= mutation_rate <= 1:
            raise SearchError(f"mutation_rate must lie in [0, 1], got {mutation_rate}")
        if not 0 <= fresh_fraction < 1:
            raise SearchError(f"fresh_fraction must lie in [0, 1), got {fresh_fraction}")
        self.space = space
        self.evaluator = evaluator
        self.objective = objective
        self.constraints = constraints if constraints is not None else SearchConstraints()
        self.population_size = population_size
        self.generations = generations
        self.elite_fraction = elite_fraction
        self.mutation_rate = mutation_rate
        self.fresh_fraction = fresh_fraction
        self._rng = as_rng(seed)

    # -- public API ---------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run the full search and return its result."""
        population = self.space.population(self.population_size, self._rng)
        history: List[EvaluatedConfig] = []
        seen_keys = set()
        stats: List[GenerationStats] = []

        for generation in range(self.generations):
            evaluated = self.evaluator.evaluate_many(population)
            for item in evaluated:
                key = id(item)
                if key not in seen_keys:
                    seen_keys.add(key)
                    history.append(item)
            feasible = [
                item
                for item in evaluated
                if self.constraints.is_feasible(item, platform=self.space.platform)
            ]
            ranked_pool = feasible if feasible else evaluated
            ranked = sorted(ranked_pool, key=self.objective)
            best = ranked[0]
            stats.append(
                GenerationStats(
                    generation=generation,
                    evaluated=len(evaluated),
                    feasible=len(feasible),
                    best_objective=float(self.objective(best)),
                    best_latency_ms=best.latency_ms,
                    best_energy_mj=best.energy_mj,
                    best_accuracy=best.accuracy,
                )
            )
            if generation + 1 < self.generations:
                population = self._next_population(ranked)

        all_feasible = tuple(
            item
            for item in history
            if self.constraints.is_feasible(item, platform=self.space.platform)
        )
        candidate_pool = all_feasible if all_feasible else tuple(history)
        front = tuple(pareto_front(list(candidate_pool)))
        best_overall = min(candidate_pool, key=self.objective)
        return SearchResult(
            history=tuple(history),
            feasible=all_feasible,
            pareto=front,
            best=best_overall,
            generations=tuple(stats),
        )

    # -- internals ------------------------------------------------------------------
    def _next_population(self, ranked: List[EvaluatedConfig]) -> List[MappingConfig]:
        elite_count = max(1, int(round(self.elite_fraction * len(ranked))))
        elites = [item.config for item in ranked[:elite_count]]
        fresh_count = int(round(self.fresh_fraction * self.population_size))
        population: List[MappingConfig] = list(elites)
        while len(population) < self.population_size - fresh_count:
            parent_a = elites[int(self._rng.integers(0, len(elites)))]
            parent_b = elites[int(self._rng.integers(0, len(elites)))]
            child = crossover(parent_a, parent_b, self.space, self._rng)
            if self._rng.random() < self.mutation_rate:
                child = mutate(child, self.space, self._rng)
            population.append(child)
        while len(population) < self.population_size:
            population.append(self.space.sample(self._rng))
        return population
