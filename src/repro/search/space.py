"""Search-space encoding and sampling (Sect. V-A).

A candidate solution is the full configuration ``Pi = (P, I, M, theta)``:
the partition matrix, the indicator matrix, the stage-to-CU mapping and the
per-stage DVFS operating point.  :class:`MappingConfig` is the immutable
encoding of one candidate; :class:`SearchSpace` knows the discrete choices
available for each component (derived from the network's layer widths and the
platform's hardware composition) and can sample, repair and size the space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, MappingError
from ..nn.graph import NetworkGraph
from ..nn.partition import RATIO_CHOICES, IndicatorMatrix, PartitionMatrix, backbone_layers
from ..soc.platform import Platform
from ..utils import as_rng

__all__ = ["MappingConfig", "SearchSpace"]


@dataclass(frozen=True)
class MappingConfig:
    """One point ``Pi = (P, I, M, theta)`` of the joint search space.

    Attributes
    ----------
    partition:
        The ``P`` matrix (stage x layer width fractions).
    indicator:
        The ``I`` matrix (stage x layer feature-reuse bits).
    unit_names:
        Compute unit hosting each stage, in stage order (the ``M`` vector of
        Eq. 7); entries must be distinct.
    dvfs_indices:
        Index into the hosting unit's DVFS table for each stage (``theta``).
    """

    partition: PartitionMatrix
    indicator: IndicatorMatrix
    unit_names: Tuple[str, ...]
    dvfs_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "unit_names", tuple(self.unit_names))
        object.__setattr__(self, "dvfs_indices", tuple(int(i) for i in self.dvfs_indices))
        num_stages = self.partition.num_stages
        if self.indicator.values.shape != self.partition.values.shape:
            raise ConfigurationError("P and I must have identical shapes")
        if len(self.unit_names) != num_stages:
            raise MappingError(
                f"expected {num_stages} unit names, got {len(self.unit_names)}"
            )
        if len(set(self.unit_names)) != len(self.unit_names):
            raise MappingError(f"stages must map to distinct units, got {self.unit_names}")
        if len(self.dvfs_indices) != num_stages:
            raise MappingError(
                f"expected {num_stages} DVFS indices, got {len(self.dvfs_indices)}"
            )
        if any(index < 0 for index in self.dvfs_indices):
            raise MappingError("DVFS indices must be non-negative")

    @property
    def num_stages(self) -> int:
        """Number of inference stages ``M``."""
        return self.partition.num_stages

    @property
    def num_layers(self) -> int:
        """Number of backbone layers ``n``."""
        return self.partition.num_layers

    def reuse_fraction(self) -> float:
        """Fraction of forwardable feature maps reused."""
        return self.indicator.reuse_fraction()

    def describe(self) -> str:
        """Compact one-line description used in reports and logs."""
        mapping = ", ".join(
            f"S{index + 1}->{name}@{dvfs}"
            for index, (name, dvfs) in enumerate(zip(self.unit_names, self.dvfs_indices))
        )
        return (
            f"{self.num_stages} stages [{mapping}], "
            f"reuse={self.reuse_fraction():.0%}"
        )


class SearchSpace:
    """Discrete search space of mapping configurations for one network/platform.

    Parameters
    ----------
    network:
        The pretrained network to transform and map.
    platform:
        Target MPSoC; its number of compute units bounds the number of stages.
    num_stages:
        Number of inference stages ``M``; defaults to the number of compute
        units, as in the paper (one stage per CU).
    ratio_choices:
        Discrete per-layer width-fraction choices used when sampling ``P``
        (the paper uses 8 ratios).
    reuse_prior:
        Probability that a forwardable feature map is reused when sampling
        ``I`` unconstrained.
    max_reuse_fraction:
        Optional hard cap on the sampled reuse fraction (the 75 % / 50 %
        constraint scenarios of Fig. 6); sampled indicators are repaired to
        satisfy it.
    """

    def __init__(
        self,
        network: NetworkGraph,
        platform: Platform,
        num_stages: Optional[int] = None,
        ratio_choices: Sequence[float] = RATIO_CHOICES,
        reuse_prior: float = 0.7,
        max_reuse_fraction: Optional[float] = None,
    ) -> None:
        self.network = network
        self.platform = platform
        self.num_stages = platform.num_units if num_stages is None else int(num_stages)
        if not 1 <= self.num_stages <= platform.num_units:
            raise ConfigurationError(
                f"num_stages must lie in [1, {platform.num_units}], got {self.num_stages}"
            )
        self.backbone = backbone_layers(network)
        self.num_layers = len(self.backbone)
        self.ratio_choices = tuple(float(r) for r in ratio_choices)
        if not self.ratio_choices or any(r <= 0 for r in self.ratio_choices):
            raise ConfigurationError("ratio_choices must be non-empty and positive")
        if not 0 <= reuse_prior <= 1:
            raise ConfigurationError(f"reuse_prior must lie in [0, 1], got {reuse_prior}")
        self.reuse_prior = float(reuse_prior)
        if max_reuse_fraction is not None and not 0 <= max_reuse_fraction <= 1:
            raise ConfigurationError(
                f"max_reuse_fraction must lie in [0, 1], got {max_reuse_fraction}"
            )
        self.max_reuse_fraction = max_reuse_fraction
        # Ensure the granularity of every layer admits the requested number of
        # non-empty stages (e.g. a 6-head attention layer cannot feed 7 stages).
        for layer in self.backbone:
            if layer.width // layer.partition_granularity < self.num_stages:
                raise ConfigurationError(
                    f"layer {layer.name!r} cannot be split into {self.num_stages} stages"
                )

    # -- sampling ---------------------------------------------------------------
    def sample_partition(self, rng: np.random.Generator) -> PartitionMatrix:
        """Sample a ``P`` matrix from the discrete ratio choices."""
        columns = []
        for _ in range(self.num_layers):
            raw = rng.choice(self.ratio_choices, size=self.num_stages)
            columns.append(raw / raw.sum())
        return PartitionMatrix(np.column_stack(columns))

    def sample_indicator(self, rng: np.random.Generator) -> IndicatorMatrix:
        """Sample an ``I`` matrix, repaired to satisfy the reuse cap if set."""
        values = (rng.random((self.num_stages, self.num_layers)) < self.reuse_prior).astype(int)
        # The last stage has no successor; its bits are irrelevant but kept 0
        # for a canonical encoding.
        values[-1, :] = 0
        indicator = IndicatorMatrix(values)
        return self.repair_indicator(indicator, rng)

    def repair_indicator(
        self, indicator: IndicatorMatrix, rng: np.random.Generator
    ) -> IndicatorMatrix:
        """Clear random reuse bits until the configured cap is satisfied."""
        if self.max_reuse_fraction is None or self.num_stages < 2:
            return indicator
        values = indicator.values.copy()
        values[-1, :] = 0
        budget = int(math.floor(self.max_reuse_fraction * (self.num_stages - 1) * self.num_layers))
        active = np.argwhere(values[:-1, :] == 1)
        if len(active) > budget:
            drop_count = len(active) - budget
            drop_rows = rng.choice(len(active), size=drop_count, replace=False)
            for row in drop_rows:
                stage, layer = active[row]
                values[stage, layer] = 0
        return IndicatorMatrix(values)

    def sample_mapping(self, rng: np.random.Generator) -> Tuple[str, ...]:
        """Sample a stage-to-unit assignment (distinct units, Eq. 7)."""
        chosen = rng.choice(self.platform.num_units, size=self.num_stages, replace=False)
        return tuple(self.platform.compute_units[int(index)].name for index in chosen)

    def sample_dvfs(self, rng: np.random.Generator, unit_names: Sequence[str]) -> Tuple[int, ...]:
        """Sample a DVFS operating point index for each stage's unit."""
        indices = []
        for name in unit_names:
            unit = self.platform.unit(name)
            indices.append(int(rng.integers(0, unit.num_dvfs_points())))
        return tuple(indices)

    def sample(self, seed: int | np.random.Generator | None = None) -> MappingConfig:
        """Sample one complete configuration ``Pi``."""
        generator = as_rng(seed)
        unit_names = self.sample_mapping(generator)
        return MappingConfig(
            partition=self.sample_partition(generator),
            indicator=self.sample_indicator(generator),
            unit_names=unit_names,
            dvfs_indices=self.sample_dvfs(generator, unit_names),
        )

    def population(self, size: int, seed: int | np.random.Generator | None = None) -> list:
        """Sample an initial population of ``size`` configurations."""
        if size < 1:
            raise ConfigurationError(f"population size must be >= 1, got {size}")
        generator = as_rng(seed)
        return [self.sample(generator) for _ in range(size)]

    # -- cardinality ------------------------------------------------------------
    def dvfs_cardinality(self) -> int:
        """Joint number of DVFS settings across the platform's units."""
        return self.platform.dvfs_space_size()

    def mapping_cardinality(self) -> int:
        """Number of distinct stage-to-unit assignments (ordered, no repeats)."""
        return math.perm(self.platform.num_units, self.num_stages)

    def per_layer_cardinality(self) -> int:
        """Size of the mapping space contributed by a single layer.

        This is the quantity the paper reports in Sect. V-A: the partition
        choices of one layer (``|ratios| ** M``) times the stage-to-unit
        assignments times the joint DVFS settings.  For Visformer with 8
        ratios, ``M = 3`` and ~50 DVFS combinations this is O(1.5e5).
        """
        partition_choices = len(self.ratio_choices) ** self.num_stages
        return partition_choices * self.mapping_cardinality() * self.dvfs_cardinality()

    def total_cardinality(self) -> float:
        """Loose upper bound on the size of the full joint space.

        Partition and indicator choices multiply across layers, so the space
        is astronomically large -- the reason the paper uses an evolutionary
        search rather than enumeration.  Returned as a float because it
        overflows 64-bit integers for deep networks.
        """
        partition_choices = float(len(self.ratio_choices)) ** (self.num_stages * self.num_layers)
        indicator_choices = 2.0 ** ((self.num_stages - 1) * self.num_layers)
        return (
            partition_choices
            * indicator_choices
            * self.mapping_cardinality()
            * self.dvfs_cardinality()
        )

    def replace_unit(self, config: MappingConfig, stage: int, unit_name: str) -> MappingConfig:
        """Return a copy of ``config`` with ``stage`` remapped to ``unit_name``.

        If another stage already occupies ``unit_name`` the two stages swap
        units, keeping the assignment a valid permutation.
        """
        if unit_name not in self.platform.unit_names:
            raise MappingError(f"unknown unit {unit_name!r}")
        names = list(config.unit_names)
        dvfs = list(config.dvfs_indices)
        if unit_name in names:
            other = names.index(unit_name)
            names[other], names[stage] = names[stage], names[other]
        else:
            names[stage] = unit_name
        # Clamp every DVFS index to its (possibly new) unit's table size.
        dvfs = [
            min(index, self.platform.unit(name).num_dvfs_points() - 1)
            for index, name in zip(dvfs, names)
        ]
        return replace(config, unit_names=tuple(names), dvfs_indices=tuple(dvfs))
