"""Search objectives (Sect. V-B).

The paper's composite objective (Eq. 16) rewards configurations whose early
stages absorb many samples cheaply while keeping the final-stage accuracy
close to the pretrained baseline:

    P = (Acc_base / Acc_SM) * (sum_i T_{S_i} * N_i) * (sum_i E_{S_{1:i}} * N_i)

where ``N_i`` is the number of validation samples first classified correctly
at stage ``i``, ``T_{S_i}`` the stage latency (Eq. 9) and ``E_{S_{1:i}}`` the
cumulative energy of instantiating the first ``i`` stages (Eq. 14).  Smaller
is better.  Two additional scalarisations -- latency-oriented and
energy-oriented -- are provided for selecting the "Ours-L" and "Ours-E"
models of Table II from a Pareto set.
"""

from __future__ import annotations

from .evaluation import EvaluatedConfig

__all__ = [
    "paper_objective",
    "latency_oriented_objective",
    "energy_oriented_objective",
]

#: Numerical floor preventing division by a zero final-stage accuracy.
_MIN_ACCURACY = 1e-3


def paper_objective(evaluated: EvaluatedConfig) -> float:
    """Composite objective of Eq. 16 (lower is better)."""
    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    statistics = evaluated.inference.exit_statistics
    profile = evaluated.profile
    latency_term = 0.0
    energy_term = 0.0
    for stage_index, count in enumerate(statistics.correct_counts):
        latency_term += profile.stage_latency_ms(stage_index) * count
        energy_term += profile.cumulative_energy_mj(stage_index) * count
    # A degenerate configuration that classifies nothing correctly produces
    # zero latency/energy terms; give it the worst possible score instead of
    # an artificially perfect one.
    if latency_term == 0.0 or energy_term == 0.0:
        return float("inf")
    return accuracy_term * latency_term * energy_term


def latency_oriented_objective(evaluated: EvaluatedConfig) -> float:
    """Average latency penalised by accuracy loss (used to pick "Ours-L")."""
    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    return evaluated.latency_ms * accuracy_term


def energy_oriented_objective(evaluated: EvaluatedConfig) -> float:
    """Average energy penalised by accuracy loss (used to pick "Ours-E")."""
    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    return evaluated.energy_mj * accuracy_term
