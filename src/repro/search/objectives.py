"""Search objectives (Sect. V-B) and the pluggable objective layer.

The paper's composite objective (Eq. 16) rewards configurations whose early
stages absorb many samples cheaply while keeping the final-stage accuracy
close to the pretrained baseline:

    P = (Acc_base / Acc_SM) * (sum_i T_{S_i} * N_i) * (sum_i E_{S_{1:i}} * N_i)

where ``N_i`` is the number of validation samples first classified correctly
at stage ``i``, ``T_{S_i}`` the stage latency (Eq. 9) and ``E_{S_{1:i}}`` the
cumulative energy of instantiating the first ``i`` stages (Eq. 14).  Smaller
is better.  Two additional scalarisations -- latency-oriented and
energy-oriented -- are provided for selecting the "Ours-L" and "Ours-E"
models of Table II from a Pareto set.

On top of the scalarisations, this module defines the *objective layer* the
multi-objective machinery is built on: an :class:`ObjectiveSpec` names one
axis (how to extract it from an :class:`~repro.search.evaluation.EvaluatedConfig`,
whether it is minimised or maximised, and which transform a surrogate should
train it under), and an :class:`ObjectiveSet` bundles the axes the search
optimises.  :func:`default_objective_set` reproduces the historical
(latency, energy, -accuracy) behaviour exactly; :func:`serving_objectives`
extends it with the M/D/1 expected queueing wait so NSGA-II optimises for
load directly.
"""

from __future__ import annotations

import hashlib
import math
import types
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .evaluation import EvaluatedConfig

__all__ = [
    "paper_objective",
    "latency_oriented_objective",
    "energy_oriented_objective",
    "serving_oriented_objective",
    "nan_guarded",
    "ObjectiveSpec",
    "ObjectiveSet",
    "default_objective_set",
    "serving_objectives",
    "measured_serving_objectives",
    "MeasuredObjectives",
    "ExpectedWaitExtractor",
    "MeasuredWaitExtractor",
    "as_objective_set",
    "DEFAULT_OBJECTIVES",
]

#: Numerical floor preventing division by a zero final-stage accuracy.
_MIN_ACCURACY = 1e-3


def paper_objective(evaluated: EvaluatedConfig) -> float:
    """Composite objective of Eq. 16 (lower is better)."""
    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    statistics = evaluated.inference.exit_statistics
    profile = evaluated.profile
    latency_term = 0.0
    energy_term = 0.0
    for stage_index, count in enumerate(statistics.correct_counts):
        latency_term += profile.stage_latency_ms(stage_index) * count
        energy_term += profile.cumulative_energy_mj(stage_index) * count
    # A degenerate configuration that classifies nothing correctly produces
    # zero latency/energy terms; give it the worst possible score instead of
    # an artificially perfect one.
    if latency_term == 0.0 or energy_term == 0.0:
        return float("inf")
    return accuracy_term * latency_term * energy_term


def latency_oriented_objective(evaluated: EvaluatedConfig) -> float:
    """Average latency penalised by accuracy loss (used to pick "Ours-L")."""
    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    return evaluated.latency_ms * accuracy_term


def energy_oriented_objective(evaluated: EvaluatedConfig) -> float:
    """Average energy penalised by accuracy loss (used to pick "Ours-E")."""
    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    return evaluated.energy_mj * accuracy_term


def serving_oriented_objective(evaluated: EvaluatedConfig, rate_rps: float) -> float:
    """Sojourn time under load penalised by accuracy loss.

    Scores a candidate by its M/D/1 response time — service latency plus the
    expected queueing wait at ``rate_rps`` requests/s — times the same
    accuracy penalty the other scalarisations use.  A mapping whose
    bottleneck saturates at the offered rate scores ``inf`` and sorts last.
    """
    from ..serving.policies import Deployment

    accuracy = max(_MIN_ACCURACY, evaluated.accuracy)
    accuracy_term = evaluated.dynamic_network.network.base_accuracy / accuracy
    wait_ms = Deployment.from_evaluated(evaluated).expected_wait_ms(rate_rps)
    return (evaluated.latency_ms + wait_ms) * accuracy_term


def nan_guarded(
    objective: Callable[[EvaluatedConfig], float]
) -> Callable[[EvaluatedConfig], float]:
    """Wrap a scalar objective so NaN scores sort last instead of randomly.

    ``sorted(pool, key=objective)`` silently mis-orders a pool when the key
    returns NaN (every comparison against NaN is false, so NaN entries keep
    whatever position the sort happens to probe).  Mapping NaN to ``+inf``
    keeps degenerate candidates deterministically at the bottom; finite and
    ``inf`` scores pass through unchanged.
    """

    def guarded(item: EvaluatedConfig) -> float:
        value = float(objective(item))
        return float("inf") if math.isnan(value) else value

    return guarded


# -- the objective layer ---------------------------------------------------------

_DIRECTIONS = ("min", "max")
_TRANSFORMS = ("log1p", "symlog", "raw")


def _latency_extractor(item: EvaluatedConfig) -> float:
    return item.latency_ms


def _energy_extractor(item: EvaluatedConfig) -> float:
    return item.energy_mj


def _accuracy_extractor(item: EvaluatedConfig) -> float:
    return item.accuracy


@dataclass(frozen=True)
class ExpectedWaitExtractor:
    """Picklable extractor: M/D/1 expected queueing wait at a fixed rate.

    Distills the candidate into a :class:`~repro.serving.policies.Deployment`
    and reads :meth:`~repro.serving.policies.Deployment.expected_wait_ms` at
    ``rate_rps`` — ``inf`` when the bottleneck compute unit saturates, which
    the objective layer treats as "worst possible", so saturated mappings are
    dominated by every mapping that keeps up with the offered load.
    """

    rate_rps: float

    def __call__(self, item: EvaluatedConfig) -> float:
        from ..serving.policies import Deployment

        return Deployment.from_evaluated(item).expected_wait_ms(self.rate_rps)


@dataclass(frozen=True)
class MeasuredWaitExtractor:
    """Picklable extractor: *measured* mean queueing wait under a replay.

    Where :class:`ExpectedWaitExtractor` answers from the M/D/1 formula, this
    extractor distils the candidate into a
    :class:`~repro.serving.policies.Deployment` and replays a short seeded
    traffic scenario through the deterministic event-loop simulator
    (:func:`~repro.serving.bridge.measured_serving_metrics`), reading the
    measured ``mean_queueing_ms`` — directly comparable to the proxy, but
    aware of burst shapes, transient queue build-up and the finite horizon
    the proxy's steady-state assumption ignores.

    The content-bearing fields (platform, workload member, traffic seed,
    replay duration) define the extractor's identity: they appear in ``repr``
    and therefore in objective-set fingerprints, so changing the replay
    re-runs exactly the affected campaign cells.  The attached
    :class:`~repro.serving.result_cache.ServingResultCache` is excluded from
    both ``repr`` and equality — it is an accelerator, not an identity — and
    pickles along with the extractor so process-pool evaluation backends
    carry their warm entries across.
    """

    platform: object
    workload: object
    traffic_seed: int
    duration_ms: float
    family_name: str = ""
    cache: Optional[object] = field(default=None, repr=False, compare=False)

    def __call__(self, item: EvaluatedConfig) -> float:
        from ..serving.bridge import measured_serving_metrics

        metrics = measured_serving_metrics(
            item,
            self.platform,
            self.workload,
            self.duration_ms,
            seed=self.traffic_seed,
            cache=self.cache,
            family_name=self.family_name,
        )
        return metrics.mean_queueing_ms


def _extractor_identity(extractor: Callable[[EvaluatedConfig], float]) -> str:
    """Stable, process-independent identity of an extractor callable.

    Module-level functions are identified by qualified name; other callables
    (frozen dataclasses such as :class:`ExpectedWaitExtractor`) by ``repr``,
    which for dataclasses encodes the class and every field value.  Plain
    ``repr`` of a function would embed a memory address and break
    fingerprints across processes.
    """
    if isinstance(extractor, (types.FunctionType, types.BuiltinFunctionType)):
        return f"{extractor.__module__}.{extractor.__qualname__}"
    return repr(extractor)


@dataclass(frozen=True)
class ObjectiveSpec:
    """One named search objective.

    Parameters
    ----------
    name:
        Column name in reports and key in surrogate predictions.
    extractor:
        Callable mapping an :class:`~repro.search.evaluation.EvaluatedConfig`
        to the raw objective value.  Must be picklable (a module-level
        function or a frozen-dataclass instance), because campaign cells ship
        their objectives to worker processes.
    direction:
        ``"min"`` or ``"max"``; internally every objective is minimised, so
        ``"max"`` values are negated at the boundary.
    transform:
        How a surrogate trains this target: ``"log1p"`` for positive
        heavy-tailed metrics, ``"symlog"`` for signed heavy-tailed values,
        ``"raw"`` for already-bounded values.
    clip:
        Optional ``(low, high)`` bounds applied to surrogate predictions of
        the raw value (e.g. accuracies live in ``[0, 1]``).
    """

    name: str
    extractor: Callable[[EvaluatedConfig], float]
    direction: str = "min"
    transform: str = "log1p"
    clip: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("objective name must be non-empty")
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"objective direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )
        if self.transform not in _TRANSFORMS:
            raise ConfigurationError(
                f"objective transform must be one of {_TRANSFORMS}, got {self.transform!r}"
            )
        if not callable(self.extractor):
            raise ConfigurationError(
                f"objective extractor must be callable, got {type(self.extractor).__name__}"
            )

    def raw_value(self, item: EvaluatedConfig) -> float:
        """The objective in its natural units (accuracy as accuracy, etc.).

        Surrogate predictions carry an ``objective_values`` mapping with the
        predicted raw value per spec name; anything else goes through the
        extractor.
        """
        predicted = getattr(item, "objective_values", None)
        if predicted is not None and self.name in predicted:
            return float(predicted[self.name])
        return float(self.extractor(item))

    def value(self, item: EvaluatedConfig) -> float:
        """The minimised objective value, with NaN mapped to ``+inf``.

        NaN from a degenerate extractor would otherwise silently poison
        sorting and domination checks (every comparison against NaN is
        false); mapping it to ``inf`` makes "undefined" deterministically
        worst.
        """
        raw = self.raw_value(item)
        if math.isnan(raw):
            return float("inf")
        return -raw if self.direction == "max" else raw

    def describe(self) -> str:
        """Canonical one-line identity used in checkpoint fingerprints."""
        return (
            f"{self.name}:{self.direction}:{self.transform}:{self.clip!r}:"
            f"{_extractor_identity(self.extractor)}"
        )


@dataclass(frozen=True)
class ObjectiveSet:
    """The ordered, named objectives one search minimises jointly.

    The set is what gets threaded through the stack: Pareto analysis and
    NSGA-II ranking read :meth:`values` / :meth:`matrix`, the surrogate
    trains one model per spec under the spec's declared transform, reports
    render one column per name, and campaign checkpoints embed
    :meth:`describe` so a changed set re-runs exactly the affected cells.
    """

    specs: Tuple[ObjectiveSpec, ...]

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        object.__setattr__(self, "specs", specs)
        if not specs:
            raise ConfigurationError("an ObjectiveSet needs at least one objective")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"objective names must be unique, got {names}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[ObjectiveSpec]:
        return iter(self.specs)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    def values(self, item: EvaluatedConfig) -> Tuple[float, ...]:
        """Minimised objective vector of one candidate."""
        return tuple(spec.value(item) for spec in self.specs)

    def matrix(self, evaluated: Sequence[EvaluatedConfig]) -> np.ndarray:
        """Stack :meth:`values` rows for NSGA-II's non-dominated sorting."""
        return np.array([self.values(item) for item in evaluated], dtype=float)

    def reference_point(
        self, fronts: Sequence[Sequence[EvaluatedConfig]]
    ) -> List[float]:
        """Shared hypervolume reference slightly worse than every candidate."""
        reference: List[float] = []
        for spec in self.specs:
            worst = max(spec.value(item) for front in fronts for item in front)
            reference.append(worst + 0.1 * abs(worst) + 1e-9)
        return reference

    def describe(self) -> str:
        """Canonical identity string (stable across processes and runs)."""
        return " | ".join(spec.describe() for spec in self.specs)

    def fingerprint(self) -> str:
        """Short digest of :meth:`describe` for checkpoint records."""
        return hashlib.sha256(self.describe().encode("utf-8")).hexdigest()[:16]


#: The historical axes: minimise latency and energy, maximise accuracy.
_LATENCY_SPEC = ObjectiveSpec(
    name="latency_ms", extractor=_latency_extractor, direction="min", transform="log1p"
)
_ENERGY_SPEC = ObjectiveSpec(
    name="energy_mj", extractor=_energy_extractor, direction="min", transform="log1p"
)
_ACCURACY_SPEC = ObjectiveSpec(
    name="accuracy",
    extractor=_accuracy_extractor,
    direction="max",
    transform="raw",
    clip=(0.0, 1.0),
)

DEFAULT_OBJECTIVES = ObjectiveSet(specs=(_LATENCY_SPEC, _ENERGY_SPEC, _ACCURACY_SPEC))


def default_objective_set() -> ObjectiveSet:
    """The (latency, energy, accuracy) set, byte-identical to the seed keys."""
    return DEFAULT_OBJECTIVES


def serving_objectives(
    family=None, target_rps: Optional[float] = None
) -> ObjectiveSet:
    """Default axes plus the M/D/1 expected wait at the family's peak rate.

    Turns the PR-7 queueing helpers into a fourth search objective: NSGA-II
    then trades latency/energy/accuracy against how gracefully a mapping
    absorbs the offered load, instead of discovering saturation only when the
    serving campaign replays traffic afterwards.

    Parameters
    ----------
    family:
        A :class:`~repro.serving.families.WorkloadFamily`; its
        ``peak_rate_rps`` sets the rate the wait is evaluated at.
    target_rps:
        Explicit rate in requests/s, overriding (or replacing) the family.
    """
    if target_rps is None:
        if family is None:
            raise ConfigurationError(
                "serving_objectives needs a workload family or an explicit target_rps"
            )
        target_rps = family.peak_rate_rps
    rate = float(target_rps)
    if not rate > 0.0:
        raise ConfigurationError(f"target_rps must be positive, got {target_rps}")
    wait_spec = ObjectiveSpec(
        name="expected_wait_ms",
        extractor=ExpectedWaitExtractor(rate_rps=rate),
        direction="min",
        transform="log1p",
    )
    return ObjectiveSet(specs=DEFAULT_OBJECTIVES.specs + (wait_spec,))


def measured_serving_objectives(
    family,
    platform,
    duration_ms: float = 400.0,
    seed: int = 0,
    members: int = 3,
    cache=None,
) -> ObjectiveSet:
    """Default axes plus the *measured* queueing wait of a simulated replay.

    The other half of the serving-aware loop: where :func:`serving_objectives`
    scores candidates with the M/D/1 steady-state formula, this set replays
    the family's busiest member (:meth:`WorkloadFamily.peak_member
    <repro.serving.families.WorkloadFamily.peak_member>` under ``seed``)
    through the deterministic traffic simulator for every candidate NSGA-II
    evaluates, so the fourth objective reflects burst shapes and transient
    queue build-up the proxy cannot see.  A content-keyed
    :class:`~repro.serving.result_cache.ServingResultCache` makes each
    distinct deployment pay for exactly one replay across all generations
    and domination checks.

    Parameters
    ----------
    family:
        A :class:`~repro.serving.families.WorkloadFamily`; its busiest member
        under ``seed`` becomes the replayed scenario.
    platform:
        The :class:`~repro.soc.platform.Platform` the deployment is simulated
        on (a measured wait, unlike the proxy, needs concrete hardware).
    duration_ms:
        Replay horizon per simulation; also the probe window for picking the
        peak member.  Short by design — the replay runs inside the search
        loop.
    seed:
        Campaign seed selecting the member parameters and traffic stream.
    members:
        How many family members to expand when probing for the peak.
    cache:
        Optional :class:`~repro.serving.result_cache.ServingResultCache`
        instance (or a compatible lookup/store wrapper such as
        :class:`~repro.serving.result_cache.ServingCacheRecorder`), or a path
        for a persistent one; defaults to a fresh in-memory cache private to
        this objective set.
    """
    from pathlib import Path as _Path

    from ..serving.families import WorkloadFamily
    from ..serving.result_cache import ServingResultCache

    if not isinstance(family, WorkloadFamily):
        raise ConfigurationError(
            f"measured_serving_objectives needs a WorkloadFamily, "
            f"got {type(family).__name__}"
        )
    if platform is None:
        raise ConfigurationError(
            "measured_serving_objectives needs a platform to simulate on"
        )
    if not float(duration_ms) > 0.0:
        raise ConfigurationError(f"duration_ms must be positive, got {duration_ms}")
    if cache is None:
        cache = ServingResultCache()
    elif isinstance(cache, (str, _Path)):
        cache = ServingResultCache(path=cache)
    _, workload, traffic_seed = family.peak_member(
        int(seed), int(members), probe_ms=float(duration_ms)
    )
    wait_spec = ObjectiveSpec(
        name="measured_wait_ms",
        extractor=MeasuredWaitExtractor(
            platform=platform,
            workload=workload,
            traffic_seed=traffic_seed,
            duration_ms=float(duration_ms),
            family_name=family.name,
            cache=cache,
        ),
        direction="min",
        transform="log1p",
    )
    return ObjectiveSet(specs=DEFAULT_OBJECTIVES.specs + (wait_spec,))


@dataclass(frozen=True)
class MeasuredObjectives:
    """Picklable per-cell factory for measured serving objective sets.

    A campaign cannot take a ready-made
    :func:`measured_serving_objectives` set: the set binds one concrete
    platform (the extractor simulates on it), while a campaign fans the same
    search out across a *grid* of platforms.  This factory carries the
    platform-independent half of the recipe — family, replay budget, member
    count, optional seed override — and each cell calls :meth:`bind` with its
    own platform (and the campaign seed and shared result cache) at fan-out
    time.  Frozen and pickle-friendly, so it ships inside cell tasks to
    process-pool workers unchanged.

    Parameters
    ----------
    family:
        The :class:`~repro.serving.families.WorkloadFamily` whose busiest
        member becomes every cell's replayed scenario.
    duration_ms:
        Replay horizon per simulation (also the peak-member probe window).
    members:
        Family members expanded when probing for the peak.
    seed:
        Optional override; ``None`` (default) binds with the campaign seed,
        keeping the measured replays aligned with the serving-cell replays so
        the shared cache can reuse search-time entries.
    """

    family: object
    duration_ms: float = 400.0
    members: int = 3
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        from ..serving.families import WorkloadFamily

        if not isinstance(self.family, WorkloadFamily):
            raise ConfigurationError(
                f"MeasuredObjectives needs a WorkloadFamily, "
                f"got {type(self.family).__name__}"
            )
        if not float(self.duration_ms) > 0.0:
            raise ConfigurationError(
                f"duration_ms must be positive, got {self.duration_ms}"
            )
        if int(self.members) < 1:
            raise ConfigurationError(f"members must be >= 1, got {self.members}")

    def bind(self, platform, seed: Optional[int] = None, cache=None) -> ObjectiveSet:
        """The cell-level set: :func:`measured_serving_objectives` on ``platform``.

        ``seed`` is the campaign seed (ignored when the factory carries its
        own); ``cache`` is the cell's view of the shared
        :class:`~repro.serving.result_cache.ServingResultCache`.  The bound
        set's ``fingerprint()``/``describe()`` cover platform, workload
        member, traffic seed and duration — the cache deliberately does not
        participate in the identity.
        """
        effective = self.seed if self.seed is not None else (0 if seed is None else seed)
        return measured_serving_objectives(
            self.family,
            platform,
            duration_ms=float(self.duration_ms),
            seed=int(effective),
            members=int(self.members),
            cache=cache,
        )


def as_objective_set(objectives) -> ObjectiveSet:
    """Coerce ``None`` / an ``ObjectiveSet`` / legacy key sequences.

    ``None`` resolves to the default set.  A sequence of plain callables (the
    seed's ``keys=`` convention: every key already minimised) is wrapped into
    anonymous specs so older call sites keep working.
    """
    if objectives is None:
        return DEFAULT_OBJECTIVES
    if isinstance(objectives, ObjectiveSet):
        return objectives
    if isinstance(objectives, ObjectiveSpec):
        return ObjectiveSet(specs=(objectives,))
    try:
        keys = tuple(objectives)
    except TypeError:
        raise ConfigurationError(
            f"objectives must be an ObjectiveSet or a sequence of callables, "
            f"got {type(objectives).__name__}"
        )
    specs = tuple(
        ObjectiveSpec(
            name=f"objective_{index}", extractor=key, direction="min", transform="symlog"
        )
        for index, key in enumerate(keys)
    )
    return ObjectiveSet(specs=specs)
