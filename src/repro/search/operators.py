"""Variation operators for the evolutionary search (mutation & crossover).

The operators work directly on :class:`~repro.search.space.MappingConfig`
instances and always return valid configurations: partition columns stay
normalised, indicator matrices respect the search space's reuse cap, the
stage-to-unit assignment stays a permutation without repeats, and DVFS
indices stay within each unit's table.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..nn.partition import IndicatorMatrix, PartitionMatrix
from ..utils import as_rng
from .space import MappingConfig, SearchSpace

__all__ = ["mutate", "crossover"]


def _mutate_partition(
    config: MappingConfig, space: SearchSpace, rng: np.random.Generator
) -> MappingConfig:
    """Resample the partition ratios of one random layer column."""
    values = config.partition.values.copy()
    layer = int(rng.integers(0, space.num_layers))
    raw = rng.choice(space.ratio_choices, size=space.num_stages)
    values[:, layer] = raw / raw.sum()
    return replace(config, partition=PartitionMatrix(values))


def _mutate_indicator(
    config: MappingConfig, space: SearchSpace, rng: np.random.Generator
) -> MappingConfig:
    """Flip one reuse bit of a non-final stage, then repair to the reuse cap."""
    if space.num_stages < 2:
        return config
    values = config.indicator.values.copy()
    stage = int(rng.integers(0, space.num_stages - 1))
    layer = int(rng.integers(0, space.num_layers))
    values[stage, layer] = 1 - values[stage, layer]
    indicator = space.repair_indicator(IndicatorMatrix(values), rng)
    return replace(config, indicator=indicator)


def _mutate_mapping(
    config: MappingConfig, space: SearchSpace, rng: np.random.Generator
) -> MappingConfig:
    """Remap one stage to a random unit (swapping if that unit is taken)."""
    stage = int(rng.integers(0, space.num_stages))
    unit = space.platform.compute_units[int(rng.integers(0, space.platform.num_units))]
    return space.replace_unit(config, stage, unit.name)


def _mutate_dvfs(
    config: MappingConfig, space: SearchSpace, rng: np.random.Generator
) -> MappingConfig:
    """Random-walk the DVFS operating point of one stage by one step."""
    stage = int(rng.integers(0, space.num_stages))
    unit = space.platform.unit(config.unit_names[stage])
    step = int(rng.choice([-1, 1]))
    indices = list(config.dvfs_indices)
    indices[stage] = int(np.clip(indices[stage] + step, 0, unit.num_dvfs_points() - 1))
    return replace(config, dvfs_indices=tuple(indices))


_MUTATIONS = (_mutate_partition, _mutate_indicator, _mutate_mapping, _mutate_dvfs)


def mutate(
    config: MappingConfig,
    space: SearchSpace,
    rng: int | np.random.Generator | None = None,
    num_mutations: int = 1,
) -> MappingConfig:
    """Apply ``num_mutations`` random elementary mutations to ``config``."""
    generator = as_rng(rng)
    mutated = config
    for _ in range(max(1, num_mutations)):
        operator = _MUTATIONS[int(generator.integers(0, len(_MUTATIONS)))]
        mutated = operator(mutated, space, generator)
    return mutated


def crossover(
    parent_a: MappingConfig,
    parent_b: MappingConfig,
    space: SearchSpace,
    rng: int | np.random.Generator | None = None,
) -> MappingConfig:
    """Uniform layer-wise crossover of two parents.

    Partition and indicator columns are inherited per layer from either
    parent with equal probability; the stage-to-unit mapping and DVFS vector
    are taken together from one parent so they stay mutually consistent.
    """
    generator = as_rng(rng)
    partition = parent_a.partition.values.copy()
    indicator = parent_a.indicator.values.copy()
    take_b = generator.random(space.num_layers) < 0.5
    partition[:, take_b] = parent_b.partition.values[:, take_b]
    indicator[:, take_b] = parent_b.indicator.values[:, take_b]
    mapping_parent = parent_a if generator.random() < 0.5 else parent_b
    child = MappingConfig(
        partition=PartitionMatrix(partition),
        indicator=space.repair_indicator(IndicatorMatrix(indicator), generator),
        unit_names=mapping_parent.unit_names,
        dvfs_indices=mapping_parent.dvfs_indices,
    )
    return child
