"""Candidate evaluation pipeline (the "Evaluate" box of Fig. 5).

For every sampled configuration ``Pi`` the framework must:

1. partition and reorder the network according to ``P`` and the channel
   ranking, and attach exits (:mod:`repro.nn`),
2. characterise the concurrent execution on the chosen units / DVFS points
   (:mod:`repro.perf`),
3. simulate the dynamic inference to obtain exit statistics, accuracy and
   average latency/energy (:mod:`repro.dynamics`).

:class:`ConfigEvaluator` wires those steps behind a single ``evaluate`` call
and caches results by configuration so the evolutionary loop never pays twice
for elites carried across generations.  The per-layer cost model is pluggable
(analytical oracle or trained surrogate), mirroring the paper's use of an
XGBoost predictor inside the loop.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.inference import DynamicInferenceResult, simulate_dynamic_inference
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..nn.channels import ChannelRanking, rank_channels
from ..nn.graph import NetworkGraph
from ..nn.multiexit import DynamicNetwork, build_dynamic_network
from ..perf.evaluator import HardwareProfile, MappingEvaluator
from ..perf.layer_cost import CostModel
from ..soc.platform import Platform
from .space import MappingConfig

__all__ = ["EvaluatedConfig", "ConfigEvaluator"]


@dataclass(frozen=True, eq=False)
class EvaluatedConfig:
    """A configuration together with everything the search needs to rank it.

    Equality is identity: the evaluator caches by configuration, so two
    references to the same evaluated configuration are the same object, and
    membership tests (``config in pareto_set``) compare identities instead of
    trying to compare the nested numpy matrices element-wise.
    """

    config: MappingConfig
    dynamic_network: DynamicNetwork
    profile: HardwareProfile
    inference: DynamicInferenceResult

    # -- convenience accessors used by objectives, constraints and reports -------
    @property
    def accuracy(self) -> float:
        """Top-1 accuracy of the dynamic cascade."""
        return self.inference.accuracy

    @property
    def latency_ms(self) -> float:
        """Average per-sample latency under dynamic inference."""
        return self.inference.expected_latency_ms

    @property
    def energy_mj(self) -> float:
        """Average per-sample energy under dynamic inference."""
        return self.inference.expected_energy_mj

    @property
    def worst_case_latency_ms(self) -> float:
        """Latency when every stage is instantiated (Eq. 13)."""
        return self.inference.worst_case_latency_ms

    @property
    def worst_case_energy_mj(self) -> float:
        """Energy when every stage is instantiated (Eq. 14, M' = M)."""
        return self.inference.worst_case_energy_mj

    @property
    def reuse_fraction(self) -> float:
        """Fraction of forwardable feature maps reused."""
        return self.inference.reuse_fraction

    @property
    def stored_feature_bytes(self) -> int:
        """Shared-memory footprint of forwarded features."""
        return self.inference.stored_feature_bytes

    @property
    def accuracy_drop(self) -> float:
        """Accuracy drop relative to the pretrained baseline (can be negative)."""
        return self.dynamic_network.network.base_accuracy - self.accuracy

    def summary_row(self) -> dict:
        """Flat dictionary used by the report tables."""
        return {
            "mapping": self.config.describe(),
            "accuracy_pct": 100.0 * self.accuracy,
            "avg_energy_mj": self.energy_mj,
            "avg_latency_ms": self.latency_ms,
            "reuse_pct": 100.0 * self.reuse_fraction,
        }


def _config_key(config: MappingConfig) -> Tuple:
    """Hashable identity of a configuration for evaluation caching."""
    return (
        config.partition.values.tobytes(),
        config.indicator.values.tobytes(),
        config.unit_names,
        config.dvfs_indices,
    )


def _ranking_fingerprint(ranking: ChannelRanking) -> str:
    """Stable digest of a channel ranking's full content (scores *and* order).

    Two rankings synthesised from different seeds produce different score
    vectors, so hashing the scores captures the seed without needing to store
    it; the order arrays are hashed too because an externally supplied
    ranking may pair identical scores with a different channel ordering,
    which changes coverage and therefore every evaluated accuracy.
    """
    digest = hashlib.sha256()
    digest.update(ranking.network_name.encode("utf-8"))
    for layer_name in ranking.layer_names():
        digest.update(layer_name.encode("utf-8"))
        digest.update(np.asarray(ranking.scores[layer_name], dtype=float).tobytes())
        digest.update(np.asarray(ranking.order[layer_name], dtype=np.int64).tobytes())
    return digest.hexdigest()


class ConfigEvaluator:
    """Evaluate mapping configurations for one network on one platform.

    Parameters
    ----------
    network:
        The pretrained network being transformed and mapped.
    platform:
        Target MPSoC.
    cost_model:
        Per-layer latency/energy model; ``None`` selects the analytical
        oracle.  Pass a trained :class:`~repro.perf.predictor.SurrogateCostModel`
        to reproduce the paper's surrogate-in-the-loop setup.
    accuracy_model:
        Coverage-to-accuracy model; ``None`` selects the calibrated default.
    ranking:
        Channel-importance ranking; ``None`` synthesises one from ``seed``.
    reorder_channels:
        Whether to apply the Sect. V-D importance reordering (the ablation
        benches disable it).
    validation_samples:
        Validation-set size for the exit statistics.
    """

    def __init__(
        self,
        network: NetworkGraph,
        platform: Platform,
        cost_model: Optional[CostModel] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        ranking: Optional[ChannelRanking] = None,
        reorder_channels: bool = True,
        validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.platform = platform
        self.cost_model = cost_model
        self.accuracy_model = accuracy_model if accuracy_model is not None else AccuracyModel()
        self.ranking = ranking if ranking is not None else rank_channels(network, seed=seed)
        self.reorder_channels = bool(reorder_channels)
        self.validation_samples = int(validation_samples)
        self.seed = int(seed)
        self._mapping_evaluator = MappingEvaluator(platform, cost_model=cost_model)
        # Fingerprint the *effective* cost model (the mapping evaluator
        # substitutes the analytical oracle for None) now, before any
        # stateful use can advance internal RNGs: class plus full pickled
        # state, so two surrogates trained differently or two noise levels
        # never alias cache entries.  Fixed protocol keeps the digest stable
        # across Python versions for persistent caches.  An unpicklable
        # custom model still works: its fallback fingerprint is unique per
        # instance, which forgoes cache sharing but can never alias.
        effective_cost_model = self._mapping_evaluator.cost_model
        try:
            state_digest = hashlib.sha256(
                pickle.dumps(effective_cost_model, protocol=4)
            ).hexdigest()
        except Exception:  # noqa: BLE001 - arbitrary user models may not pickle
            state_digest = f"unpicklable-{id(effective_cost_model):#x}"
        self._cost_model_fingerprint = (
            type(effective_cost_model).__name__,
            state_digest,
        )
        self._cache: Dict[Tuple, EvaluatedConfig] = {}
        self._identity: Optional[Tuple] = None

    @property
    def evaluations(self) -> int:
        """Number of distinct configurations evaluated so far."""
        return len(self._cache)

    # -- content identity --------------------------------------------------------
    def identity_key(self) -> Tuple:
        """Hashable identity of this evaluator's *configuration*.

        Two evaluators that would score the same :class:`MappingConfig`
        differently (different network, platform, channel ranking, reordering
        flag, accuracy model, cost model or validation budget) must never
        alias cache entries, so all of those feed the key.  The cost model
        contributes its construction-time state digest, so surrogates trained
        on different data and noise models with different levels are
        discriminated too.
        """
        if self._identity is None:
            self._identity = (
                self.network.name,
                self.platform.name,
                _ranking_fingerprint(self.ranking),
                self.reorder_channels,
                repr(self.accuracy_model),
                self._cost_model_fingerprint,
                self.validation_samples,
            )
        return self._identity

    def config_key(self, config: MappingConfig) -> Tuple:
        """Full content key of ``config`` *as seen by this evaluator*.

        Unlike the bare configuration key, this includes the evaluator
        identity (channel ranking, ``reorder_channels``, ...) so results from
        differently configured evaluators can share one cache without
        aliasing.
        """
        return _config_key(config) + self.identity_key()

    def content_digest(self, config: MappingConfig) -> str:
        """Stable hex digest of :meth:`config_key`, for persistent caches."""
        digest = hashlib.sha256()
        for part in self.config_key(config):
            if isinstance(part, bytes):
                digest.update(part)
            else:
                digest.update(repr(part).encode("utf-8"))
        return digest.hexdigest()

    def evaluate(self, config: MappingConfig) -> EvaluatedConfig:
        """Run the full pipeline for ``config`` (cached).

        The private per-instance cache keys on the bare configuration: the
        evaluator identity is constant here, so including it would cost hash
        work for zero discrimination.  Caches *shared between* evaluators
        (the engine's :class:`~repro.engine.cache.EvaluationCache`) key on
        :meth:`content_digest`, which does include the identity.
        """
        key = _config_key(config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dynamic_network = build_dynamic_network(
            self.network,
            partition=config.partition,
            indicator=config.indicator,
            ranking=self.ranking,
            reorder=self.reorder_channels,
        )
        profile = self._mapping_evaluator.profile(
            dynamic_network,
            unit_names=config.unit_names,
            dvfs_indices=config.dvfs_indices,
        )
        inference = simulate_dynamic_inference(
            dynamic_network,
            profile,
            accuracy_model=self.accuracy_model,
            validation_samples=self.validation_samples,
        )
        evaluated = EvaluatedConfig(
            config=config,
            dynamic_network=dynamic_network,
            profile=profile,
            inference=inference,
        )
        self._cache[key] = evaluated
        return evaluated

    def evaluate_many(self, configs) -> list:
        """Evaluate a whole population, preserving order."""
        return [self.evaluate(config) for config in configs]
