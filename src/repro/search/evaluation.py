"""Candidate evaluation pipeline (the "Evaluate" box of Fig. 5).

For every sampled configuration ``Pi`` the framework must:

1. partition and reorder the network according to ``P`` and the channel
   ranking, and attach exits (:mod:`repro.nn`),
2. characterise the concurrent execution on the chosen units / DVFS points
   (:mod:`repro.perf`),
3. simulate the dynamic inference to obtain exit statistics, accuracy and
   average latency/energy (:mod:`repro.dynamics`).

:class:`ConfigEvaluator` wires those steps behind a single ``evaluate`` call
and caches results by configuration so the evolutionary loop never pays twice
for elites carried across generations.  The per-layer cost model is pluggable
(analytical oracle or trained surrogate), mirroring the paper's use of an
XGBoost predictor inside the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.inference import DynamicInferenceResult, simulate_dynamic_inference
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..nn.channels import ChannelRanking, rank_channels
from ..nn.graph import NetworkGraph
from ..nn.multiexit import DynamicNetwork, build_dynamic_network
from ..perf.evaluator import HardwareProfile, MappingEvaluator
from ..perf.layer_cost import CostModel
from ..soc.platform import Platform
from .space import MappingConfig

__all__ = ["EvaluatedConfig", "ConfigEvaluator"]


@dataclass(frozen=True, eq=False)
class EvaluatedConfig:
    """A configuration together with everything the search needs to rank it.

    Equality is identity: the evaluator caches by configuration, so two
    references to the same evaluated configuration are the same object, and
    membership tests (``config in pareto_set``) compare identities instead of
    trying to compare the nested numpy matrices element-wise.
    """

    config: MappingConfig
    dynamic_network: DynamicNetwork
    profile: HardwareProfile
    inference: DynamicInferenceResult

    # -- convenience accessors used by objectives, constraints and reports -------
    @property
    def accuracy(self) -> float:
        """Top-1 accuracy of the dynamic cascade."""
        return self.inference.accuracy

    @property
    def latency_ms(self) -> float:
        """Average per-sample latency under dynamic inference."""
        return self.inference.expected_latency_ms

    @property
    def energy_mj(self) -> float:
        """Average per-sample energy under dynamic inference."""
        return self.inference.expected_energy_mj

    @property
    def worst_case_latency_ms(self) -> float:
        """Latency when every stage is instantiated (Eq. 13)."""
        return self.inference.worst_case_latency_ms

    @property
    def worst_case_energy_mj(self) -> float:
        """Energy when every stage is instantiated (Eq. 14, M' = M)."""
        return self.inference.worst_case_energy_mj

    @property
    def reuse_fraction(self) -> float:
        """Fraction of forwardable feature maps reused."""
        return self.inference.reuse_fraction

    @property
    def stored_feature_bytes(self) -> int:
        """Shared-memory footprint of forwarded features."""
        return self.inference.stored_feature_bytes

    @property
    def accuracy_drop(self) -> float:
        """Accuracy drop relative to the pretrained baseline (can be negative)."""
        return self.dynamic_network.network.base_accuracy - self.accuracy

    def summary_row(self) -> dict:
        """Flat dictionary used by the report tables."""
        return {
            "mapping": self.config.describe(),
            "accuracy_pct": 100.0 * self.accuracy,
            "avg_energy_mj": self.energy_mj,
            "avg_latency_ms": self.latency_ms,
            "reuse_pct": 100.0 * self.reuse_fraction,
        }


def _config_key(config: MappingConfig) -> Tuple:
    """Hashable identity of a configuration for evaluation caching."""
    return (
        config.partition.values.tobytes(),
        config.indicator.values.tobytes(),
        config.unit_names,
        config.dvfs_indices,
    )


class ConfigEvaluator:
    """Evaluate mapping configurations for one network on one platform.

    Parameters
    ----------
    network:
        The pretrained network being transformed and mapped.
    platform:
        Target MPSoC.
    cost_model:
        Per-layer latency/energy model; ``None`` selects the analytical
        oracle.  Pass a trained :class:`~repro.perf.predictor.SurrogateCostModel`
        to reproduce the paper's surrogate-in-the-loop setup.
    accuracy_model:
        Coverage-to-accuracy model; ``None`` selects the calibrated default.
    ranking:
        Channel-importance ranking; ``None`` synthesises one from ``seed``.
    reorder_channels:
        Whether to apply the Sect. V-D importance reordering (the ablation
        benches disable it).
    validation_samples:
        Validation-set size for the exit statistics.
    """

    def __init__(
        self,
        network: NetworkGraph,
        platform: Platform,
        cost_model: Optional[CostModel] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        ranking: Optional[ChannelRanking] = None,
        reorder_channels: bool = True,
        validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.platform = platform
        self.accuracy_model = accuracy_model if accuracy_model is not None else AccuracyModel()
        self.ranking = ranking if ranking is not None else rank_channels(network, seed=seed)
        self.reorder_channels = reorder_channels
        self.validation_samples = int(validation_samples)
        self._mapping_evaluator = MappingEvaluator(platform, cost_model=cost_model)
        self._cache: Dict[Tuple, EvaluatedConfig] = {}

    @property
    def evaluations(self) -> int:
        """Number of distinct configurations evaluated so far."""
        return len(self._cache)

    def evaluate(self, config: MappingConfig) -> EvaluatedConfig:
        """Run the full pipeline for ``config`` (cached)."""
        key = _config_key(config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dynamic_network = build_dynamic_network(
            self.network,
            partition=config.partition,
            indicator=config.indicator,
            ranking=self.ranking,
            reorder=self.reorder_channels,
        )
        profile = self._mapping_evaluator.profile(
            dynamic_network,
            unit_names=config.unit_names,
            dvfs_indices=config.dvfs_indices,
        )
        inference = simulate_dynamic_inference(
            dynamic_network,
            profile,
            accuracy_model=self.accuracy_model,
            validation_samples=self.validation_samples,
        )
        evaluated = EvaluatedConfig(
            config=config,
            dynamic_network=dynamic_network,
            profile=profile,
            inference=inference,
        )
        self._cache[key] = evaluated
        return evaluated

    def evaluate_many(self, configs) -> list:
        """Evaluate a whole population, preserving order."""
        return [self.evaluate(config) for config in configs]
