"""Pareto analysis of evaluated configurations.

Once the search budget expires, the paper computes a Pareto set over all
generated populations and extracts the preferred dynamic mapping from it
(Sect. V-C); Table II then reports the most latency-oriented ("Ours-L") and
most energy-oriented ("Ours-E") Pareto models.  This module provides the
non-dominated sorting and the selection rules.

Which axes are sorted is no longer hardwired: every function takes an
optional :class:`~repro.search.objectives.ObjectiveSet` (or, for backward
compatibility, a sequence of already-minimised key callables) and defaults to
:data:`~repro.search.objectives.DEFAULT_OBJECTIVES` — the seed's
(latency, energy, -accuracy) behaviour, byte for byte.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import SearchError
from .evaluation import EvaluatedConfig
from .objectives import (
    as_objective_set,
    energy_oriented_objective,
    latency_oriented_objective,
    nan_guarded,
    serving_oriented_objective,
)

__all__ = [
    "dominates",
    "pareto_front",
    "hypervolume",
    "select_latency_oriented",
    "select_energy_oriented",
    "select_serving_oriented",
    "select_measured_serving",
]


def dominates(
    first: EvaluatedConfig,
    second: EvaluatedConfig,
    objectives=None,
) -> bool:
    """Whether ``first`` Pareto-dominates ``second`` (all objectives minimised)."""
    objective_set = as_objective_set(objectives)
    first_values = objective_set.values(first)
    second_values = objective_set.values(second)
    no_worse = all(a <= b for a, b in zip(first_values, second_values))
    strictly_better = any(a < b for a, b in zip(first_values, second_values))
    return no_worse and strictly_better


def pareto_front(
    evaluated: Sequence[EvaluatedConfig],
    objectives=None,
) -> list:
    """Non-dominated subset of ``evaluated`` under the given objectives."""
    objective_set = as_objective_set(objectives)
    front = []
    for candidate in evaluated:
        if any(
            dominates(other, candidate, objective_set)
            for other in evaluated
            if other is not candidate
        ):
            continue
        front.append(candidate)
    return front


def _hv_recursive(points: Sequence[Sequence[float]], reference: Sequence[float]) -> float:
    """Hypervolume by dimension sweep: slabs along the first objective times
    the recursively computed hypervolume of the remaining objectives."""
    if not points:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(point[0] for point in points)
    ordered = sorted(points)
    total = 0.0
    for index, point in enumerate(ordered):
        upper = ordered[index + 1][0] if index + 1 < len(ordered) else reference[0]
        width = upper - point[0]
        if width <= 0.0:
            continue
        slab = [tuple(other[1:]) for other in ordered[: index + 1]]
        total += width * _hv_recursive(slab, reference[1:])
    return total


def hypervolume(
    evaluated: Sequence[EvaluatedConfig],
    reference: Sequence[float],
    objectives=None,
) -> float:
    """Dominated hypervolume of ``evaluated`` against a reference point.

    All objectives are minimised (the default set is latency, energy and
    negated accuracy); ``reference`` is a point in the same minimised space
    that every interesting candidate should dominate — typically slightly
    worse than the worst observed values.  Candidates that fail to dominate
    the reference in some objective contribute nothing and are dropped.  The
    result grows monotonically as a search discovers better fronts, which is
    what the warm-start convergence benchmark measures.
    """
    objective_set = as_objective_set(objectives)
    reference = tuple(float(value) for value in reference)
    if len(reference) != len(objective_set):
        raise SearchError(
            f"reference point has {len(reference)} coordinates for "
            f"{len(objective_set)} objectives"
        )
    points = set()
    for item in evaluated:
        values = tuple(float(value) for value in objective_set.values(item))
        if all(value < bound for value, bound in zip(values, reference)):
            points.add(values)
    return _hv_recursive(sorted(points), reference)


def _filter_by_accuracy_drop(
    evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float]
) -> list:
    if max_accuracy_drop is None:
        return list(evaluated)
    kept = [e for e in evaluated if e.accuracy_drop <= max_accuracy_drop + 1e-9]
    # If nothing satisfies the accuracy gate, fall back to the most accurate
    # candidates rather than failing -- matching how the paper always reports
    # a model per scenario even when hard constraints cost accuracy.
    if not kept:
        best_drop = min(e.accuracy_drop for e in evaluated)
        kept = [e for e in evaluated if e.accuracy_drop <= best_drop + 1e-9]
    return kept


def select_latency_oriented(
    evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
) -> EvaluatedConfig:
    """Pick the "Ours-L" model: lowest latency subject to the accuracy gate."""
    if not evaluated:
        raise SearchError("cannot select from an empty set of configurations")
    candidates = _filter_by_accuracy_drop(evaluated, max_accuracy_drop)
    return min(candidates, key=latency_oriented_objective)


def select_energy_oriented(
    evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
) -> EvaluatedConfig:
    """Pick the "Ours-E" model: lowest energy subject to the accuracy gate."""
    if not evaluated:
        raise SearchError("cannot select from an empty set of configurations")
    candidates = _filter_by_accuracy_drop(evaluated, max_accuracy_drop)
    return min(candidates, key=energy_oriented_objective)


def select_serving_oriented(
    evaluated: Sequence[EvaluatedConfig],
    family=None,
    rate_rps: Optional[float] = None,
    max_accuracy_drop: Optional[float] = None,
) -> EvaluatedConfig:
    """Pick the front member that serves a workload family best.

    Sibling of :func:`select_energy_oriented`: minimises the accuracy-penalised
    M/D/1 sojourn time (service latency plus expected queueing wait) at the
    family's peak request rate, so the pick is the member that still answers
    quickly when the family actually bursts — not just the one that looks
    fastest unloaded.  ``rate_rps`` overrides (or replaces) the family's peak
    rate.  Members whose bottleneck saturates score ``inf`` and lose to any
    member that keeps up.
    """
    if not evaluated:
        raise SearchError("cannot select from an empty set of configurations")
    if rate_rps is None:
        if family is None:
            raise SearchError(
                "select_serving_oriented needs a workload family or an explicit rate_rps"
            )
        rate_rps = family.peak_rate_rps
    rate = float(rate_rps)
    if not rate > 0.0:
        raise SearchError(f"rate_rps must be positive, got {rate_rps}")
    candidates = _filter_by_accuracy_drop(evaluated, max_accuracy_drop)
    return min(candidates, key=lambda item: serving_oriented_objective(item, rate))


def select_measured_serving(
    evaluated: Sequence[EvaluatedConfig],
    platform,
    family,
    duration_ms: float = 400.0,
    seed: int = 0,
    members: int = 3,
    cache=None,
    max_accuracy_drop: Optional[float] = None,
) -> EvaluatedConfig:
    """Pick the front member that *measurably* serves a family best.

    Sibling of :func:`select_serving_oriented` with the M/D/1 proxy replaced
    by the traffic simulator: each candidate is distilled into a deployment
    and the family's busiest member under ``seed`` is replayed through it
    (:func:`~repro.serving.bridge.measured_serving_metrics`), minimising the
    accuracy-penalised measured sojourn time — service latency plus the
    *simulated* mean queueing wait.  Passing the
    :class:`~repro.serving.result_cache.ServingResultCache` used by a
    ``measured_serving_objectives`` search makes the selection free: every
    front member was already simulated during the search.
    """
    from ..serving.bridge import measured_serving_metrics
    from ..serving.families import WorkloadFamily

    if not evaluated:
        raise SearchError("cannot select from an empty set of configurations")
    if not isinstance(family, WorkloadFamily):
        raise SearchError(
            f"select_measured_serving needs a WorkloadFamily, "
            f"got {type(family).__name__}"
        )
    _, workload, traffic_seed = family.peak_member(
        int(seed), int(members), probe_ms=float(duration_ms)
    )
    candidates = _filter_by_accuracy_drop(evaluated, max_accuracy_drop)

    def measured_sojourn(item: EvaluatedConfig) -> float:
        accuracy = max(1e-3, item.accuracy)
        accuracy_term = item.dynamic_network.network.base_accuracy / accuracy
        metrics = measured_serving_metrics(
            item,
            platform,
            workload,
            float(duration_ms),
            seed=traffic_seed,
            cache=cache,
            family_name=family.name,
        )
        return (item.latency_ms + metrics.mean_queueing_ms) * accuracy_term

    return min(candidates, key=nan_guarded(measured_sojourn))
