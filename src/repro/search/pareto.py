"""Pareto analysis of evaluated configurations.

Once the search budget expires, the paper computes a Pareto set over all
generated populations and extracts the preferred dynamic mapping from it
(Sect. V-C); Table II then reports the most latency-oriented ("Ours-L") and
most energy-oriented ("Ours-E") Pareto models.  This module provides the
non-dominated sorting over the (latency, energy, accuracy) objectives and the
two selection rules.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import SearchError
from .evaluation import EvaluatedConfig
from .objectives import energy_oriented_objective, latency_oriented_objective

__all__ = [
    "dominates",
    "pareto_front",
    "hypervolume",
    "select_latency_oriented",
    "select_energy_oriented",
]

#: Default objective extractors: minimise latency and energy, maximise accuracy.
_DEFAULT_KEYS: Sequence[Callable[[EvaluatedConfig], float]] = (
    lambda e: e.latency_ms,
    lambda e: e.energy_mj,
    lambda e: -e.accuracy,
)


def dominates(
    first: EvaluatedConfig,
    second: EvaluatedConfig,
    keys: Sequence[Callable[[EvaluatedConfig], float]] = _DEFAULT_KEYS,
) -> bool:
    """Whether ``first`` Pareto-dominates ``second`` (all keys minimised)."""
    first_values = [key(first) for key in keys]
    second_values = [key(second) for key in keys]
    no_worse = all(a <= b for a, b in zip(first_values, second_values))
    strictly_better = any(a < b for a, b in zip(first_values, second_values))
    return no_worse and strictly_better


def pareto_front(
    evaluated: Sequence[EvaluatedConfig],
    keys: Sequence[Callable[[EvaluatedConfig], float]] = _DEFAULT_KEYS,
) -> list:
    """Non-dominated subset of ``evaluated`` under the given objectives."""
    front = []
    for candidate in evaluated:
        if any(dominates(other, candidate, keys) for other in evaluated if other is not candidate):
            continue
        front.append(candidate)
    return front


def _hv_recursive(points: Sequence[Sequence[float]], reference: Sequence[float]) -> float:
    """Hypervolume by dimension sweep: slabs along the first objective times
    the recursively computed hypervolume of the remaining objectives."""
    if not points:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(point[0] for point in points)
    ordered = sorted(points)
    total = 0.0
    for index, point in enumerate(ordered):
        upper = ordered[index + 1][0] if index + 1 < len(ordered) else reference[0]
        width = upper - point[0]
        if width <= 0.0:
            continue
        slab = [tuple(other[1:]) for other in ordered[: index + 1]]
        total += width * _hv_recursive(slab, reference[1:])
    return total


def hypervolume(
    evaluated: Sequence[EvaluatedConfig],
    reference: Sequence[float],
    keys: Sequence[Callable[[EvaluatedConfig], float]] = _DEFAULT_KEYS,
) -> float:
    """Dominated hypervolume of ``evaluated`` against a reference point.

    All objectives are minimised (the default keys are latency, energy and
    negated accuracy); ``reference`` is a point in the same key space that
    every interesting candidate should dominate — typically slightly worse
    than the worst observed values.  Candidates that fail to dominate the
    reference in some objective contribute nothing and are dropped.  The
    result grows monotonically as a search discovers better fronts, which is
    what the warm-start convergence benchmark measures.
    """
    reference = tuple(float(value) for value in reference)
    if len(reference) != len(keys):
        raise SearchError(
            f"reference point has {len(reference)} coordinates for {len(keys)} objectives"
        )
    points = set()
    for item in evaluated:
        values = tuple(float(key(item)) for key in keys)
        if all(value < bound for value, bound in zip(values, reference)):
            points.add(values)
    return _hv_recursive(sorted(points), reference)


def _filter_by_accuracy_drop(
    evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float]
) -> list:
    if max_accuracy_drop is None:
        return list(evaluated)
    kept = [e for e in evaluated if e.accuracy_drop <= max_accuracy_drop + 1e-9]
    # If nothing satisfies the accuracy gate, fall back to the most accurate
    # candidates rather than failing -- matching how the paper always reports
    # a model per scenario even when hard constraints cost accuracy.
    if not kept:
        best_drop = min(e.accuracy_drop for e in evaluated)
        kept = [e for e in evaluated if e.accuracy_drop <= best_drop + 1e-9]
    return kept


def select_latency_oriented(
    evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
) -> EvaluatedConfig:
    """Pick the "Ours-L" model: lowest latency subject to the accuracy gate."""
    if not evaluated:
        raise SearchError("cannot select from an empty set of configurations")
    candidates = _filter_by_accuracy_drop(evaluated, max_accuracy_drop)
    return min(candidates, key=latency_oriented_objective)


def select_energy_oriented(
    evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
) -> EvaluatedConfig:
    """Pick the "Ours-E" model: lowest energy subject to the accuracy gate."""
    if not evaluated:
        raise SearchError("cannot select from an empty set of configurations")
    candidates = _filter_by_accuracy_drop(evaluated, max_accuracy_drop)
    return min(candidates, key=energy_oriented_objective)
