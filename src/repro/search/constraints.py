"""Hard search constraints and the constraint filter (Eq. 15).

The optimisation of Eq. 15 is subject to a latency target ``T_TRG``, an
energy target ``E_TRG`` and a shared-memory bound on the intermediate
features that must remain resident (``size(F, I) < M``).  The reproduction
adds the feature-map-reuse caps explored in Fig. 6 (75 % / 50 %) and an
optional bound on the accuracy drop, both of which the paper applies when
analysing Pareto models.  The evolutionary loop discards violating
candidates, exactly as the "Const. Filter" box of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..soc.platform import Platform
from ..utils import check_fraction
from .evaluation import EvaluatedConfig

__all__ = ["SearchConstraints"]


@dataclass(frozen=True)
class SearchConstraints:
    """Hard constraints a candidate configuration must satisfy.

    All bounds are optional; ``None`` disables the corresponding check.

    Parameters
    ----------
    latency_target_ms:
        ``T_TRG`` -- upper bound on the *worst-case* latency (every stage
        instantiated), matching Eq. 15 which constrains ``T_Pi``.
    energy_target_mj:
        ``E_TRG`` -- upper bound on the worst-case energy.
    max_reuse_fraction:
        Cap on the fraction of forwardable feature maps that are reused
        (the "75 %" / "50 %" scenarios of Fig. 6 and Table II).
    max_accuracy_drop:
        Upper bound on ``Acc_base - Acc_SM`` (the paper highlights
        configurations within a 0.5 % drop).
    feature_budget_bytes:
        Shared-memory budget for resident features; ``None`` defers to the
        platform's budget when one is supplied to :meth:`violations`.
    """

    latency_target_ms: Optional[float] = None
    energy_target_mj: Optional[float] = None
    max_reuse_fraction: Optional[float] = None
    max_accuracy_drop: Optional[float] = None
    feature_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency_target_ms is not None and self.latency_target_ms <= 0:
            raise ValueError("latency_target_ms must be positive")
        if self.energy_target_mj is not None and self.energy_target_mj <= 0:
            raise ValueError("energy_target_mj must be positive")
        if self.max_reuse_fraction is not None:
            check_fraction(self.max_reuse_fraction, "max_reuse_fraction")
        if self.max_accuracy_drop is not None and self.max_accuracy_drop < 0:
            raise ValueError("max_accuracy_drop must be >= 0")
        if self.feature_budget_bytes is not None and self.feature_budget_bytes <= 0:
            raise ValueError("feature_budget_bytes must be positive")

    def violations(
        self, evaluated: EvaluatedConfig, platform: Optional[Platform] = None
    ) -> List[str]:
        """Human-readable list of violated constraints (empty when feasible)."""
        problems: List[str] = []
        if (
            self.latency_target_ms is not None
            and evaluated.worst_case_latency_ms >= self.latency_target_ms
        ):
            problems.append(
                f"latency {evaluated.worst_case_latency_ms:.2f} ms >= target "
                f"{self.latency_target_ms:.2f} ms"
            )
        if (
            self.energy_target_mj is not None
            and evaluated.worst_case_energy_mj >= self.energy_target_mj
        ):
            problems.append(
                f"energy {evaluated.worst_case_energy_mj:.2f} mJ >= target "
                f"{self.energy_target_mj:.2f} mJ"
            )
        if (
            self.max_reuse_fraction is not None
            and evaluated.reuse_fraction > self.max_reuse_fraction + 1e-9
        ):
            problems.append(
                f"reuse {evaluated.reuse_fraction:.2%} > cap {self.max_reuse_fraction:.2%}"
            )
        if (
            self.max_accuracy_drop is not None
            and evaluated.accuracy_drop > self.max_accuracy_drop + 1e-9
        ):
            problems.append(
                f"accuracy drop {evaluated.accuracy_drop:.3f} > cap {self.max_accuracy_drop:.3f}"
            )
        budget = self.feature_budget_bytes
        if budget is None and platform is not None:
            budget = platform.shared_memory.feature_budget_bytes
        if budget is not None and evaluated.stored_feature_bytes > budget:
            problems.append(
                f"stored features {evaluated.stored_feature_bytes} B exceed budget {budget} B"
            )
        return problems

    def is_feasible(
        self, evaluated: EvaluatedConfig, platform: Optional[Platform] = None
    ) -> bool:
        """Whether ``evaluated`` satisfies every configured constraint."""
        return not self.violations(evaluated, platform=platform)
