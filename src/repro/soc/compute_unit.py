"""Compute-unit descriptors (GPU, DLA, CPU cores of the MPSoC).

A :class:`ComputeUnit` captures what the layer cost model needs to predict
latency and energy for a layer slice mapped onto it:

* peak half-precision throughput at the maximum DVFS point,
* effective memory bandwidth towards the shared DRAM,
* a per-invocation kernel launch / engine submission overhead (dominant for
  the small CIFAR-scale layers the paper evaluates),
* per-layer-kind utilisation factors -- the DLA sustains a much smaller
  fraction of its peak on attention layers than on convolutions, which is why
  DLA-only mapping of the Visformer is slow in Fig. 1,
* the DVFS table and linear power model of :mod:`repro.soc.dvfs`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigurationError
from ..utils import check_fraction, check_non_negative, check_positive
from .dvfs import DvfsTable, PowerModel

__all__ = ["ComputeUnitKind", "ComputeUnit"]


class ComputeUnitKind(str, enum.Enum):
    """Architectural class of a compute unit."""

    GPU = "gpu"
    DLA = "dla"
    CPU = "cpu"


#: Utilisation assumed for layer kinds missing from a unit's utilisation map.
_DEFAULT_UTILISATION = 0.30


@dataclass(frozen=True)
class ComputeUnit:
    """A single processing unit of the MPSoC.

    Parameters
    ----------
    name:
        Unique identifier within the platform (``"gpu"``, ``"dla0"``, ...).
    kind:
        Architectural class (:class:`ComputeUnitKind`).
    peak_gflops:
        Peak fp16 throughput in GFLOP/s at the highest DVFS operating point.
    memory_bandwidth_gbs:
        Sustained bandwidth to shared DRAM in GB/s.
    launch_overhead_ms:
        Fixed per-layer invocation overhead (kernel launch, DLA task submit).
    power:
        Linear power model (Eq. 10).
    dvfs:
        Supported DVFS operating points.
    utilisation:
        Fraction of peak throughput sustained per layer kind
        (``{"conv2d": 0.6, "attention": 0.5, ...}``).
    """

    name: str
    kind: ComputeUnitKind
    peak_gflops: float
    memory_bandwidth_gbs: float
    launch_overhead_ms: float
    power: PowerModel
    dvfs: DvfsTable
    utilisation: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("compute unit name must be non-empty")
        check_positive(self.peak_gflops, "peak_gflops")
        check_positive(self.memory_bandwidth_gbs, "memory_bandwidth_gbs")
        check_non_negative(self.launch_overhead_ms, "launch_overhead_ms")
        for layer_kind, value in self.utilisation.items():
            check_fraction(value, f"utilisation[{layer_kind!r}]", allow_zero=False)
        object.__setattr__(self, "kind", ComputeUnitKind(self.kind))
        object.__setattr__(self, "utilisation", dict(self.utilisation))

    # -- throughput ------------------------------------------------------------
    def utilisation_for(self, layer_kind: str) -> float:
        """Sustained fraction of peak throughput for ``layer_kind`` layers."""
        return float(self.utilisation.get(layer_kind, _DEFAULT_UTILISATION))

    def effective_gflops(self, layer_kind: str, scale: float = 1.0) -> float:
        """Sustained GFLOP/s for ``layer_kind`` at DVFS scaling ``scale``."""
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        return self.peak_gflops * self.utilisation_for(layer_kind) * scale

    def effective_bandwidth_gbs(self, scale: float = 1.0) -> float:
        """Memory bandwidth at DVFS scaling ``scale``.

        Memory traffic is only mildly sensitive to the compute clock, so the
        bandwidth is derated by half the frequency reduction.
        """
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        return self.memory_bandwidth_gbs * (0.5 + 0.5 * scale)

    # -- power -----------------------------------------------------------------
    def power_w(self, scale: float = 1.0) -> float:
        """Power draw at DVFS scaling ``scale`` (Eq. 10)."""
        return self.power.power_w(scale)

    def num_dvfs_points(self) -> int:
        """Number of supported DVFS operating points."""
        return len(self.dvfs)

    def scale_for_point(self, index: int) -> float:
        """Scaling factor ``theta`` of DVFS operating point ``index``."""
        return self.dvfs.scale(index)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name} ({self.kind.value}): {self.peak_gflops:.0f} GFLOP/s peak, "
            f"{self.memory_bandwidth_gbs:.0f} GB/s, {self.power.max_power_w:.1f} W max, "
            f"{len(self.dvfs)} DVFS points"
        )
