"""Inter-CU communication over the shared system memory.

On the Xavier, compute units do not exchange data over a dedicated link;
producer units write feature maps to shared DRAM and consumer units read them
back (Fig. 4 of the paper).  A transfer therefore costs one write plus one
read at the effective copy bandwidth, a fixed software overhead for the
synchronisation between the runtimes (TensorRT engine contexts), and a small
amount of energy in the memory subsystem.  These are the ``u_{k->i}`` terms
of Eq. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import check_non_negative, check_positive

__all__ = ["Interconnect"]


@dataclass(frozen=True)
class Interconnect:
    """Shared-memory transfer cost model between compute units.

    Parameters
    ----------
    bandwidth_gbs:
        Effective copy bandwidth of one pass over DRAM in GB/s.
    sync_overhead_ms:
        Fixed software/synchronisation latency added to every transfer.
    energy_pj_per_byte:
        Energy per byte moved (one write plus one read), in picojoules.
    """

    bandwidth_gbs: float = 100.0
    sync_overhead_ms: float = 0.05
    energy_pj_per_byte: float = 60.0

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_gbs, "bandwidth_gbs")
        check_non_negative(self.sync_overhead_ms, "sync_overhead_ms")
        check_non_negative(self.energy_pj_per_byte, "energy_pj_per_byte")

    def transfer_latency_ms(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` from one CU to another (Eq. 8's ``u``)."""
        check_non_negative(num_bytes, "num_bytes")
        if num_bytes == 0:
            return 0.0
        # Write + read pass over shared DRAM.
        copy_ms = 2 * num_bytes / (self.bandwidth_gbs * 1e9) * 1e3
        return self.sync_overhead_ms + copy_ms

    def transfer_energy_mj(self, num_bytes: int) -> float:
        """Energy in millijoules to move ``num_bytes`` across units."""
        check_non_negative(num_bytes, "num_bytes")
        return num_bytes * self.energy_pj_per_byte * 1e-9
