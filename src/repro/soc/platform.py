"""MPSoC platform container and the calibrated Jetson AGX Xavier factory.

A :class:`Platform` bundles the compute units, the shared-memory transfer
model and the DRAM feature budget.  The :func:`jetson_agx_xavier` factory
reproduces the board used in the paper: one Volta GPU and two NVDLA engines
sharing LPDDR4x memory (the Carmel CPU cluster can be added for
experimentation but is not part of the paper's mapping space).

Calibration
-----------
The throughput constants are *sustained batch-1 rates at CIFAR-scale layer
sizes*, not datasheet peaks: small layers leave most of the silicon idle, so
the effective rate that determines end-to-end latency is orders of magnitude
below the advertised TOPS.  The defaults are calibrated so the single-CU
baselines land close to Table II of the paper:

* GPU-only Visformer ~ 15 ms / ~200 mJ, DLA-only ~ 69 ms / ~54 mJ,
* GPU-only VGG19 ~ 25 ms / ~630 mJ, DLA-only ~ 114 ms / ~165 mJ,

preserving the two relationships the method exploits -- the GPU is several
times faster, the DLA several times more energy-efficient, and the DLA is
disproportionately slow on attention layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import PlatformError
from .compute_unit import ComputeUnit, ComputeUnitKind
from .dvfs import DvfsTable, PowerModel
from .interconnect import Interconnect
from .memory import SharedMemory

__all__ = ["Platform", "jetson_agx_xavier"]

#: Published GPU clock steps of the AGX Xavier (MHz).
XAVIER_GPU_FREQUENCIES_MHZ = (318, 522, 675, 828, 905, 1032, 1198, 1236, 1338, 1377)

#: Published DLA clock steps of the AGX Xavier (MHz).
XAVIER_DLA_FREQUENCIES_MHZ = (550, 750, 950, 1050, 1200, 1395)

#: Carmel CPU cluster clock steps (MHz), used only when the CPU is included.
XAVIER_CPU_FREQUENCIES_MHZ = (730, 1190, 1420, 1800, 2265)


@dataclass(frozen=True)
class Platform:
    """A heterogeneous MPSoC: compute units + shared memory + interconnect."""

    name: str
    compute_units: Tuple[ComputeUnit, ...]
    interconnect: Interconnect
    shared_memory: SharedMemory

    def __post_init__(self) -> None:
        if not self.compute_units:
            raise PlatformError(f"platform {self.name!r} needs at least one compute unit")
        names = [unit.name for unit in self.compute_units]
        if len(set(names)) != len(names):
            raise PlatformError(f"platform {self.name!r} has duplicate compute-unit names")
        object.__setattr__(self, "compute_units", tuple(self.compute_units))
        # Name lookups happen per stage in scheduling and per request in the
        # serving event loop, so they must not scan the unit tuple each time.
        object.__setattr__(
            self,
            "_unit_lookup",
            {unit.name: (index, unit) for index, unit in enumerate(self.compute_units)},
        )

    def __len__(self) -> int:
        return len(self.compute_units)

    @property
    def num_units(self) -> int:
        """Number of compute units ``M = |CU|``."""
        return len(self.compute_units)

    @property
    def unit_names(self) -> Tuple[str, ...]:
        """Names of all compute units, in platform order."""
        return tuple(unit.name for unit in self.compute_units)

    def unit(self, name: str) -> ComputeUnit:
        """Look up a compute unit by name."""
        entry = self._unit_lookup.get(name)
        if entry is None:
            raise PlatformError(f"platform {self.name!r} has no compute unit named {name!r}")
        return entry[1]

    def unit_index(self, name: str) -> int:
        """Position of the compute unit called ``name``."""
        entry = self._unit_lookup.get(name)
        if entry is None:
            raise PlatformError(f"platform {self.name!r} has no compute unit named {name!r}")
        return entry[0]

    def units_of_kind(self, kind: ComputeUnitKind | str) -> Tuple[ComputeUnit, ...]:
        """All compute units of a given architectural kind."""
        kind = ComputeUnitKind(kind)
        return tuple(unit for unit in self.compute_units if unit.kind == kind)

    def dvfs_space_size(self) -> int:
        """Total number of joint DVFS configurations across all units."""
        size = 1
        for unit in self.compute_units:
            size *= unit.num_dvfs_points()
        return size

    def describe(self) -> str:
        """Multi-line human-readable description of the platform."""
        lines = [f"{self.name}: {self.num_units} compute units"]
        lines.extend(f"  {unit.describe()}" for unit in self.compute_units)
        lines.append(
            f"  shared memory: {self.shared_memory.capacity_bytes / 2**30:.0f} GiB "
            f"({self.shared_memory.feature_budget_bytes / 2**20:.0f} MiB feature budget), "
            f"interconnect {self.interconnect.bandwidth_gbs:.0f} GB/s"
        )
        return "\n".join(lines)


def jetson_agx_xavier(
    include_cpu: bool = False,
    feature_budget_mib: float = 16.0,
) -> Platform:
    """Build the Jetson AGX Xavier platform model used in the paper.

    Parameters
    ----------
    include_cpu:
        Also expose the Carmel CPU cluster as a mappable compute unit.  The
        paper maps onto GPU + 2 DLAs only, which is the default.
    feature_budget_mib:
        Shared-memory budget for resident inter-stage feature maps (the
        ``M`` bound of Eq. 15).
    """
    gpu = ComputeUnit(
        name="gpu",
        kind=ComputeUnitKind.GPU,
        peak_gflops=40.0,
        memory_bandwidth_gbs=110.0,
        launch_overhead_ms=0.08,
        power=PowerModel(static_w=4.0, dynamic_w=16.0),
        dvfs=DvfsTable.from_frequencies(XAVIER_GPU_FREQUENCIES_MHZ),
        utilisation={"conv2d": 1.0, "attention": 0.70, "feedforward": 0.80, "linear": 0.50},
    )
    dla_utilisation = {"conv2d": 1.0, "attention": 0.30, "feedforward": 0.50, "linear": 0.40}
    dla0 = ComputeUnit(
        name="dla0",
        kind=ComputeUnitKind.DLA,
        peak_gflops=10.0,
        memory_bandwidth_gbs=40.0,
        launch_overhead_ms=0.25,
        power=PowerModel(static_w=0.25, dynamic_w=0.65),
        dvfs=DvfsTable.from_frequencies(XAVIER_DLA_FREQUENCIES_MHZ),
        utilisation=dla_utilisation,
    )
    dla1 = ComputeUnit(
        name="dla1",
        kind=ComputeUnitKind.DLA,
        peak_gflops=10.0,
        memory_bandwidth_gbs=40.0,
        launch_overhead_ms=0.25,
        power=PowerModel(static_w=0.25, dynamic_w=0.65),
        dvfs=DvfsTable.from_frequencies(XAVIER_DLA_FREQUENCIES_MHZ),
        utilisation=dla_utilisation,
    )
    units = [gpu, dla0, dla1]
    if include_cpu:
        units.append(
            ComputeUnit(
                name="cpu",
                kind=ComputeUnitKind.CPU,
                peak_gflops=2.5,
                memory_bandwidth_gbs=30.0,
                launch_overhead_ms=0.02,
                power=PowerModel(static_w=1.5, dynamic_w=2.5),
                dvfs=DvfsTable.from_frequencies(XAVIER_CPU_FREQUENCIES_MHZ),
                utilisation={"conv2d": 0.6, "attention": 0.5, "feedforward": 0.55, "linear": 0.7},
            )
        )
    return Platform(
        name="jetson-agx-xavier",
        compute_units=tuple(units),
        interconnect=Interconnect(bandwidth_gbs=100.0, sync_overhead_ms=0.05, energy_pj_per_byte=60.0),
        shared_memory=SharedMemory(
            capacity_bytes=32 * 2**30,
            feature_budget_bytes=int(feature_budget_mib * 2**20),
        ),
    )
