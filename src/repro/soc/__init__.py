"""Heterogeneous MPSoC hardware model.

The paper deploys on the NVIDIA Jetson AGX Xavier: a single die combining a
Volta GPU, two deep-learning accelerators (DLAs) and a CPU cluster, all
sharing LPDDR4x system memory.  This subpackage models exactly the properties
the mapping framework consumes:

* :mod:`repro.soc.dvfs` -- discrete DVFS operating points and the linear
  power model of Eq. 10 (``P = alpha + beta * theta``),
* :mod:`repro.soc.compute_unit` -- per-CU compute throughput, memory
  bandwidth, kernel-launch overheads and layer-type utilisation factors,
* :mod:`repro.soc.interconnect` -- shared-memory transfer cost between CUs,
* :mod:`repro.soc.memory` -- the shared DRAM pool bounding stored features,
* :mod:`repro.soc.platform` -- the :class:`Platform` container and the
  calibrated :func:`jetson_agx_xavier` factory,
* :mod:`repro.soc.presets` -- the calibrated platform zoo (Orin-class,
  Nano-class, mobile big.LITTLE+NPU, server GPU), the
  :func:`get_platform` registry and the :func:`derive` scaling helper.
"""

from .dvfs import DvfsTable, OperatingPoint, PowerModel
from .compute_unit import ComputeUnit, ComputeUnitKind
from .interconnect import Interconnect
from .memory import SharedMemory
from .platform import Platform, jetson_agx_xavier
from .presets import (
    derive,
    get_platform,
    jetson_agx_orin,
    jetson_nano_class,
    mobile_big_little,
    platform_names,
    platform_registry,
    server_gpu,
)

__all__ = [
    "OperatingPoint",
    "DvfsTable",
    "PowerModel",
    "ComputeUnit",
    "ComputeUnitKind",
    "Interconnect",
    "SharedMemory",
    "Platform",
    "jetson_agx_xavier",
    "jetson_agx_orin",
    "jetson_nano_class",
    "mobile_big_little",
    "server_gpu",
    "platform_registry",
    "platform_names",
    "get_platform",
    "derive",
]
