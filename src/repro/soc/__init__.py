"""Heterogeneous MPSoC hardware model.

The paper deploys on the NVIDIA Jetson AGX Xavier: a single die combining a
Volta GPU, two deep-learning accelerators (DLAs) and a CPU cluster, all
sharing LPDDR4x system memory.  This subpackage models exactly the properties
the mapping framework consumes:

* :mod:`repro.soc.dvfs` -- discrete DVFS operating points and the linear
  power model of Eq. 10 (``P = alpha + beta * theta``),
* :mod:`repro.soc.compute_unit` -- per-CU compute throughput, memory
  bandwidth, kernel-launch overheads and layer-type utilisation factors,
* :mod:`repro.soc.interconnect` -- shared-memory transfer cost between CUs,
* :mod:`repro.soc.memory` -- the shared DRAM pool bounding stored features,
* :mod:`repro.soc.platform` -- the :class:`Platform` container and the
  calibrated :func:`jetson_agx_xavier` factory.
"""

from .dvfs import DvfsTable, OperatingPoint, PowerModel
from .compute_unit import ComputeUnit, ComputeUnitKind
from .interconnect import Interconnect
from .memory import SharedMemory
from .platform import Platform, jetson_agx_xavier

__all__ = [
    "OperatingPoint",
    "DvfsTable",
    "PowerModel",
    "ComputeUnit",
    "ComputeUnitKind",
    "Interconnect",
    "SharedMemory",
    "Platform",
    "jetson_agx_xavier",
]
