"""Calibrated platform zoo: named heterogeneous MPSoC presets.

The paper deploys on one board (the Jetson AGX Xavier of
:func:`repro.soc.platform.jetson_agx_xavier`); the method itself is general
over heterogeneous MPSoCs.  This module provides a registry of calibrated
presets spanning the edge-performance scaling regimes the cross-platform
campaign (:mod:`repro.campaign`) searches over, plus a :func:`derive` helper
to generate what-if variants of any platform.

Calibration invariants
----------------------
Every preset preserves the structural relationships the mapping method
exploits, at different absolute scales:

* the GPU (when present) sustains the highest conv2d throughput of the
  platform — it is the latency-oriented unit;
* fixed-function accelerators (``kind == DLA``: NVDLA engines, mobile NPUs)
  deliver more sustained conv2d throughput per watt than every other unit —
  they are the energy-oriented units;
* accelerators are disproportionately weak on attention layers (their
  ``utilisation["attention"]`` is below every non-accelerator unit's), which
  is what makes transformer mappings platform-specific;
* every compute unit exposes more than one DVFS operating point, so the
  joint ``theta`` space is never degenerate.

:mod:`tests.test_soc_presets` asserts these invariants for every registry
entry, so a new preset that silently violates them fails CI.

The throughput constants follow the same philosophy as the Xavier factory:
*sustained batch-1 rates at CIFAR-scale layer sizes*, far below datasheet
peaks, chosen so the relative speed/efficiency ratios between boards match
public benchmark ratios rather than marketing TOPS.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import PlatformError
from .compute_unit import ComputeUnit, ComputeUnitKind
from .dvfs import DvfsTable, PowerModel
from .interconnect import Interconnect
from .memory import SharedMemory
from .platform import Platform, jetson_agx_xavier

__all__ = [
    "platform_registry",
    "platform_names",
    "get_platform",
    "derive",
    "jetson_agx_orin",
    "jetson_nano_class",
    "mobile_big_little",
    "server_gpu",
]

#: Orin's Ampere GPU exposes a denser clock ladder than Xavier's Volta.
ORIN_GPU_FREQUENCIES_MHZ = (306, 408, 510, 612, 714, 816, 918, 1020, 1122, 1224, 1300)

#: Orin's second-generation DLA ladder.
ORIN_DLA_FREQUENCIES_MHZ = (614, 778, 943, 1107, 1272, 1434, 1600)


def jetson_agx_orin(feature_budget_mib: float = 24.0) -> Platform:
    """An Orin-class successor board: stronger GPU, two faster DLAs.

    Relative to the Xavier model: roughly 2x sustained GPU throughput with a
    better attention pipeline (Ampere tensor cores), second-generation DLAs
    that close some of the conv gap while staying the energy-efficient
    choice, more DRAM bandwidth, and wider DVFS ladders on both unit types.
    """
    gpu = ComputeUnit(
        name="gpu",
        kind=ComputeUnitKind.GPU,
        peak_gflops=85.0,
        memory_bandwidth_gbs=200.0,
        launch_overhead_ms=0.06,
        power=PowerModel(static_w=5.0, dynamic_w=25.0),
        dvfs=DvfsTable.from_frequencies(ORIN_GPU_FREQUENCIES_MHZ),
        utilisation={"conv2d": 1.0, "attention": 0.80, "feedforward": 0.85, "linear": 0.55},
    )
    dla_utilisation = {"conv2d": 1.0, "attention": 0.35, "feedforward": 0.55, "linear": 0.45}
    dla_power = PowerModel(static_w=0.35, dynamic_w=1.1)
    dla0 = ComputeUnit(
        name="dla0",
        kind=ComputeUnitKind.DLA,
        peak_gflops=24.0,
        memory_bandwidth_gbs=75.0,
        launch_overhead_ms=0.20,
        power=dla_power,
        dvfs=DvfsTable.from_frequencies(ORIN_DLA_FREQUENCIES_MHZ),
        utilisation=dla_utilisation,
    )
    dla1 = replace(dla0, name="dla1")
    return Platform(
        name="jetson-agx-orin",
        compute_units=(gpu, dla0, dla1),
        interconnect=Interconnect(bandwidth_gbs=180.0, sync_overhead_ms=0.04, energy_pj_per_byte=50.0),
        shared_memory=SharedMemory(
            capacity_bytes=64 * 2**30,
            feature_budget_bytes=int(feature_budget_mib * 2**20),
        ),
    )


def jetson_nano_class(feature_budget_mib: float = 4.0) -> Platform:
    """A Nano-class cut-down board: small GPU + CPU cluster, no accelerator.

    The interesting regime is scarcity: a GPU an order of magnitude weaker
    than the Xavier's, a short DVFS ladder, little DRAM bandwidth and a tiny
    feature budget.  Mappings tuned on bigger boards overcommit the memory
    and the second unit here, which is exactly what the portability matrix
    of the campaign surfaces.
    """
    gpu = ComputeUnit(
        name="gpu",
        kind=ComputeUnitKind.GPU,
        peak_gflops=6.0,
        memory_bandwidth_gbs=22.0,
        launch_overhead_ms=0.12,
        power=PowerModel(static_w=1.2, dynamic_w=4.5),
        dvfs=DvfsTable.from_frequencies((230, 460, 640, 850, 920)),
        utilisation={"conv2d": 1.0, "attention": 0.60, "feedforward": 0.75, "linear": 0.45},
    )
    cpu = ComputeUnit(
        name="cpu",
        kind=ComputeUnitKind.CPU,
        peak_gflops=1.2,
        memory_bandwidth_gbs=12.0,
        launch_overhead_ms=0.02,
        power=PowerModel(static_w=0.6, dynamic_w=1.4),
        dvfs=DvfsTable.from_frequencies((710, 918, 1224, 1479)),
        utilisation={"conv2d": 0.55, "attention": 0.50, "feedforward": 0.55, "linear": 0.70},
    )
    return Platform(
        name="jetson-nano-class",
        compute_units=(gpu, cpu),
        interconnect=Interconnect(bandwidth_gbs=20.0, sync_overhead_ms=0.08, energy_pj_per_byte=80.0),
        shared_memory=SharedMemory(
            capacity_bytes=4 * 2**30,
            feature_budget_bytes=int(feature_budget_mib * 2**20),
        ),
    )


def mobile_big_little(feature_budget_mib: float = 8.0) -> Platform:
    """A big.LITTLE mobile SoC with an NPU (phone-class silicon).

    No GPU in the mapping space (mobile GPUs are usually busy with the
    display pipeline); instead a fixed-function NPU carries convolutions at
    very low power but falls off a cliff on attention, a fast big-core
    cluster is the flexible unit, and an efficiency cluster trades speed for
    the lowest static power of the zoo.  DVFS ladders are mobile-style: many
    steps, wide range.
    """
    npu = ComputeUnit(
        name="npu",
        kind=ComputeUnitKind.DLA,
        peak_gflops=14.0,
        memory_bandwidth_gbs=34.0,
        launch_overhead_ms=0.18,
        power=PowerModel(static_w=0.15, dynamic_w=0.55),
        dvfs=DvfsTable.from_frequencies((312, 468, 624, 780, 936, 1100)),
        utilisation={"conv2d": 1.0, "attention": 0.18, "feedforward": 0.45, "linear": 0.35},
    )
    big = ComputeUnit(
        name="cpu-big",
        kind=ComputeUnitKind.CPU,
        peak_gflops=5.0,
        memory_bandwidth_gbs=28.0,
        launch_overhead_ms=0.015,
        power=PowerModel(static_w=0.9, dynamic_w=3.6),
        dvfs=DvfsTable.from_frequencies((500, 851, 1277, 1703, 2130, 2401, 2850)),
        utilisation={"conv2d": 0.60, "attention": 0.55, "feedforward": 0.60, "linear": 0.75},
    )
    little = ComputeUnit(
        name="cpu-little",
        kind=ComputeUnitKind.CPU,
        peak_gflops=1.6,
        memory_bandwidth_gbs=16.0,
        launch_overhead_ms=0.015,
        power=PowerModel(static_w=0.12, dynamic_w=0.9),
        dvfs=DvfsTable.from_frequencies((300, 576, 864, 1153, 1441, 1800)),
        utilisation={"conv2d": 0.55, "attention": 0.50, "feedforward": 0.55, "linear": 0.70},
    )
    return Platform(
        name="mobile-big-little",
        compute_units=(npu, big, little),
        interconnect=Interconnect(bandwidth_gbs=30.0, sync_overhead_ms=0.06, energy_pj_per_byte=70.0),
        shared_memory=SharedMemory(
            capacity_bytes=8 * 2**30,
            feature_budget_bytes=int(feature_budget_mib * 2**20),
        ),
    )


def server_gpu(feature_budget_mib: float = 256.0) -> Platform:
    """A server-GPU baseline: one datacenter GPU plus a host CPU socket.

    The anti-edge regime: throughput and memory are nearly free, static
    power is enormous, and the DVFS ladder barely matters because the card
    idles hot.  Energy-oriented mappings searched here look nothing like the
    edge boards' — the campaign uses it as the far end of the scaling axis.
    """
    gpu = ComputeUnit(
        name="gpu",
        kind=ComputeUnitKind.GPU,
        peak_gflops=900.0,
        memory_bandwidth_gbs=1400.0,
        launch_overhead_ms=0.03,
        power=PowerModel(static_w=60.0, dynamic_w=240.0),
        dvfs=DvfsTable.from_frequencies((210, 510, 810, 1110, 1410, 1710, 1980)),
        utilisation={"conv2d": 1.0, "attention": 0.85, "feedforward": 0.90, "linear": 0.60},
    )
    cpu = ComputeUnit(
        name="cpu",
        kind=ComputeUnitKind.CPU,
        peak_gflops=40.0,
        memory_bandwidth_gbs=180.0,
        launch_overhead_ms=0.01,
        power=PowerModel(static_w=35.0, dynamic_w=90.0),
        dvfs=DvfsTable.from_frequencies((1200, 1800, 2400, 3000, 3500)),
        utilisation={"conv2d": 0.60, "attention": 0.55, "feedforward": 0.60, "linear": 0.75},
    )
    return Platform(
        name="server-gpu",
        compute_units=(gpu, cpu),
        interconnect=Interconnect(bandwidth_gbs=64.0, sync_overhead_ms=0.02, energy_pj_per_byte=30.0),
        shared_memory=SharedMemory(
            capacity_bytes=512 * 2**30,
            feature_budget_bytes=int(feature_budget_mib * 2**20),
        ),
    )


#: The registry: canonical name -> zero-argument platform factory.
_REGISTRY: Dict[str, Callable[[], Platform]] = {
    "jetson-agx-xavier": jetson_agx_xavier,
    "jetson-agx-orin": jetson_agx_orin,
    "jetson-nano-class": jetson_nano_class,
    "mobile-big-little": mobile_big_little,
    "server-gpu": server_gpu,
}


def platform_registry() -> Dict[str, Callable[[], Platform]]:
    """A copy of the preset registry (name -> factory)."""
    return dict(_REGISTRY)


def platform_names() -> Tuple[str, ...]:
    """Canonical names of every registered preset, sorted."""
    return tuple(sorted(_REGISTRY))


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def get_platform(name: str) -> Platform:
    """Build the registered preset called ``name``.

    Names are case-insensitive and underscore/dash agnostic
    (``"Jetson_AGX_Orin"`` resolves to ``"jetson-agx-orin"``).
    """
    factory = _REGISTRY.get(_canonical(name))
    if factory is None:
        raise PlatformError(
            f"unknown platform preset {name!r}; registered presets: {list(platform_names())}"
        )
    return factory()


def derive(
    base: Platform,
    name: str,
    gflops_scale: float = 1.0,
    bandwidth_scale: float = 1.0,
    power_scale: float = 1.0,
    launch_overhead_scale: float = 1.0,
    feature_budget_scale: float = 1.0,
    dvfs_points: Optional[int] = None,
    extra_units: Sequence[ComputeUnit] = (),
) -> Platform:
    """Generate a scaled variant of ``base`` (what-if platforms, sweeps).

    Multiplies every compute unit's throughput, bandwidth, power terms and
    launch overhead by the given factors, optionally resamples each DVFS
    ladder to ``dvfs_points`` evenly spaced steps over its original range,
    scales the shared-memory feature budget, and appends ``extra_units``.
    Scaling factors apply uniformly, so the calibration invariants of the
    registry presets (relative unit ordering) are preserved by construction.
    """
    if gflops_scale <= 0 or bandwidth_scale <= 0 or power_scale <= 0:
        raise PlatformError("derive() scaling factors must be positive")
    if launch_overhead_scale < 0 or feature_budget_scale <= 0:
        raise PlatformError("derive() overhead/budget factors must be positive")
    if dvfs_points is not None and dvfs_points < 2:
        raise PlatformError(
            "derive() needs dvfs_points >= 2: a single-point ladder would break the "
            "zoo invariant that every unit's theta space is non-degenerate"
        )
    units = []
    for unit in base.compute_units:
        dvfs = unit.dvfs
        if dvfs_points is not None:
            frequencies = [point.frequency_mhz for point in dvfs.points]
            dvfs = DvfsTable.linspace(min(frequencies), max(frequencies), dvfs_points)
        units.append(
            replace(
                unit,
                peak_gflops=unit.peak_gflops * gflops_scale,
                memory_bandwidth_gbs=unit.memory_bandwidth_gbs * bandwidth_scale,
                launch_overhead_ms=unit.launch_overhead_ms * launch_overhead_scale,
                power=PowerModel(
                    static_w=unit.power.static_w * power_scale,
                    dynamic_w=unit.power.dynamic_w * power_scale,
                ),
                dvfs=dvfs,
            )
        )
    units.extend(extra_units)
    return Platform(
        name=name,
        compute_units=tuple(units),
        interconnect=base.interconnect,
        shared_memory=SharedMemory(
            capacity_bytes=base.shared_memory.capacity_bytes,
            feature_budget_bytes=max(
                1, int(base.shared_memory.feature_budget_bytes * feature_budget_scale)
            ),
        ),
    )
