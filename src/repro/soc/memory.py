"""Shared system memory of the MPSoC.

The Xavier's compute units share one LPDDR4x pool.  The search constraint
``size(F, I) < M`` of Eq. 15 bounds the intermediate feature maps that must
stay resident for the duration of a dynamic inference (everything a stage may
still need if it gets instantiated, see Fig. 4).  :class:`SharedMemory`
tracks that budget; the full 32 GB of the board is not the relevant number --
the budget models the fraction of DRAM the deployment is allowed to pin for
inter-stage features alongside weights, runtime engines and the rest of the
system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..utils import check_positive

__all__ = ["SharedMemory"]


@dataclass(frozen=True)
class SharedMemory:
    """Shared DRAM pool with a budget for resident inter-stage features."""

    capacity_bytes: int
    feature_budget_bytes: int

    def __post_init__(self) -> None:
        check_positive(self.capacity_bytes, "capacity_bytes")
        check_positive(self.feature_budget_bytes, "feature_budget_bytes")
        if self.feature_budget_bytes > self.capacity_bytes:
            raise ConfigurationError(
                "feature_budget_bytes cannot exceed capacity_bytes "
                f"({self.feature_budget_bytes} > {self.capacity_bytes})"
            )

    def fits(self, stored_feature_bytes: int) -> bool:
        """Whether a deployment's resident features fit in the budget."""
        if stored_feature_bytes < 0:
            raise ConfigurationError("stored_feature_bytes must be >= 0")
        return stored_feature_bytes <= self.feature_budget_bytes

    def utilisation(self, stored_feature_bytes: int) -> float:
        """Fraction of the feature budget a deployment consumes."""
        if stored_feature_bytes < 0:
            raise ConfigurationError("stored_feature_bytes must be >= 0")
        return stored_feature_bytes / self.feature_budget_bytes
