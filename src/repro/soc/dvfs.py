"""DVFS operating points and the linear power model of Eq. 10.

Each compute unit supports a discrete set of frequency/voltage operating
points (on the Xavier these are exposed through ``nvpmodel`` / ``jetson_clocks``).
The paper abstracts an operating point into a *scaling factor* ``theta`` in
``(0, 1]`` -- the frequency normalised to the unit's maximum -- and models the
unit's power as

    P_m = P_s + P_d(theta) ~= alpha + beta * theta            (Eq. 10)

with ``alpha`` the static component and ``beta`` the dynamic coefficient.
Execution latency of a compute-bound kernel scales as ``1 / theta``, which is
how the scaling factor enters the cost model in :mod:`repro.perf.layer_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utils import check_non_negative, check_positive

__all__ = ["OperatingPoint", "DvfsTable", "PowerModel"]


@dataclass(frozen=True)
class OperatingPoint:
    """A single DVFS operating point of a compute unit."""

    frequency_mhz: float
    voltage_mv: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.frequency_mhz, "frequency_mhz")
        check_non_negative(self.voltage_mv, "voltage_mv")


@dataclass(frozen=True)
class DvfsTable:
    """Ordered collection of the operating points a compute unit supports."""

    points: Tuple[OperatingPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("a DVFS table needs at least one operating point")
        points = tuple(self.points)
        frequencies = [point.frequency_mhz for point in points]
        if sorted(frequencies) != frequencies:
            raise ConfigurationError("operating points must be sorted by increasing frequency")
        if len(set(frequencies)) != len(frequencies):
            raise ConfigurationError("operating points must have distinct frequencies")
        object.__setattr__(self, "points", points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self.points[index]

    @property
    def max_frequency_mhz(self) -> float:
        """Highest supported frequency."""
        return self.points[-1].frequency_mhz

    def scale(self, index: int) -> float:
        """Scaling factor ``theta`` of operating point ``index`` (in ``(0, 1]``)."""
        if not 0 <= index < len(self.points):
            raise ConfigurationError(
                f"operating-point index {index} out of range [0, {len(self.points)})"
            )
        return self.points[index].frequency_mhz / self.max_frequency_mhz

    def scales(self) -> Tuple[float, ...]:
        """Scaling factors of every operating point, in table order."""
        return tuple(point.frequency_mhz / self.max_frequency_mhz for point in self.points)

    def nearest_index(self, target_scale: float) -> int:
        """Index of the operating point whose scaling factor is closest to target.

        Runtime governors (:mod:`repro.serving.policies`) request a continuous
        utilisation-driven scale; hardware only offers the discrete table, so
        the governor snaps to the nearest supported point.  Ties resolve to
        the higher-frequency point, erring on the side of meeting demand.
        """
        if not 0 < target_scale <= 1:
            raise ConfigurationError(
                f"target_scale must lie in (0, 1], got {target_scale}"
            )
        scales = np.asarray(self.scales())
        distances = np.abs(scales - float(target_scale))
        best = int(np.argmin(distances))
        # argmin returns the first (slower) point on exact ties; prefer the
        # faster neighbour when it is exactly as close.
        if best + 1 < len(scales) and distances[best + 1] == distances[best]:
            best += 1
        return best

    @classmethod
    def from_frequencies(cls, frequencies_mhz: Sequence[float]) -> "DvfsTable":
        """Build a table from a plain list of frequencies (sorted ascending).

        Duplicate frequencies collapse to a single operating point.  Keeping
        them would create pairs of points with identical scaling factors,
        which silently defeats :meth:`nearest_index`'s prefer-the-faster
        tie-break (bumping to an equal neighbour changes nothing).
        """
        ordered = sorted({float(f) for f in frequencies_mhz})
        return cls(tuple(OperatingPoint(frequency_mhz=f) for f in ordered))

    @classmethod
    def linspace(cls, minimum_mhz: float, maximum_mhz: float, count: int) -> "DvfsTable":
        """Evenly spaced table of ``count`` points between two frequencies."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        if minimum_mhz <= 0 or maximum_mhz < minimum_mhz:
            raise ConfigurationError("need 0 < minimum_mhz <= maximum_mhz")
        frequencies = np.linspace(minimum_mhz, maximum_mhz, count)
        return cls.from_frequencies(frequencies.tolist())


@dataclass(frozen=True)
class PowerModel:
    """Linear power model ``P(theta) = alpha + beta * theta`` (Eq. 10)."""

    static_w: float
    dynamic_w: float

    def __post_init__(self) -> None:
        check_non_negative(self.static_w, "static_w")
        check_non_negative(self.dynamic_w, "dynamic_w")
        if self.static_w == 0 and self.dynamic_w == 0:
            raise ConfigurationError("power model cannot be identically zero")

    def power_w(self, scale: float) -> float:
        """Power draw (watts) at scaling factor ``scale``."""
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        return self.static_w + self.dynamic_w * scale

    @property
    def max_power_w(self) -> float:
        """Power draw at the highest operating point (``theta = 1``)."""
        return self.static_w + self.dynamic_w

    def energy_mj(self, latency_ms: float, scale: float) -> float:
        """Energy (millijoules) spent running for ``latency_ms`` at ``scale``.

        With power in watts and latency in milliseconds the product is
        directly in millijoules, matching the units of Table II.
        """
        check_non_negative(latency_ms, "latency_ms")
        return latency_ms * self.power_w(scale)
