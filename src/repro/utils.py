"""Small shared utilities: validation helpers, deterministic RNG management.

The whole library is deterministic given a seed.  Every stochastic component
(channel-importance synthesis, measurement-noise injection, the evolutionary
search) accepts either an integer seed or a :class:`numpy.random.Generator`
and routes it through :func:`as_rng` so composition stays reproducible.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "as_rng",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability_vector",
    "pairwise",
    "geometric_mean",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator; an integer yields a
    deterministic one; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is finite and >= 0 and return it."""
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str, *, allow_zero: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1]``)."""
    lower_ok = value >= 0 if allow_zero else value > 0
    if not np.isfinite(value) or not lower_ok or value > 1:
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ConfigurationError(f"{name} must lie in {bound}, got {value!r}")
    return float(value)


def check_probability_vector(values: Sequence[float], name: str, *, atol: float = 1e-6) -> np.ndarray:
    """Validate that ``values`` are non-negative and sum to one."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"{name} must be a non-empty 1-D sequence")
    if np.any(arr < -atol):
        raise ConfigurationError(f"{name} must be non-negative, got {values!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ConfigurationError(f"{name} must sum to 1.0 (got {total:.6f})")
    return arr


def pairwise(items: Iterable):
    """Yield consecutive pairs ``(items[k], items[k+1])``."""
    iterator = iter(items)
    try:
        previous = next(iterator)
    except StopIteration:
        return
    for current in iterator:
        yield previous, current
        previous = current


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("geometric_mean requires at least one value")
    if np.any(arr <= 0):
        raise ConfigurationError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
