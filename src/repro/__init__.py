"""Map-and-Conquer reproduction library.

A from-scratch Python reproduction of *"Map-and-Conquer: Energy-Efficient
Mapping of Dynamic Neural Nets onto Heterogeneous MPSoCs"* (DAC 2023).  The
package provides:

* a symbolic neural-network IR and model zoo (:mod:`repro.nn`),
* a calibrated heterogeneous MPSoC model with DVFS (:mod:`repro.soc`),
* analytical and learned (GBDT surrogate) layer cost models plus the
  concurrent-execution characterisation of Eq. 8-14 (:mod:`repro.perf`),
* the dynamic multi-exit inference simulator (:mod:`repro.dynamics`),
* the evolutionary mapping optimiser and baselines (:mod:`repro.search`),
* the pluggable search engine: ask/tell strategies (evolutionary, NSGA-II,
  random), serial/process-pool evaluation backends and a persistent
  content-keyed evaluation cache (:mod:`repro.engine`),
* the serving subsystem: a deterministic discrete-event traffic simulator
  that deploys searched mappings behind per-compute-unit FIFO queues under
  constant/Poisson/bursty/diurnal arrival scenarios, with load-adaptive
  mapping switching and DVFS governing (:mod:`repro.serving`),
* the platform zoo: calibrated presets spanning Orin-class, Nano-class,
  mobile big.LITTLE+NPU and server-GPU regimes behind a named registry,
  plus a scaling helper for what-if variants (:mod:`repro.soc.presets`),
* cross-platform campaigns: one search fanned over a platform x scenario
  grid, per-platform Pareto fronts and a portability matrix quantifying how
  platform-specific the searched mappings are (:mod:`repro.campaign`),
* a first-class objective layer: named, pluggable
  :class:`~repro.search.objectives.ObjectiveSet` objectives (direction +
  surrogate transform per spec) threaded through the search, NSGA-II,
  GBDT surrogates and campaign checkpoints — including serving-aware
  search that optimises expected queueing delay at a workload family's
  peak rate (:mod:`repro.search.objectives`),
* serving campaigns: parameterised workload families (steady, bursty,
  diurnal, multi-tenant) swept over every platform's front, ranking the
  boards by served-p99-per-joule under real traffic instead of isolated
  objectives (:mod:`repro.serving.families`,
  :mod:`repro.campaign.serving_runner`),
* the high-level :class:`~repro.core.framework.MapAndConquer` facade and
  report helpers (:mod:`repro.core`).

Quickstart::

    from repro import MapAndConquer, jetson_agx_xavier, visformer

    framework = MapAndConquer(visformer(), jetson_agx_xavier())
    result = framework.search(generations=20, population_size=16)
    print(result.best.summary_row())
"""

from .campaign import (
    CampaignResult,
    CampaignScenario,
    FleetCampaignResult,
    FleetMix,
    ServingCampaignResult,
    run_campaign,
    run_fleet_campaign,
    run_serving_campaign,
)
from .core.framework import MapAndConquer
from .core.report import (
    campaign_summary,
    campaign_table,
    fleet_summary,
    fleet_table,
    format_table,
    policy_adaptivity_table,
    serving_campaign_table,
    surrogate_summary,
    traffic_ranking_summary,
)
from .engine import (
    EvaluationCache,
    EvolutionaryStrategy,
    NSGA2Strategy,
    ProcessPoolBackend,
    RandomStrategy,
    SearchEngine,
    SerialBackend,
    SurrogateSettings,
)
from .nn.models import build_model, resnet20, vgg19, visformer
from .search.constraints import SearchConstraints
from .search.objectives import (
    ObjectiveSet,
    ObjectiveSpec,
    default_objective_set,
    MeasuredObjectives,
    measured_serving_objectives,
    serving_objectives,
)
from .search.pareto import select_measured_serving, select_serving_oriented
from .search.space import MappingConfig, SearchSpace
from .serving import (
    POLICY_KINDS,
    AdaptiveSwitchPolicy,
    Deployment,
    DvfsGovernorPolicy,
    OnOffBursts,
    PoissonArrivals,
    ServingResultCache,
    StaticPolicy,
    SteadyPoissonFamily,
    TrafficSimulator,
    default_families,
    family_names,
    get_family,
    rank_under_traffic,
)
from .soc.platform import Platform, jetson_agx_xavier
from .soc.presets import derive, get_platform, platform_names, platform_registry

__version__ = "1.5.0"

__all__ = [
    "MapAndConquer",
    "format_table",
    "SearchConstraints",
    "MappingConfig",
    "SearchSpace",
    "ObjectiveSpec",
    "ObjectiveSet",
    "default_objective_set",
    "serving_objectives",
    "MeasuredObjectives",
    "measured_serving_objectives",
    "select_serving_oriented",
    "select_measured_serving",
    "Platform",
    "jetson_agx_xavier",
    "platform_registry",
    "platform_names",
    "get_platform",
    "derive",
    "CampaignScenario",
    "CampaignResult",
    "run_campaign",
    "campaign_table",
    "campaign_summary",
    "surrogate_summary",
    "SurrogateSettings",
    "ServingCampaignResult",
    "run_serving_campaign",
    "serving_campaign_table",
    "traffic_ranking_summary",
    "policy_adaptivity_table",
    "POLICY_KINDS",
    "ServingResultCache",
    "SteadyPoissonFamily",
    "FleetMix",
    "FleetCampaignResult",
    "run_fleet_campaign",
    "fleet_table",
    "fleet_summary",
    "family_names",
    "get_family",
    "default_families",
    "visformer",
    "vgg19",
    "resnet20",
    "build_model",
    "EvaluationCache",
    "SearchEngine",
    "SerialBackend",
    "ProcessPoolBackend",
    "EvolutionaryStrategy",
    "NSGA2Strategy",
    "RandomStrategy",
    "Deployment",
    "TrafficSimulator",
    "StaticPolicy",
    "AdaptiveSwitchPolicy",
    "DvfsGovernorPolicy",
    "PoissonArrivals",
    "OnOffBursts",
    "rank_under_traffic",
    "__version__",
]
