"""Dynamic (multi-exit) inference behaviour.

The hardware model in :mod:`repro.perf` answers "how fast / how much energy
if these stages run"; this subpackage answers "which stages run for which
inputs and what accuracy results":

* :mod:`repro.dynamics.accuracy` -- a calibrated analytical model mapping a
  stage's channel-importance coverage to its top-1 accuracy (the substitute
  for training multi-exit models on CIFAR-100, see DESIGN.md),
* :mod:`repro.dynamics.samples` -- exit statistics under the paper's ideal
  input-mapping assumption: the ``N_i`` counts of Eq. 16 and the fraction of
  samples terminating at each stage,
* :mod:`repro.dynamics.inference` -- expected latency/energy of dynamic
  inference by combining exit statistics with a hardware profile,
* :mod:`repro.dynamics.controller` -- a confidence-threshold runtime exit
  controller that relaxes the ideal-input-mapping assumption (extension).
"""

from .accuracy import AccuracyModel
from .samples import ExitStatistics, compute_exit_statistics
from .inference import DynamicInferenceResult, simulate_dynamic_inference
from .controller import ControllerResult, ExitDecision, ThresholdExitController

__all__ = [
    "AccuracyModel",
    "ExitStatistics",
    "compute_exit_statistics",
    "DynamicInferenceResult",
    "simulate_dynamic_inference",
    "ControllerResult",
    "ExitDecision",
    "ThresholdExitController",
]
