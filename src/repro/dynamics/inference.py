"""Expected latency/energy of dynamic inference.

Combining the hardware profile (per-stage latency and energy under the
concurrent execution model) with the exit statistics (how many samples
terminate at each stage) gives the average-per-sample metrics reported in
Table II: "Avg. Enrg. (mJ)" and "Avg. Lat. (ms)".  A sample terminating at
stage ``i`` has instantiated stages ``S_1 .. S_i``, so it pays the cumulative
energy ``E_{S_{1:i}}`` (Eq. 14) and experiences the makespan of the first
``i`` concurrent stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..nn.multiexit import DynamicNetwork
from ..perf.evaluator import HardwareProfile
from .accuracy import AccuracyModel
from .samples import DEFAULT_VALIDATION_SAMPLES, ExitStatistics, compute_exit_statistics

__all__ = ["DynamicInferenceResult", "simulate_dynamic_inference"]


@dataclass(frozen=True)
class DynamicInferenceResult:
    """Average-case behaviour of one dynamic mapping configuration."""

    exit_statistics: ExitStatistics
    stage_latencies_ms: Tuple[float, ...]
    stage_energies_mj: Tuple[float, ...]
    expected_latency_ms: float
    expected_energy_mj: float
    worst_case_latency_ms: float
    worst_case_energy_mj: float
    reuse_fraction: float
    stored_feature_bytes: int

    @property
    def accuracy(self) -> float:
        """Top-1 accuracy of the dynamic cascade."""
        return self.exit_statistics.accuracy

    @property
    def num_stages(self) -> int:
        """Number of stages ``M``."""
        return self.exit_statistics.num_stages


def simulate_dynamic_inference(
    dynamic_network: DynamicNetwork,
    profile: HardwareProfile,
    accuracy_model: AccuracyModel | None = None,
    validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
) -> DynamicInferenceResult:
    """Simulate dynamic inference of ``dynamic_network`` under ``profile``.

    Parameters
    ----------
    dynamic_network:
        The partitioned multi-exit network (provides coverage and reuse).
    profile:
        Hardware characterisation of the same network under a concrete
        mapping/DVFS choice (provides per-stage latency and energy).
    accuracy_model:
        Coverage-to-accuracy model; defaults to the calibrated family model.
    validation_samples:
        Validation-set size used for the ``N_i`` counts.
    """
    if profile.num_stages != dynamic_network.num_stages:
        raise ConfigurationError(
            f"profile has {profile.num_stages} stages but the network has "
            f"{dynamic_network.num_stages}"
        )
    model = accuracy_model if accuracy_model is not None else AccuracyModel()
    stage_accuracies = model.stage_accuracies(dynamic_network)
    statistics = compute_exit_statistics(stage_accuracies, validation_samples=validation_samples)

    expected_latency = 0.0
    expected_energy = 0.0
    for stage_index, fraction in enumerate(statistics.exit_fractions):
        expected_latency += fraction * profile.cumulative_latency_ms(stage_index)
        expected_energy += fraction * profile.cumulative_energy_mj(stage_index)

    return DynamicInferenceResult(
        exit_statistics=statistics,
        stage_latencies_ms=tuple(stage.latency_ms for stage in profile.stages),
        stage_energies_mj=tuple(stage.energy_mj for stage in profile.stages),
        expected_latency_ms=float(expected_latency),
        expected_energy_mj=float(expected_energy),
        worst_case_latency_ms=profile.latency_ms,
        worst_case_energy_mj=profile.total_energy_mj,
        reuse_fraction=dynamic_network.reuse_fraction(),
        stored_feature_bytes=profile.stored_feature_bytes,
    )
