"""Analytical accuracy model for width-partitioned multi-exit networks.

The paper trains each candidate multi-exit model (or fine-tunes exits) and
measures top-1 accuracy on CIFAR-100.  Without training in the loop, this
reproduction uses a calibrated analytical substitute built on two published
observations the paper itself relies on:

1. **Channel redundancy** -- accuracy degrades slowly while the most
   important channels are retained and steeply once they are not (the basis
   of channel pruning).  We model the relative accuracy of a stage as
   ``1 - (1 - coverage) ** redundancy`` where ``coverage`` is the
   channel-importance mass available to the stage (own channels plus reused
   features, averaged over layers) and ``redundancy`` controls how flat the
   curve is near full coverage.  Larger exponents mean a more redundant
   architecture.
2. **Exit-head gains on over-parameterised CNNs** -- VGG19's dynamic variants
   in Table II *exceed* the static baseline by ~4 points, a known effect of
   deep supervision on heavily over-parameterised CNNs; the model captures it
   with a family-specific multiplicative bonus that grows with coverage.

Calibration targets (Table II): Visformer baseline 88.09 %, dynamic variants
84-88 % with drops of up to ~6 % under hard 50 % reuse constraints; VGG19
baseline 80.55 % with dynamic variants around 82-85 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..nn.multiexit import DynamicNetwork
from ..utils import check_fraction, check_non_negative

__all__ = ["AccuracyModel"]

#: Redundancy exponent per architecture family: larger = more redundant, i.e.
#: the accuracy curve stays flat longer as channels are removed.
_FAMILY_REDUNDANCY = {"vit": 2.0, "cnn": 3.0}

#: Multiplicative accuracy bonus of deep supervision at full coverage.
_FAMILY_EXIT_BONUS = {"vit": 0.00, "cnn": 0.055}

#: Hard ceiling so bonuses can never produce accuracies above this value.
_ACCURACY_CEILING = 0.995


@dataclass(frozen=True)
class AccuracyModel:
    """Maps stage coverage to stage top-1 accuracy.

    Parameters
    ----------
    redundancy:
        Redundancy exponent; ``None`` selects the family default
        (ViT 2.0, CNN 3.0).
    exit_bonus:
        Maximum relative accuracy gain from per-stage exit heads (deep
        supervision); ``None`` selects the family default.
    exit_penalty:
        Relative accuracy cost of classifying from an intermediate exit
        instead of the original head (applies to every stage).
    """

    redundancy: float | None = None
    exit_bonus: float | None = None
    exit_penalty: float = 0.005

    def __post_init__(self) -> None:
        if self.redundancy is not None and self.redundancy <= 0:
            raise ConfigurationError(f"redundancy must be > 0, got {self.redundancy}")
        if self.exit_bonus is not None:
            check_non_negative(self.exit_bonus, "exit_bonus")
        check_fraction(self.exit_penalty, "exit_penalty")

    def _redundancy_for(self, family: str) -> float:
        if self.redundancy is not None:
            return self.redundancy
        return _FAMILY_REDUNDANCY.get(family, 2.5)

    def _bonus_for(self, family: str) -> float:
        if self.exit_bonus is not None:
            return self.exit_bonus
        return _FAMILY_EXIT_BONUS.get(family, 0.0)

    def stage_accuracy_from_coverage(
        self, coverage: float, base_accuracy: float, family: str
    ) -> float:
        """Top-1 accuracy of a stage whose exit sees ``coverage`` importance mass."""
        check_fraction(coverage, "coverage")
        check_fraction(base_accuracy, "base_accuracy", allow_zero=False)
        if coverage == 0.0:
            return 0.0
        redundancy = self._redundancy_for(family)
        relative = 1.0 - (1.0 - coverage) ** redundancy
        bonus = 1.0 + self._bonus_for(family) * coverage
        penalty = 1.0 - self.exit_penalty
        accuracy = base_accuracy * relative * bonus * penalty
        return float(min(_ACCURACY_CEILING, max(0.0, accuracy)))

    def stage_accuracies(self, dynamic_network: DynamicNetwork) -> tuple:
        """Top-1 accuracy of every stage's exit, in stage order.

        Stage accuracies are non-decreasing in practice because later stages
        see strictly more features (their own plus whatever earlier stages
        forward); the model enforces monotonicity explicitly so that exit
        statistics stay well defined even for adversarial indicator choices.
        """
        base = dynamic_network.network.base_accuracy
        family = dynamic_network.network.family
        accuracies = []
        best_so_far = 0.0
        for stage_index in range(dynamic_network.num_stages):
            coverage = dynamic_network.stage_coverage(stage_index)
            accuracy = self.stage_accuracy_from_coverage(coverage, base, family)
            best_so_far = max(best_so_far, accuracy)
            accuracies.append(best_so_far)
        return tuple(accuracies)

    def final_accuracy(self, dynamic_network: DynamicNetwork) -> float:
        """Accuracy ``Acc_SM`` of the last stage (the dynamic model's accuracy)."""
        return self.stage_accuracies(dynamic_network)[-1]
