"""Exit statistics under the paper's ideal input-mapping assumption.

The paper assumes the number of stages needed to process an input sample is
known a priori (Sect. III-B), i.e. a sample that stage ``i`` can classify
correctly -- but no earlier stage can -- terminates exactly at stage ``i``.
Given per-stage accuracies this yields the ``N_i`` counts of Eq. 16:

    N_i = number of validation samples correctly classified at S_i,
          given that every prior stage misclassifies them.

Under the nested-correctness view (a sample classifiable by a weak exit is
also classifiable by every stronger one), ``N_i`` is simply the accuracy
increment between consecutive stages times the validation-set size, while the
samples no stage classifies correctly traverse the whole cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utils import check_fraction

__all__ = ["ExitStatistics", "compute_exit_statistics"]

#: CIFAR-100 test-set size, the validation set used by the paper.
DEFAULT_VALIDATION_SAMPLES = 10_000


@dataclass(frozen=True)
class ExitStatistics:
    """Per-stage exit behaviour of a dynamic multi-exit network."""

    stage_accuracies: Tuple[float, ...]
    correct_counts: Tuple[int, ...]
    exit_fractions: Tuple[float, ...]
    validation_samples: int

    def __post_init__(self) -> None:
        if not self.stage_accuracies:
            raise ConfigurationError("ExitStatistics needs at least one stage")
        if not (
            len(self.stage_accuracies)
            == len(self.correct_counts)
            == len(self.exit_fractions)
        ):
            raise ConfigurationError("per-stage tuples must have identical length")
        total_fraction = float(sum(self.exit_fractions))
        if abs(total_fraction - 1.0) > 1e-6:
            raise ConfigurationError(
                f"exit fractions must sum to 1, got {total_fraction:.6f}"
            )

    @property
    def num_stages(self) -> int:
        """Number of exits / stages."""
        return len(self.stage_accuracies)

    @property
    def accuracy(self) -> float:
        """Top-1 accuracy of the dynamic cascade (its final stage)."""
        return self.stage_accuracies[-1]

    @property
    def early_exit_fraction(self) -> float:
        """Fraction of samples that terminate before the last stage."""
        return float(sum(self.exit_fractions[:-1]))

    def expected_stages(self) -> float:
        """Mean number of stages instantiated per sample."""
        return float(
            sum((index + 1) * fraction for index, fraction in enumerate(self.exit_fractions))
        )


def compute_exit_statistics(
    stage_accuracies: Sequence[float],
    validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
) -> ExitStatistics:
    """Derive ``N_i`` counts and termination fractions from stage accuracies.

    Parameters
    ----------
    stage_accuracies:
        Non-decreasing top-1 accuracies of the stages' exits (fractions).
    validation_samples:
        Size of the validation set the counts refer to (10 000 for the
        CIFAR-100 test set used in the paper).
    """
    accuracies = [check_fraction(value, "stage accuracy") for value in stage_accuracies]
    if not accuracies:
        raise ConfigurationError("stage_accuracies must be non-empty")
    if validation_samples < 1:
        raise ConfigurationError("validation_samples must be >= 1")
    if any(b < a - 1e-9 for a, b in zip(accuracies, accuracies[1:])):
        raise ConfigurationError("stage accuracies must be non-decreasing")

    increments = np.diff(np.concatenate(([0.0], np.asarray(accuracies))))
    correct_counts = np.round(increments * validation_samples).astype(int)
    # Samples that no stage classifies correctly still traverse all stages
    # and therefore terminate at the last one.
    exit_fractions = increments.copy()
    exit_fractions[-1] += 1.0 - accuracies[-1]
    # Normalise away rounding noise.
    exit_fractions = exit_fractions / exit_fractions.sum()
    return ExitStatistics(
        stage_accuracies=tuple(float(value) for value in accuracies),
        correct_counts=tuple(int(count) for count in correct_counts),
        exit_fractions=tuple(float(value) for value in exit_fractions),
        validation_samples=int(validation_samples),
    )
