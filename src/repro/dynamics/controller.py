"""Runtime exit controllers: relaxing the ideal-input-mapping assumption.

The paper's system model assumes *ideal input mapping*: the number of stages
a sample needs is known a priori (Sect. III-B), and it points to runtime
controllers such as those in HADAS [17] for realising the decision in
practice.  This module provides that missing runtime piece as an extension:

* a per-sample **difficulty model** -- each validation sample draws a latent
  difficulty, and a stage classifies it correctly when the stage's accuracy
  budget covers that difficulty (this reproduces exactly the ``N_i`` counts
  of the ideal analysis in expectation);
* a **confidence-threshold controller** -- the deployed policy does not know
  the ground truth, it only sees the exit's confidence.  The controller exits
  at the first stage whose confidence clears a threshold, which introduces
  the two realistic error modes: *premature exits* (confidently wrong at an
  early stage) and *unnecessary escalations* (correct but under-confident).

Monte-Carlo simulation over a synthetic sample population yields accuracy,
expected stages, latency and energy under the non-ideal policy, so the gap
between the paper's idealised numbers and a deployable controller can be
quantified (see ``examples``/tests and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..perf.evaluator import HardwareProfile
from ..utils import as_rng, check_fraction

__all__ = ["ControllerResult", "ExitDecision", "ThresholdExitController"]


@dataclass(frozen=True)
class ExitDecision:
    """Outcome of the controller for one individual request.

    ``stage`` is the terminating stage index, ``correct`` whether the exit's
    prediction is right, ``premature`` whether the controller exited
    confidently-wrong before a stage that could have classified the sample,
    and ``escalated`` whether a correct-but-under-confident stage was passed
    over (paying for extra stages).
    """

    stage: int
    correct: bool
    premature: bool
    escalated: bool


@dataclass(frozen=True)
class ControllerResult:
    """Monte-Carlo outcome of dynamic inference under a runtime controller."""

    accuracy: float
    exit_fractions: Tuple[float, ...]
    expected_stages: float
    expected_latency_ms: float
    expected_energy_mj: float
    premature_exit_fraction: float
    escalation_fraction: float
    num_samples: int

    def __post_init__(self) -> None:
        if abs(sum(self.exit_fractions) - 1.0) > 1e-6:
            raise ConfigurationError("exit fractions must sum to one")


class ThresholdExitController:
    """Confidence-threshold early-exit policy.

    Parameters
    ----------
    threshold:
        Confidence required to terminate at a non-final stage.  Higher values
        push more samples to later stages (safer but slower / hungrier).
    confidence_noise:
        Standard deviation of the controller's confidence estimate around the
        stage's true correctness probability; models the gap between softmax
        confidence and correctness.
    seed:
        Seed of the Monte-Carlo sample population.
    """

    def __init__(
        self,
        threshold: float = 0.7,
        confidence_noise: float = 0.1,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_fraction(threshold, "threshold")
        if confidence_noise < 0:
            raise ConfigurationError(f"confidence_noise must be >= 0, got {confidence_noise}")
        self.threshold = float(threshold)
        self.confidence_noise = float(confidence_noise)
        self._rng = as_rng(seed)

    # -- shared model pieces -----------------------------------------------------
    @staticmethod
    def _validated_accuracies(stage_accuracies: Sequence[float]) -> "list[float]":
        """Validate the per-stage accuracy vector (non-empty, non-decreasing)."""
        accuracies = [check_fraction(value, "stage accuracy") for value in stage_accuracies]
        if not accuracies:
            raise ConfigurationError("stage_accuracies must be non-empty")
        if any(b < a - 1e-9 for a, b in zip(accuracies, accuracies[1:])):
            raise ConfigurationError("stage accuracies must be non-decreasing")
        return accuracies

    def _confidence(
        self, correct: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Noisy confidence estimates for a boolean correctness vector.

        The single model both :meth:`simulate` and :meth:`decide` observe:
        the true correctness probability, blurred by Gaussian noise, with
        wrong predictions biased half a unit down, clipped to ``[0, 1]``.
        """
        return np.clip(
            correct.astype(float)
            + rng.normal(0.0, self.confidence_noise, size=correct.size)
            - 0.5 * (~correct),
            0.0,
            1.0,
        )

    def decide(
        self,
        difficulty: float,
        stage_accuracies: Sequence[float],
        rng: "np.random.Generator | None" = None,
    ) -> ExitDecision:
        """Decide the terminating stage for one request of known difficulty.

        This is the per-request counterpart of :meth:`simulate`, used by the
        serving simulator (:mod:`repro.serving`) to make exit decisions in the
        loop: the request is classifiable by stage ``i`` iff
        ``difficulty <= stage_accuracies[i]``, and the controller exits at the
        first stage whose (noisy) confidence clears the threshold.

        Parameters
        ----------
        difficulty:
            Latent difficulty of the request in ``[0, 1]``.
        stage_accuracies:
            Non-decreasing per-stage exit accuracies.
        rng:
            Random generator for the confidence noise; ``None`` uses the
            controller's own stream.
        """
        check_fraction(difficulty, "difficulty")
        accuracies = self._validated_accuracies(stage_accuracies)
        generator = self._rng if rng is None else as_rng(rng)

        escalated = False
        last_stage = len(accuracies) - 1
        for stage_index, stage_accuracy in enumerate(accuracies):
            correct_here = bool(difficulty <= stage_accuracy)
            if stage_index == last_stage:
                return ExitDecision(
                    stage=stage_index,
                    correct=correct_here,
                    premature=False,
                    escalated=escalated,
                )
            confidence = float(
                self._confidence(np.array([correct_here]), generator)[0]
            )
            if confidence >= self.threshold:
                return ExitDecision(
                    stage=stage_index,
                    correct=correct_here,
                    premature=not correct_here,
                    escalated=escalated,
                )
            if correct_here:
                escalated = True
        raise AssertionError("unreachable: the final stage always exits")

    def simulate(
        self,
        stage_accuracies: Sequence[float],
        profile: HardwareProfile,
        num_samples: int = 5000,
    ) -> ControllerResult:
        """Simulate the controller over a synthetic validation population.

        Parameters
        ----------
        stage_accuracies:
            Non-decreasing per-stage exit accuracies (from
            :class:`~repro.dynamics.accuracy.AccuracyModel`).
        profile:
            Hardware characterisation of the same dynamic network, providing
            cumulative latency/energy per terminating stage.
        num_samples:
            Monte-Carlo population size.
        """
        accuracies = self._validated_accuracies(stage_accuracies)
        if profile.num_stages != len(accuracies):
            raise ConfigurationError(
                f"profile has {profile.num_stages} stages but {len(accuracies)} accuracies given"
            )
        if num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")

        num_stages = len(accuracies)
        # Latent difficulty per sample: a sample is classifiable by stage i
        # iff difficulty <= accuracies[i].  Uniform difficulties reproduce the
        # ideal N_i counts in expectation.
        difficulty = self._rng.random(num_samples)

        exits = np.full(num_samples, num_stages - 1, dtype=int)
        correct = np.zeros(num_samples, dtype=bool)
        premature = np.zeros(num_samples, dtype=bool)
        escalated = np.zeros(num_samples, dtype=bool)

        still_running = np.ones(num_samples, dtype=bool)
        for stage_index, stage_accuracy in enumerate(accuracies):
            is_last = stage_index == num_stages - 1
            active = np.where(still_running)[0]
            if active.size == 0:
                break
            correct_here = difficulty[active] <= stage_accuracy
            confidence = self._confidence(correct_here, self._rng)
            exit_now = confidence >= self.threshold if not is_last else np.ones_like(correct_here)
            exiting = active[exit_now]
            exits[exiting] = stage_index
            correct[exiting] = correct_here[exit_now]
            if not is_last:
                # Confidently wrong: the ideal mapping would have escalated.
                premature[exiting] |= ~correct_here[exit_now]
                # Correct but under-confident: pays for extra stages.
                staying = active[~exit_now]
                escalated[staying] |= difficulty[staying] <= stage_accuracy
            still_running[exiting] = False

        exit_fractions = np.bincount(exits, minlength=num_stages) / num_samples
        expected_latency = float(
            sum(
                fraction * profile.cumulative_latency_ms(stage)
                for stage, fraction in enumerate(exit_fractions)
            )
        )
        expected_energy = float(
            sum(
                fraction * profile.cumulative_energy_mj(stage)
                for stage, fraction in enumerate(exit_fractions)
            )
        )
        return ControllerResult(
            accuracy=float(correct.mean()),
            exit_fractions=tuple(float(f) for f in exit_fractions),
            expected_stages=float((exits + 1).mean()),
            expected_latency_ms=expected_latency,
            expected_energy_mj=expected_energy,
            premature_exit_fraction=float(premature.mean()),
            escalation_fraction=float(escalated.mean()),
            num_samples=int(num_samples),
        )
