"""Cross-platform search campaigns over the platform zoo.

:func:`run_campaign` fans :meth:`MapAndConquer.search` out over a platform x
scenario grid, reusing the engine's evaluation backends (serial or process
pool) inside every cell and one shared, optionally persistent
:class:`~repro.engine.cache.EvaluationCache` across the whole grid (content
digests include the platform name, so platforms never alias entries).  For
every cell it keeps the full :class:`~repro.search.evolutionary.SearchResult`
— including the per-platform Pareto front — and afterwards computes a
**portability ranking**: every front searched on platform A is translated
into platform B's vocabulary (:mod:`repro.campaign.portability`) and
re-evaluated by B's own pipeline, yielding the regret of deploying A's
mappings on B instead of searching B natively.

Optionally, every front is also re-ranked under one shared traffic scenario
via :func:`repro.serving.bridge.rank_under_traffic`, so the campaign reports
both isolated-sample and under-load winners per platform.

Everything is seed-deterministic: the same seed produces byte-identical
:func:`repro.core.report.campaign_summary` output, with serial and process
backends agreeing bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..engine.cache import EvaluationCache
from ..errors import ConfigurationError
from ..nn.graph import NetworkGraph
from ..search.constraints import SearchConstraints
from ..search.evaluation import EvaluatedConfig
from ..search.evolutionary import SearchResult
from ..search.objectives import paper_objective
from ..serving.workload import ArrivalProcess
from ..soc.platform import Platform
from ..soc.presets import get_platform
from .portability import count_surviving_on_front, translate_config

__all__ = [
    "CampaignScenario",
    "CampaignCell",
    "PortabilityEntry",
    "CampaignResult",
    "run_campaign",
]

#: Backend choices run_campaign accepts.  Instances are rejected: a backend
#: is bound to one evaluator spec, and the campaign needs one per platform.
_BACKEND_NAMES = ("serial", "process")


@dataclass(frozen=True)
class CampaignScenario:
    """One search scenario of the campaign grid (a column of the matrix).

    Parameters
    ----------
    name:
        Label used in tables and lookups; must be unique within a campaign.
    max_reuse_fraction:
        Optional feature-reuse cap baked into the search space *and*
        enforced as a hard constraint (the Fig. 6 75 % / 50 % scenarios).
    constraints:
        Optional explicit constraint set; overrides the cap-derived default.
    generations / population_size:
        Optional per-scenario overrides of the campaign-wide budget.
    """

    name: str = "unconstrained"
    max_reuse_fraction: Optional[float] = None
    constraints: Optional[SearchConstraints] = None
    generations: Optional[int] = None
    population_size: Optional[int] = None

    def resolve_constraints(self) -> Optional[SearchConstraints]:
        """The constraint set this scenario applies during search."""
        if self.constraints is not None:
            return self.constraints
        if self.max_reuse_fraction is not None:
            return SearchConstraints(max_reuse_fraction=self.max_reuse_fraction)
        return None


@dataclass(frozen=True)
class CampaignCell:
    """Outcome of one (platform, scenario) search."""

    platform_name: str
    scenario_name: str
    result: SearchResult
    best_objective: float
    traffic_ranking: Optional[tuple] = None

    @property
    def front(self) -> Tuple[EvaluatedConfig, ...]:
        """The cell's Pareto front."""
        return self.result.pareto


@dataclass(frozen=True)
class PortabilityEntry:
    """How the front searched on ``source`` fares re-evaluated on ``target``.

    ``regret`` is the ratio of the best transferred objective to the target's
    natively searched best (>= 1 means the native search found something at
    least as good; large values mean A's mappings do not travel).
    ``surviving_on_front`` counts transferred configs no native Pareto-front
    member dominates — when it is below ``transferred``, the source front is
    demonstrably not Pareto-optimal on the target.
    """

    source: str
    target: str
    scenario: str
    transferred: int
    surviving_on_front: int
    best_cross_objective: float
    native_best_objective: float

    @property
    def regret(self) -> float:
        """Best transferred objective over the native best (lower is better)."""
        if self.native_best_objective == 0.0:
            return float("inf")
        return self.best_cross_objective / self.native_best_objective

    @property
    def fully_pareto_optimal(self) -> bool:
        """Whether every transferred config survives on the target's front."""
        return self.surviving_on_front == self.transferred


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign produced: the grid plus the portability matrix."""

    network_name: str
    platform_names: Tuple[str, ...]
    scenario_names: Tuple[str, ...]
    cells: Tuple[CampaignCell, ...]
    portability: Tuple[PortabilityEntry, ...]
    seed: int
    _index: Dict[Tuple[str, str], CampaignCell] = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_index",
            {(cell.platform_name, cell.scenario_name): cell for cell in self.cells},
        )

    def cell(self, platform: str, scenario: Optional[str] = None) -> CampaignCell:
        """The outcome searched on ``platform`` under ``scenario``."""
        scenario = self.scenario_names[0] if scenario is None else scenario
        found = self._index.get((platform, scenario))
        if found is None:
            raise ConfigurationError(
                f"no campaign cell for platform {platform!r} / scenario {scenario!r}; "
                f"have platforms {list(self.platform_names)} and "
                f"scenarios {list(self.scenario_names)}"
            )
        return found

    def front(self, platform: str, scenario: Optional[str] = None):
        """Pareto front searched on ``platform`` under ``scenario``."""
        return self.cell(platform, scenario).front

    def entry(
        self, source: str, target: str, scenario: Optional[str] = None
    ) -> PortabilityEntry:
        """The portability entry for one (source, target) pair."""
        scenario = self.scenario_names[0] if scenario is None else scenario
        for candidate in self.portability:
            if (
                candidate.source == source
                and candidate.target == target
                and candidate.scenario == scenario
            ):
                return candidate
        raise ConfigurationError(
            f"no portability entry {source!r} -> {target!r} under scenario {scenario!r}"
        )

    def portability_matrix(
        self, scenario: Optional[str] = None
    ) -> Dict[Tuple[str, str], float]:
        """``(source, target) -> regret`` for one scenario of the campaign."""
        scenario = self.scenario_names[0] if scenario is None else scenario
        return {
            (entry.source, entry.target): entry.regret
            for entry in self.portability
            if entry.scenario == scenario
        }


def _resolve_platforms(platforms: Sequence[Union[str, Platform]]) -> Tuple[Platform, ...]:
    if not platforms:
        raise ConfigurationError("run_campaign needs at least one platform")
    resolved = tuple(
        item if isinstance(item, Platform) else get_platform(item) for item in platforms
    )
    names = [platform.name for platform in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"campaign platforms must have distinct names, got {names}")
    return resolved


def _resolve_scenarios(
    scenarios: Optional[Sequence[CampaignScenario]],
) -> Tuple[CampaignScenario, ...]:
    if scenarios is None:
        return (CampaignScenario(),)
    resolved = tuple(scenarios)
    if not resolved:
        raise ConfigurationError("pass None for the default scenario, not an empty list")
    names = [scenario.name for scenario in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"campaign scenarios must have distinct names, got {names}")
    return resolved


def run_campaign(
    network: NetworkGraph,
    platforms: Sequence[Union[str, Platform]],
    scenarios: Optional[Sequence[CampaignScenario]] = None,
    strategy: str = "evolutionary",
    backend: Optional[str] = None,
    n_workers: Optional[int] = None,
    cache: Union[EvaluationCache, str, Path, None] = None,
    generations: int = 10,
    population_size: int = 16,
    num_stages: Optional[int] = None,
    traffic: Optional[ArrivalProcess] = None,
    traffic_duration_ms: Optional[float] = None,
    traffic_metric: str = "p99_latency_ms",
    objective=paper_objective,
    accuracy_model: Optional[AccuracyModel] = None,
    reorder_channels: bool = True,
    validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
    seed: int = 0,
) -> CampaignResult:
    """Search ``network`` across a platform x scenario grid and compare.

    Parameters
    ----------
    network:
        The network to map, shared by every cell (so is its channel ranking:
        it is derived from ``network`` and ``seed`` only, never the board).
    platforms:
        Registry preset names (see :func:`repro.soc.presets.platform_names`)
        and/or ready :class:`~repro.soc.platform.Platform` instances.
    scenarios:
        Search scenarios (reuse caps, constraints, per-scenario budgets);
        ``None`` runs one unconstrained scenario.
    strategy, backend, n_workers, cache:
        Forwarded to every cell's :meth:`MapAndConquer.search`.  ``backend``
        must be a name (``"serial"`` / ``"process"``), not an instance — a
        backend instance is bound to one platform's evaluator, and the
        campaign needs a fresh one per cell.  The cache (object or JSONL
        path) is shared by the whole grid.
    num_stages:
        Stage count used on *every* platform; defaults to the smallest unit
        count in the grid, so every searched mapping is translatable to
        every other platform for the portability matrix.
    traffic, traffic_duration_ms, traffic_metric:
        Optional shared traffic scenario: every cell's front is additionally
        re-ranked under it via :func:`repro.serving.bridge.rank_under_traffic`.
    objective:
        Scalar objective used for the portability regret (default: Eq. 16).
    accuracy_model, reorder_channels, validation_samples:
        Platform-independent evaluator settings applied in every cell (the
        cost model is always the analytical oracle: surrogates are
        calibrated per platform and do not transfer).
    seed:
        Master seed for every cell's search (and the traffic replays).
    """
    from ..core.framework import MapAndConquer  # local import: core imports campaign

    platform_objs = _resolve_platforms(platforms)
    scenario_objs = _resolve_scenarios(scenarios)
    if backend is not None and not isinstance(backend, str):
        raise ConfigurationError(
            "run_campaign needs a backend *name* ('serial' or 'process'); backend "
            "instances are bound to a single platform's evaluator and cannot be shared"
        )
    if backend is not None and backend not in _BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {_BACKEND_NAMES}"
        )
    # Fail on an unusable traffic request now, not after the first cell's
    # whole search has already been spent.
    if isinstance(traffic, ArrivalProcess) and traffic_duration_ms is None:
        raise ConfigurationError(
            "traffic_duration_ms is required when traffic is an ArrivalProcess"
        )
    min_units = min(platform.num_units for platform in platform_objs)
    stages = min_units if num_stages is None else int(num_stages)
    if not 1 <= stages <= min_units:
        raise ConfigurationError(
            f"num_stages must lie in [1, {min_units}] (the smallest platform's unit "
            f"count) for mappings to transfer across the grid, got {stages}"
        )
    if isinstance(cache, EvaluationCache):
        shared_cache = cache
    elif cache is not None:
        shared_cache = EvaluationCache(path=cache)
    else:
        shared_cache = EvaluationCache()

    frameworks: Dict[Tuple[str, str], MapAndConquer] = {}
    cells = []
    for scenario in scenario_objs:
        for platform in platform_objs:
            framework = MapAndConquer(
                network,
                platform,
                num_stages=stages,
                max_reuse_fraction=scenario.max_reuse_fraction,
                accuracy_model=accuracy_model,
                reorder_channels=reorder_channels,
                validation_samples=validation_samples,
                seed=seed,
            )
            result = framework.search(
                generations=(
                    scenario.generations if scenario.generations is not None else generations
                ),
                population_size=(
                    scenario.population_size
                    if scenario.population_size is not None
                    else population_size
                ),
                constraints=scenario.resolve_constraints(),
                seed=seed,
                strategy=strategy,
                backend=backend,
                n_workers=n_workers,
                cache=shared_cache,
            )
            ranking = None
            if traffic is not None:
                ranking = tuple(
                    framework.rank_under_traffic(
                        result.pareto,
                        traffic,
                        duration_ms=traffic_duration_ms,
                        metric=traffic_metric,
                        seed=seed,
                    )
                )
            frameworks[(platform.name, scenario.name)] = framework
            cells.append(
                CampaignCell(
                    platform_name=platform.name,
                    scenario_name=scenario.name,
                    result=result,
                    best_objective=float(objective(result.best)),
                    traffic_ranking=ranking,
                )
            )

    portability = []
    for scenario in scenario_objs:
        for source in platform_objs:
            source_cell = next(
                cell
                for cell in cells
                if cell.platform_name == source.name
                and cell.scenario_name == scenario.name
            )
            for target in platform_objs:
                if target.name == source.name:
                    continue
                target_framework = frameworks[(target.name, scenario.name)]
                target_cell = next(
                    cell
                    for cell in cells
                    if cell.platform_name == target.name
                    and cell.scenario_name == scenario.name
                )
                transferred = [
                    target_framework.evaluate(
                        translate_config(item.config, source, target)
                    )
                    for item in source_cell.front
                ]
                best_cross = min(float(objective(item)) for item in transferred)
                portability.append(
                    PortabilityEntry(
                        source=source.name,
                        target=target.name,
                        scenario=scenario.name,
                        transferred=len(transferred),
                        surviving_on_front=count_surviving_on_front(
                            transferred, target_cell.front
                        ),
                        best_cross_objective=best_cross,
                        native_best_objective=target_cell.best_objective,
                    )
                )

    return CampaignResult(
        network_name=network.name,
        platform_names=tuple(platform.name for platform in platform_objs),
        scenario_names=tuple(scenario.name for scenario in scenario_objs),
        cells=tuple(cells),
        portability=tuple(portability),
        seed=int(seed),
    )
