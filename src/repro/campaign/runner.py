"""Cross-platform search campaigns over the platform zoo.

:func:`run_campaign` fans :meth:`MapAndConquer.search` out over a platform x
scenario grid, reusing the engine's evaluation backends (serial or process
pool) inside every cell and one shared, optionally persistent
:class:`~repro.engine.cache.EvaluationCache` across the whole grid (content
digests include the platform name, so platforms never alias entries).  For
every cell it keeps the full :class:`~repro.search.evolutionary.SearchResult`
— including the per-platform Pareto front — and afterwards computes a
**portability ranking**: every front searched on platform A is translated
into platform B's vocabulary (:mod:`repro.campaign.portability`) and
re-evaluated by B's own pipeline, yielding the regret of deploying A's
mappings on B instead of searching B natively.

Production-grade grid running (beyond the paper):

* **Checkpointing** — pass ``checkpoint_dir=`` and every finished cell is
  persisted (:mod:`repro.campaign.checkpoint`); an interrupted campaign
  restarted with the same directory re-runs only the missing cells and
  produces byte-identical output.
* **Cell-level parallelism** — pass ``cell_workers=N`` and independent cells
  fan out over a process pool, each cell owning its own backend exactly as
  in the sequential path; results are merged deterministically, so the
  summary stays bit-for-bit equal to a sequential run.
* **Transfer-aware warm starts** — pass ``warm_start=True`` and every
  platform after the first seeds its initial population with the translated
  Pareto points of the platforms before it in the list (HADAS-style
  transfer), cutting generations-to-converge instead of only scoring
  portability post hoc.

Optionally, every front is also re-ranked under one shared traffic scenario
via :func:`repro.serving.bridge.rank_under_traffic`, so the campaign reports
both isolated-sample and under-load winners per platform.

Everything is seed-deterministic: the same seed produces byte-identical
:func:`repro.core.report.campaign_summary` output, with serial, process and
cell-parallel paths agreeing bit for bit, interrupted or not.
"""

from __future__ import annotations

import dataclasses
import logging
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..engine.cache import EvaluationCache
from ..engine.surrogate import SurrogateSettings
from ..errors import ConfigurationError
from ..nn.graph import NetworkGraph
from ..search.constraints import SearchConstraints
from ..search.evaluation import EvaluatedConfig
from ..search.evolutionary import SearchResult
from ..search.objectives import MeasuredObjectives, ObjectiveSet, paper_objective
from ..search.space import MappingConfig
from ..serving.result_cache import ServingCacheRecorder, ServingResultCache
from ..serving.workload import ArrivalProcess
from ..soc.platform import Platform
from ..soc.presets import get_platform
from .checkpoint import (
    CampaignCheckpoint,
    CellExpectation,
    CellKey,
    campaign_fingerprint,
)
from .portability import count_surviving_on_front, translate_config, translate_front

__all__ = [
    "CampaignScenario",
    "CampaignCell",
    "CellOutcome",
    "PortabilityEntry",
    "CampaignResult",
    "run_campaign",
    "fan_out_cells",
]

logger = logging.getLogger(__name__)

#: Backend choices run_campaign accepts.  Instances are rejected: a backend
#: is bound to one evaluator spec, and the campaign needs one per platform.
_BACKEND_NAMES = ("serial", "process")


@dataclass(frozen=True)
class CampaignScenario:
    """One search scenario of the campaign grid (a column of the matrix).

    Parameters
    ----------
    name:
        Label used in tables and lookups; must be unique within a campaign.
    max_reuse_fraction:
        Optional feature-reuse cap baked into the search space *and*
        enforced as a hard constraint (the Fig. 6 75 % / 50 % scenarios).
    constraints:
        Optional explicit constraint set; overrides the cap-derived default.
    generations / population_size:
        Optional per-scenario overrides of the campaign-wide budget.
    """

    name: str = "unconstrained"
    max_reuse_fraction: Optional[float] = None
    constraints: Optional[SearchConstraints] = None
    generations: Optional[int] = None
    population_size: Optional[int] = None

    def resolve_constraints(self) -> Optional[SearchConstraints]:
        """The constraint set this scenario applies during search."""
        if self.constraints is not None:
            return self.constraints
        if self.max_reuse_fraction is not None:
            return SearchConstraints(max_reuse_fraction=self.max_reuse_fraction)
        return None


@dataclass(frozen=True)
class CampaignCell:
    """Outcome of one (platform, scenario) search."""

    platform_name: str
    scenario_name: str
    result: SearchResult
    best_objective: float
    traffic_ranking: Optional[tuple] = None

    @property
    def front(self) -> Tuple[EvaluatedConfig, ...]:
        """The cell's Pareto front."""
        return self.result.pareto

    @property
    def surrogate_report(self):
        """The cell's :class:`~repro.engine.surrogate.SurrogateReport`.

        ``None`` for pure-oracle cells (``getattr`` keeps results pickled
        before the field existed readable)."""
        return getattr(self.result, "surrogate", None)

    @property
    def measured_cache_stats(self):
        """The cell's :class:`~repro.serving.result_cache.MeasuredCellStats`.

        Deterministic serving-cache lookup/unique counts of a
        measured-objective cell; ``None`` for proxy cells (``getattr`` keeps
        results pickled before the field existed readable)."""
        return getattr(self.result, "serving_cache_stats", None)


@dataclass(frozen=True)
class PortabilityEntry:
    """How the front searched on ``source`` fares re-evaluated on ``target``.

    ``regret`` is the ratio of the best transferred objective to the target's
    natively searched best (>= 1 means the native search found something at
    least as good; large values mean A's mappings do not travel).
    ``surviving_on_front`` counts transferred configs no native Pareto-front
    member dominates — when it is below ``transferred``, the source front is
    demonstrably not Pareto-optimal on the target.
    """

    source: str
    target: str
    scenario: str
    transferred: int
    surviving_on_front: int
    best_cross_objective: float
    native_best_objective: float

    @property
    def regret(self) -> float:
        """Best transferred objective over the native best (lower is better)."""
        if self.native_best_objective == 0.0:
            return float("inf")
        return self.best_cross_objective / self.native_best_objective

    @property
    def fully_pareto_optimal(self) -> bool:
        """Whether every transferred config survives on the target's front."""
        return self.surviving_on_front == self.transferred


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign produced: the grid plus the portability matrix."""

    network_name: str
    platform_names: Tuple[str, ...]
    scenario_names: Tuple[str, ...]
    cells: Tuple[CampaignCell, ...]
    portability: Tuple[PortabilityEntry, ...]
    seed: int
    _index: Optional[Dict[Tuple[str, str], CampaignCell]] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_index",
            {(cell.platform_name, cell.scenario_name): cell for cell in self.cells},
        )

    def cell(self, platform: str, scenario: Optional[str] = None) -> CampaignCell:
        """The outcome searched on ``platform`` under ``scenario``."""
        scenario = self.scenario_names[0] if scenario is None else scenario
        found = self._index.get((platform, scenario))
        if found is None:
            raise ConfigurationError(
                f"no campaign cell for platform {platform!r} / scenario {scenario!r}; "
                f"have platforms {list(self.platform_names)} and "
                f"scenarios {list(self.scenario_names)}"
            )
        return found

    def front(self, platform: str, scenario: Optional[str] = None):
        """Pareto front searched on ``platform`` under ``scenario``."""
        return self.cell(platform, scenario).front

    def entry(
        self, source: str, target: str, scenario: Optional[str] = None
    ) -> PortabilityEntry:
        """The portability entry for one (source, target) pair."""
        scenario = self.scenario_names[0] if scenario is None else scenario
        for candidate in self.portability:
            if (
                candidate.source == source
                and candidate.target == target
                and candidate.scenario == scenario
            ):
                return candidate
        raise ConfigurationError(
            f"no portability entry {source!r} -> {target!r} under scenario {scenario!r}"
        )

    def portability_matrix(
        self, scenario: Optional[str] = None
    ) -> Dict[Tuple[str, str], float]:
        """``(source, target) -> regret`` for one scenario of the campaign."""
        scenario = self.scenario_names[0] if scenario is None else scenario
        return {
            (entry.source, entry.target): entry.regret
            for entry in self.portability
            if entry.scenario == scenario
        }


def _resolve_platforms(platforms: Sequence[Union[str, Platform]]) -> Tuple[Platform, ...]:
    if not platforms:
        raise ConfigurationError("run_campaign needs at least one platform")
    resolved = tuple(
        item if isinstance(item, Platform) else get_platform(item) for item in platforms
    )
    names = [platform.name for platform in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"campaign platforms must have distinct names, got {names}")
    return resolved


@dataclass(frozen=True)
class CellOutcome:
    """A cell result bundled with the serving-cache entries it simulated.

    Cache-aware cell functions (measured search cells, cached serving
    replays) return this instead of a bare result: ``cache_export`` carries
    the ``(digest, metrics, family)`` tuples the cell's own cache handle
    stored, so the parent process can merge a worker's simulations back into
    the shared :class:`~repro.serving.result_cache.ServingResultCache` after
    fan-out.  :func:`fan_out_cells` unwraps it transparently.
    """

    result: object
    cache_export: Tuple = ()


def fan_out_cells(
    pending: Sequence,
    make_task,
    run_cell,
    finish,
    workers: int,
    serving_cache: Optional[ServingResultCache] = None,
) -> None:
    """Run independent campaign cells serially or over a process pool.

    The shared fan-out discipline of the serving and fleet sweeps: each
    pending key is turned into a picklable task (``make_task``), executed by
    a module-level function (``run_cell`` — so a process pool can dispatch
    it), and handed to ``finish(key, result)`` as it completes.  Cells must
    be mutually independent and ``run_cell`` deterministic from the task
    contents alone; ``finish`` runs in the main process, so checkpoint files
    stay single-writer and completion order never leaks into results.

    ``serving_cache`` wires the shared serving-result cache through: the
    serial path hands the live handle to ``run_cell(task, serving_cache)``
    so cells reuse each other's simulations in-process, while pool workers
    build their own handles (from the task's cache path, or fresh in-memory)
    and ship their new entries back inside a :class:`CellOutcome`, which is
    absorbed into ``serving_cache`` here before ``finish`` runs.
    """

    def _absorb_and_finish(key, value) -> None:
        if isinstance(value, CellOutcome):
            if serving_cache is not None and value.cache_export:
                serving_cache.absorb(value.cache_export)
            value = value.result
        finish(key, value)

    if workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = {executor.submit(run_cell, make_task(key)): key for key in pending}
            for future in as_completed(futures):
                _absorb_and_finish(futures[future], future.result())
    else:
        for key in pending:
            if serving_cache is not None:
                _absorb_and_finish(key, run_cell(make_task(key), serving_cache))
            else:
                _absorb_and_finish(key, run_cell(make_task(key)))


def _resolve_scenarios(
    scenarios: Optional[Sequence[CampaignScenario]],
) -> Tuple[CampaignScenario, ...]:
    if scenarios is None:
        return (CampaignScenario(),)
    resolved = tuple(scenarios)
    if not resolved:
        raise ConfigurationError("pass None for the default scenario, not an empty list")
    names = [scenario.name for scenario in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"campaign scenarios must have distinct names, got {names}")
    return resolved


@dataclass(frozen=True)
class _CellTask:
    """Picklable description of one cell's search, runnable in any process.

    Everything a worker needs to rebuild the cell's framework bit-for-bit:
    the same arguments the sequential path hands to
    :class:`~repro.core.framework.MapAndConquer`, plus the warm-start seed
    population already translated into this platform's vocabulary.
    """

    network: NetworkGraph
    platform: Platform
    scenario: CampaignScenario
    stages: int
    generations: int
    population_size: int
    strategy: str
    backend: Optional[str]
    n_workers: Optional[int]
    accuracy_model: Optional[AccuracyModel]
    reorder_channels: bool
    validation_samples: int
    seed: int
    warm_seeds: Tuple[MappingConfig, ...] = ()
    surrogate: Optional[SurrogateSettings] = None
    objectives: Optional[ObjectiveSet] = None
    measured: Optional[MeasuredObjectives] = None
    serving_cache_path: Optional[str] = None


def _build_cell_framework(task: _CellTask):
    """The cell's framework; deterministic, so main and worker builds agree."""
    from ..core.framework import MapAndConquer  # local import: core imports campaign

    return MapAndConquer(
        task.network,
        task.platform,
        num_stages=task.stages,
        max_reuse_fraction=task.scenario.max_reuse_fraction,
        accuracy_model=task.accuracy_model,
        reorder_channels=task.reorder_channels,
        validation_samples=task.validation_samples,
        seed=task.seed,
    )


def _cell_measured_objectives(
    task: _CellTask, serving_cache: Optional[ServingResultCache] = None
) -> Tuple[Optional[ObjectiveSet], Optional[ServingCacheRecorder]]:
    """Bind the cell's measured-objective factory, if any, to its platform.

    Returns the objective set the cell's search should optimise and the
    per-cell :class:`~repro.serving.result_cache.ServingCacheRecorder` whose
    lookup/unique counts become the cell's deterministic cache statistics.
    Without a factory the task's plain ``objectives`` pass through untouched.
    ``serving_cache`` is the live shared handle (serial path); workers leave
    it ``None`` and a handle is built from the task's cache path instead
    (fresh in-memory when the shared cache is not persistent).
    """
    if task.measured is None:
        return task.objectives, None
    if serving_cache is None:
        serving_cache = ServingResultCache(path=task.serving_cache_path)
    recorder = ServingCacheRecorder(serving_cache)
    bound = task.measured.bind(task.platform, seed=task.seed, cache=recorder)
    return bound, recorder


def _run_cell(
    task: _CellTask,
    cache: Optional[EvaluationCache] = None,
    framework=None,
    serving_cache: Optional[ServingResultCache] = None,
) -> SearchResult:
    """Run one cell's search.  Top-level so a process pool can dispatch it.

    Workers call it with neither ``cache`` nor ``framework``: each rebuilds
    the framework from the task and evaluates against a private cache, which
    changes nothing observable — the evaluation pipeline is deterministic —
    and keeps the shared JSONL cache single-writer.
    """
    if framework is None:
        framework = _build_cell_framework(task)
    objectives, recorder = _cell_measured_objectives(task, serving_cache)
    result = framework.search(
        generations=task.generations,
        population_size=task.population_size,
        constraints=task.scenario.resolve_constraints(),
        seed=task.seed,
        strategy=task.strategy,
        backend=task.backend,
        n_workers=task.n_workers,
        cache=cache,
        initial_population=list(task.warm_seeds) if task.warm_seeds else None,
        surrogate=task.surrogate,
        objectives=objectives,
    )
    if recorder is not None:
        # Attach the cell's deterministic lookup/unique counts: they are a
        # pure function of the seeded search trajectory, so serial,
        # cell-parallel and checkpoint-restored results agree byte for byte.
        result = dataclasses.replace(
            result, serving_cache_stats=recorder.cell_stats()
        )
    return result


def _run_cell_offloaded(task: _CellTask) -> CellOutcome:
    """Worker entry point for measured cells: search + cache export.

    The worker builds its own serving-cache handle (appending to the shared
    JSONL when one is configured, fresh in-memory otherwise) and ships the
    entries it simulated back to the parent, which absorbs them into the
    shared cache so later waves and the serving replays can reuse them.
    """
    handle = ServingResultCache(path=task.serving_cache_path)
    result = _run_cell(task, serving_cache=handle)
    return CellOutcome(result=result, cache_export=handle.export_session())


def run_campaign(
    network: NetworkGraph,
    platforms: Sequence[Union[str, Platform]],
    scenarios: Optional[Sequence[CampaignScenario]] = None,
    strategy: str = "evolutionary",
    backend: Optional[str] = None,
    n_workers: Optional[int] = None,
    cache: Union[EvaluationCache, str, Path, None] = None,
    generations: int = 10,
    population_size: int = 16,
    num_stages: Optional[int] = None,
    traffic: Optional[ArrivalProcess] = None,
    traffic_duration_ms: Optional[float] = None,
    traffic_metric: str = "p99_latency_ms",
    objective=paper_objective,
    accuracy_model: Optional[AccuracyModel] = None,
    reorder_channels: bool = True,
    validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
    seed: int = 0,
    checkpoint_dir: Union[str, Path, None] = None,
    cell_workers: Optional[int] = None,
    warm_start: bool = False,
    surrogate: Optional[SurrogateSettings] = None,
    objectives: Optional[ObjectiveSet] = None,
    measured_objectives: Optional[MeasuredObjectives] = None,
    serving_cache: Union[ServingResultCache, str, Path, None] = None,
) -> CampaignResult:
    """Search ``network`` across a platform x scenario grid and compare.

    Parameters
    ----------
    network:
        The network to map, shared by every cell (so is its channel ranking:
        it is derived from ``network`` and ``seed`` only, never the board).
    platforms:
        Registry preset names (see :func:`repro.soc.presets.platform_names`)
        and/or ready :class:`~repro.soc.platform.Platform` instances.
    scenarios:
        Search scenarios (reuse caps, constraints, per-scenario budgets);
        ``None`` runs one unconstrained scenario.
    strategy, backend, n_workers, cache:
        Forwarded to every cell's :meth:`MapAndConquer.search`.  ``backend``
        must be a name (``"serial"`` / ``"process"``), not an instance — a
        backend instance is bound to one platform's evaluator, and the
        campaign needs a fresh one per cell.  The cache (object or JSONL
        path) is shared by the whole grid.
    num_stages:
        Stage count used on *every* platform; defaults to the smallest unit
        count in the grid, so every searched mapping is translatable to
        every other platform for the portability matrix.
    traffic, traffic_duration_ms, traffic_metric:
        Optional shared traffic scenario: every cell's front is additionally
        re-ranked under it via :func:`repro.serving.bridge.rank_under_traffic`.
    objective:
        Scalar objective used for the portability regret (default: Eq. 16).
    accuracy_model, reorder_channels, validation_samples:
        Platform-independent evaluator settings applied in every cell (the
        cost model is always the analytical oracle: surrogates are
        calibrated per platform and do not transfer).
    seed:
        Master seed for every cell's search (and the traffic replays).
    checkpoint_dir:
        Optional directory for cell checkpoints.  Finished cells are
        persisted there and skipped on restart; resuming an interrupted
        campaign yields output byte-identical to an uninterrupted run.  A
        checkpoint written under a different seed or campaign configuration
        raises :class:`~repro.errors.ConfigurationError` rather than mixing.
    cell_workers:
        Fan independent cells over a pool of this many worker processes
        (``None``/1 keeps the sequential path).  Each cell still owns its
        backend; combine with ``backend="process"``/``n_workers`` for nested
        parallelism on big machines, but mind total process count.  Results
        are bit-for-bit identical to the sequential path.
    warm_start:
        Seed each platform's initial population with the translated Pareto
        points of the platforms *before it in the list* (same scenario),
        capped at half the population so exploration survives.  The first
        platform always runs cold.  Cells then run in platform-order waves
        so donors finish first — identically under ``cell_workers``.
    surrogate:
        ``None`` (default) evaluates every candidate through the real
        oracle, byte-for-byte as before.  A
        :class:`~repro.engine.surrogate.SurrogateSettings` instance runs
        every cell surrogate-assisted (per-platform GBDT models, periodic
        oracle re-validation; see :meth:`MapAndConquer.search`).  Cache
        harvesting is disabled per cell regardless of the settings — the
        shared cache's content depends on cell scheduling, and training on
        it would break the serial == cell-parallel byte guarantee.  Each
        cell's :class:`~repro.engine.surrogate.SurrogateReport` is exposed
        as :attr:`CampaignCell.surrogate_report` and summarised by
        :func:`repro.core.report.surrogate_summary`.  Checkpoints record
        the surrogate settings: resuming with different settings re-runs
        exactly the affected cells (like stale serving families), never
        mixing fronts searched under different acceleration.
    objectives:
        Optional :class:`~repro.search.objectives.ObjectiveSet` every cell's
        search optimises (e.g. :func:`~repro.search.objectives.serving_objectives`
        to fold the M/D/1 expected wait into NSGA-II).  ``None`` keeps the
        default latency/energy/accuracy axes, byte-for-byte.  Unlike the
        scalar ``objective``, the set *shapes* each cell's Pareto front, so
        checkpoints record its fingerprint: resuming with a different set
        re-runs exactly the affected cells, counted in
        :attr:`~repro.campaign.checkpoint.CheckpointStats.refreshed`.
    measured_objectives:
        Optional :class:`~repro.search.objectives.MeasuredObjectives`
        factory: every cell then searches under
        :func:`~repro.search.objectives.measured_serving_objectives` bound
        to *its own* platform (and the campaign seed) at fan-out time, with
        the shared ``serving_cache`` deduplicating replays grid-wide.
        Mutually exclusive with ``objectives`` (a ready set binds a single
        platform).  Each cell's checkpoint records the *bound* set's
        fingerprint, so changing the family, seed, member count or replay
        duration re-runs exactly the affected cells
        (:attr:`~repro.campaign.checkpoint.CheckpointStats.refreshed`);
        checkpoints written before measuring restore unchanged when the
        factory is absent.  Each cell's deterministic cache statistics are
        exposed as :attr:`CampaignCell.measured_cache_stats` and summarised
        by :func:`repro.core.report.campaign_summary`.
    serving_cache:
        The grid-wide :class:`~repro.serving.result_cache.ServingResultCache`
        (instance or JSONL path) behind ``measured_objectives``; defaults to
        a fresh in-memory cache when measuring.  Serial cells share the live
        handle; pool workers append through their own handles and their new
        entries are merged back after each wave, so replays the search
        already measured are never simulated twice — including by the
        serving-campaign replays running on top of this grid.
    """
    platform_objs = _resolve_platforms(platforms)
    scenario_objs = _resolve_scenarios(scenarios)
    if backend is not None and not isinstance(backend, str):
        raise ConfigurationError(
            "run_campaign needs a backend *name* ('serial' or 'process'); backend "
            "instances are bound to a single platform's evaluator and cannot be shared"
        )
    if backend is not None and backend not in _BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {_BACKEND_NAMES}"
        )
    if cell_workers is not None and int(cell_workers) < 1:
        raise ConfigurationError(f"cell_workers must be >= 1, got {cell_workers}")
    # Fail on an unusable traffic request now, not after the first cell's
    # whole search has already been spent.
    if isinstance(traffic, ArrivalProcess) and traffic_duration_ms is None:
        raise ConfigurationError(
            "traffic_duration_ms is required when traffic is an ArrivalProcess"
        )
    min_units = min(platform.num_units for platform in platform_objs)
    stages = min_units if num_stages is None else int(num_stages)
    if not 1 <= stages <= min_units:
        raise ConfigurationError(
            f"num_stages must lie in [1, {min_units}] (the smallest platform's unit "
            f"count) for mappings to transfer across the grid, got {stages}"
        )
    if isinstance(cache, EvaluationCache):
        shared_cache = cache
    elif cache is not None:
        shared_cache = EvaluationCache(path=cache)
    else:
        shared_cache = EvaluationCache()
    workers = 1 if cell_workers is None else int(cell_workers)
    platform_by_name = {platform.name: platform for platform in platform_objs}
    scenario_by_name = {scenario.name: scenario for scenario in scenario_objs}
    if surrogate is not None and not isinstance(surrogate, SurrogateSettings):
        raise ConfigurationError(
            f"surrogate must be a SurrogateSettings or None, got "
            f"{type(surrogate).__name__}"
        )
    # Cells never harvest the ambient shared cache: its content depends on
    # which cells ran before (and in-process vs worker), which would break
    # the serial == cell-parallel byte guarantee.  Training rows come only
    # from each cell's own seeded bootstrap and validations.
    cell_surrogate = (
        None
        if surrogate is None
        else dataclasses.replace(surrogate, bootstrap_from_cache=False)
    )
    surrogate_tag = (
        "" if cell_surrogate is None else campaign_fingerprint(surrogate=cell_surrogate)
    )
    if objectives is not None and not isinstance(objectives, ObjectiveSet):
        raise ConfigurationError(
            f"objectives must be an ObjectiveSet or None, got {type(objectives).__name__}"
        )
    # The default set is tagged "" (not its fingerprint) so checkpoints
    # written before the objective layer existed stay restorable.
    objectives_tag = "" if objectives is None else objectives.fingerprint()
    if measured_objectives is not None and not isinstance(
        measured_objectives, MeasuredObjectives
    ):
        raise ConfigurationError(
            f"measured_objectives must be a MeasuredObjectives factory or None, "
            f"got {type(measured_objectives).__name__}"
        )
    if measured_objectives is not None and objectives is not None:
        raise ConfigurationError(
            "pass either objectives or measured_objectives, not both: a ready "
            "ObjectiveSet binds a single platform, while the factory binds each "
            "cell's platform at fan-out time"
        )
    if isinstance(serving_cache, ServingResultCache):
        shared_serving = serving_cache
    elif serving_cache is not None:
        shared_serving = ServingResultCache(path=serving_cache)
    elif measured_objectives is not None:
        shared_serving = ServingResultCache()
    else:
        shared_serving = None
    # Per-platform tags of the *bound* measured sets: the extractor's repr
    # covers platform, workload member, traffic seed and duration, so any
    # cache-relevant change re-runs exactly the affected cells on resume.
    measured_tags: Dict[str, str] = {}
    if measured_objectives is not None:
        for platform in platform_objs:
            measured_tags[platform.name] = measured_objectives.bind(
                platform, seed=int(seed)
            ).fingerprint()

    def cell_budget(scenario: CampaignScenario) -> Tuple[int, int]:
        gens = scenario.generations if scenario.generations is not None else generations
        pop = (
            scenario.population_size
            if scenario.population_size is not None
            else population_size
        )
        return gens, pop

    # What this run demands of every cell — used both to validate restored
    # checkpoints and to label freshly finished ones.
    expectations: Dict[CellKey, CellExpectation] = {}
    for scenario in scenario_objs:
        for index, platform in enumerate(platform_objs):
            gens, pop = cell_budget(scenario)
            donors = tuple(p.name for p in platform_objs[:index]) if warm_start else ()
            # Network and platform enter by *content* (their full reprs), not
            # by name: a same-named network or board with different
            # calibration must invalidate the cell, not silently restore the
            # old one.  The scalar objective is deliberately absent — it is
            # applied post hoc in the main process and never shapes a cell's
            # search result, so changing it keeps checkpoints valid.  The
            # ObjectiveSet is different: it shapes the front, so it rides in
            # the expectation's refreshable objectives tag (below), like the
            # surrogate settings.
            fingerprint = campaign_fingerprint(
                network=network,
                platform=platform,
                num_stages=stages,
                strategy=strategy,
                generations=gens,
                population_size=pop,
                scenario=(scenario.name, scenario.max_reuse_fraction, scenario.constraints),
                accuracy_model=accuracy_model,
                reorder_channels=reorder_channels,
                validation_samples=validation_samples,
                warm_start=bool(warm_start),
            )
            expectations[(platform.name, scenario.name)] = CellExpectation(
                fingerprint=fingerprint,
                donors=donors,
                surrogate=surrogate_tag,
                objectives=measured_tags.get(platform.name, objectives_tag),
            )

    checkpoint: Optional[CampaignCheckpoint] = None
    completed: Dict[CellKey, SearchResult] = {}
    if checkpoint_dir is not None:
        checkpoint = CampaignCheckpoint(checkpoint_dir, seed=int(seed))
        completed = checkpoint.load(expectations)
        if completed:
            logger.info(
                "campaign resume: %d of %d cells restored from %s",
                len(completed),
                len(expectations),
                checkpoint.path,
            )
    offloaded = set(completed)  # cells whose evaluations bypassed shared_cache

    def make_task(key: CellKey, with_seeds: bool = True) -> _CellTask:
        platform_name, scenario_name = key
        platform = platform_by_name[platform_name]
        scenario = scenario_by_name[scenario_name]
        gens, pop = cell_budget(scenario)
        warm_seeds: Tuple[MappingConfig, ...] = ()
        if warm_start and with_seeds:
            collected: List[MappingConfig] = []
            for donor_name in expectations[key].donors:
                donor_result = completed.get((donor_name, scenario_name))
                if donor_result is None:  # pragma: no cover - wave order forbids this
                    raise RuntimeError(
                        f"warm-start donor {donor_name!r} not finished before {key}"
                    )
                collected.extend(
                    translate_front(
                        donor_result.pareto, platform_by_name[donor_name], platform
                    )
                )
            # Half the population stays randomly sampled so the warm start
            # biases the search without collapsing its exploration.
            warm_seeds = tuple(collected[: pop // 2])
        return _CellTask(
            network=network,
            platform=platform,
            scenario=scenario,
            stages=stages,
            generations=gens,
            population_size=pop,
            strategy=strategy,
            backend=backend,
            n_workers=n_workers,
            accuracy_model=accuracy_model,
            reorder_channels=reorder_channels,
            validation_samples=validation_samples,
            seed=int(seed),
            warm_seeds=warm_seeds,
            surrogate=cell_surrogate,
            objectives=objectives,
            measured=measured_objectives,
            serving_cache_path=(
                None
                if shared_serving is None or shared_serving.path is None
                else str(shared_serving.path)
            ),
        )

    def finish_cell(key: CellKey, result: SearchResult) -> None:
        completed[key] = result
        if checkpoint is not None:
            checkpoint.store(key, expectations[key], result)

    # Warm starts order the grid into platform-index waves (donors first);
    # without them every cell is independent and forms one wave.  Cells
    # inside a wave are mutually independent, so the wave is the unit of
    # fan-out — and the deterministic merge makes execution order invisible.
    if warm_start:
        waves: List[List[CellKey]] = [
            [(platform.name, scenario.name) for scenario in scenario_objs]
            for platform in platform_objs
        ]
    else:
        waves = [
            [
                (platform.name, scenario.name)
                for scenario in scenario_objs
                for platform in platform_objs
            ]
        ]

    executor: Optional[ProcessPoolExecutor] = None
    frameworks = {}
    try:
        for wave in waves:
            pending = [key for key in wave if key not in completed]
            if not pending:
                continue
            tasks = {key: make_task(key) for key in pending}
            if workers > 1 and len(pending) > 1:
                if executor is None:
                    executor = ProcessPoolExecutor(max_workers=workers)
                # Measured cells return a CellOutcome so the worker's fresh
                # simulations merge back into the shared serving cache —
                # later waves then reuse them exactly like the serial path.
                run = _run_cell if measured_objectives is None else _run_cell_offloaded
                futures = {executor.submit(run, tasks[key]): key for key in pending}
                for future in as_completed(futures):
                    key = futures[future]
                    outcome = future.result()
                    if isinstance(outcome, CellOutcome):
                        if shared_serving is not None and outcome.cache_export:
                            shared_serving.absorb(outcome.cache_export)
                        outcome = outcome.result
                    finish_cell(key, outcome)
                    offloaded.add(key)
            else:
                for key in pending:
                    framework = _build_cell_framework(tasks[key])
                    frameworks[key] = framework
                    # The serving kwarg only appears when a shared cache
                    # exists, so non-measured campaigns keep calling
                    # _run_cell with its historical signature.
                    extra = (
                        {} if shared_serving is None
                        else {"serving_cache": shared_serving}
                    )
                    finish_cell(
                        key,
                        _run_cell(tasks[key], shared_cache, framework, **extra),
                    )
    finally:
        if executor is not None:
            executor.shutdown()

    # Main-process frameworks for the cells searched elsewhere (restored or
    # worker-run): portability re-evaluation, traffic re-ranks, and digests
    # for merging offloaded histories into the shared cache.  Seeds are not
    # recomputed — the framework construction never reads them.
    for scenario in scenario_objs:
        for platform in platform_objs:
            key = (platform.name, scenario.name)
            if key not in frameworks:
                frameworks[key] = _build_cell_framework(make_task(key, with_seeds=False))

    # Restored and worker-run cells never touched shared_cache; merge their
    # histories so the grid-wide (and persistent) cache stays complete.
    for scenario in scenario_objs:
        for platform in platform_objs:
            key = (platform.name, scenario.name)
            if key not in offloaded:
                continue
            evaluator = frameworks[key].evaluator
            shared_cache.store_many(
                (evaluator.content_digest(item.config), item)
                for item in completed[key].history
            )

    cells = []
    for scenario in scenario_objs:
        for platform in platform_objs:
            key = (platform.name, scenario.name)
            result = completed[key]
            ranking = None
            if traffic is not None:
                ranking = tuple(
                    frameworks[key].rank_under_traffic(
                        result.pareto,
                        traffic,
                        duration_ms=traffic_duration_ms,
                        metric=traffic_metric,
                        seed=seed,
                    )
                )
            cells.append(
                CampaignCell(
                    platform_name=platform.name,
                    scenario_name=scenario.name,
                    result=result,
                    best_objective=float(objective(result.best)),
                    traffic_ranking=ranking,
                )
            )

    portability = []
    for scenario in scenario_objs:
        for source in platform_objs:
            source_cell = next(
                cell
                for cell in cells
                if cell.platform_name == source.name
                and cell.scenario_name == scenario.name
            )
            for target in platform_objs:
                if target.name == source.name:
                    continue
                target_framework = frameworks[(target.name, scenario.name)]
                target_cell = next(
                    cell
                    for cell in cells
                    if cell.platform_name == target.name
                    and cell.scenario_name == scenario.name
                )
                transferred = [
                    target_framework.evaluate(
                        translate_config(item.config, source, target)
                    )
                    for item in source_cell.front
                ]
                best_cross = min(float(objective(item)) for item in transferred)
                portability.append(
                    PortabilityEntry(
                        source=source.name,
                        target=target.name,
                        scenario=scenario.name,
                        transferred=len(transferred),
                        surviving_on_front=count_surviving_on_front(
                            transferred, target_cell.front
                        ),
                        best_cross_objective=best_cross,
                        native_best_objective=target_cell.best_objective,
                    )
                )

    return CampaignResult(
        network_name=network.name,
        platform_names=tuple(platform.name for platform in platform_objs),
        scenario_names=tuple(scenario.name for scenario in scenario_objs),
        cells=tuple(cells),
        portability=tuple(portability),
        seed=int(seed),
    )
