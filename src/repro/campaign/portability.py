"""Cross-platform mapping transfer: translate and re-score searched configs.

A :class:`~repro.search.space.MappingConfig` is written against one
platform's vocabulary — its stage-to-unit names and per-unit DVFS table
indices.  To ask *"how good is the mapping searched on platform A when
deployed on platform B?"* the config must first be translated into B's
vocabulary:

* each stage's unit is re-bound by name when B has a unit of that name,
  otherwise to an unused B unit of the same architectural kind, otherwise to
  any unused B unit (platform order keeps this deterministic);
* each stage's DVFS index is re-bound by *scaling factor*, not by raw index:
  the target unit runs at the operating point whose ``theta`` is nearest to
  the one the source search chose (ties prefer the faster point, via
  :meth:`~repro.soc.dvfs.DvfsTable.nearest_index`);
* the partition and indicator matrices transfer unchanged — they describe
  the network, not the board.

The translated config is then evaluated by B's own evaluator, which yields
the portability entries of :class:`~repro.campaign.runner.CampaignResult`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple

from ..errors import MappingError
from ..search.evaluation import EvaluatedConfig
from ..search.pareto import dominates
from ..search.space import MappingConfig
from ..soc.platform import Platform

__all__ = ["translate_config", "translate_front", "count_surviving_on_front"]


def _assign_units(
    stage_units: Sequence[str], source: Platform, target: Platform
) -> Tuple[str, ...]:
    """Deterministically re-bind each stage's source unit to a target unit."""
    if len(stage_units) > target.num_units:
        raise MappingError(
            f"cannot translate a {len(stage_units)}-stage mapping onto platform "
            f"{target.name!r} with only {target.num_units} compute units"
        )
    available = list(target.unit_names)
    assigned: List[str] = [""] * len(stage_units)
    # Pass 1: exact name matches keep their unit (gpu -> gpu, dla0 -> dla0).
    for stage, name in enumerate(stage_units):
        if name in available:
            assigned[stage] = name
            available.remove(name)
    # Pass 2: same architectural kind, in target platform order.
    for stage, name in enumerate(stage_units):
        if assigned[stage]:
            continue
        kind = source.unit(name).kind
        for candidate in available:
            if target.unit(candidate).kind == kind:
                assigned[stage] = candidate
                available.remove(candidate)
                break
    # Pass 3: whatever is left, in target platform order.
    for stage in range(len(stage_units)):
        if not assigned[stage]:
            assigned[stage] = available.pop(0)
    return tuple(assigned)


def translate_config(
    config: MappingConfig, source: Platform, target: Platform
) -> MappingConfig:
    """Rewrite ``config`` (searched on ``source``) in ``target``'s vocabulary."""
    unit_names = _assign_units(config.unit_names, source, target)
    dvfs_indices = []
    for stage, (source_name, target_name) in enumerate(zip(config.unit_names, unit_names)):
        scale = source.unit(source_name).dvfs.scale(config.dvfs_indices[stage])
        dvfs_indices.append(target.unit(target_name).dvfs.nearest_index(scale))
    return replace(config, unit_names=unit_names, dvfs_indices=tuple(dvfs_indices))


def translate_front(
    front: Sequence[EvaluatedConfig], source: Platform, target: Platform
) -> Tuple[MappingConfig, ...]:
    """Translate a whole Pareto front into ``target``'s vocabulary.

    The returned configurations are ready to seed ``target``'s search as a
    warm-start initial population (HADAS-style transfer: a front found on a
    related platform is a strong prior, not just a post-hoc portability
    score).  Order follows the front, so truncating keeps the best-ranked
    transfers.
    """
    return tuple(translate_config(item.config, source, target) for item in front)


def count_surviving_on_front(
    transferred: Sequence[EvaluatedConfig], native_front: Sequence[EvaluatedConfig]
) -> int:
    """How many transferred configs no native Pareto-front member dominates.

    A transferred mapping that survives is competitive with the target
    platform's own search; one that is dominated demonstrates the target
    needed a platform-specific mapping.
    """
    return sum(
        1
        for candidate in transferred
        if not any(dominates(native, candidate) for native in native_front)
    )
