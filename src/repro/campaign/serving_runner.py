"""Serving campaigns: rank platforms by how they serve traffic families.

:func:`repro.campaign.runner.run_campaign` answers "which mapping is
Pareto-optimal on which platform?" from isolated per-sample averages, and
its optional traffic re-rank replays at most *one* shared scenario.  This
module asks the deployment question instead: **which platform should serve
this traffic?**  :func:`run_serving_campaign`

1. searches every platform exactly like ``run_campaign`` (one scenario,
   shared cache, checkpointing, cell parallelism, warm starts all apply),
2. expands every :class:`~repro.serving.families.WorkloadFamily` into ``n``
   seeded member scenarios (:meth:`~repro.serving.families.WorkloadFamily.expand`),
3. deploys each platform's Pareto front under every member via
   :func:`repro.serving.bridge.rank_under_traffic` (the front member best on
   the ranking metric wins that member), and
4. aggregates each ``(platform, family)`` cell into a
   :class:`ServingCellResult` — p50/p95/p99 under load, deadline-miss rate,
   joules per request and the headline **served-p99-per-joule** score —
   forming a traffic-portability matrix over platforms x families.

served-p99-per-joule
--------------------
Per family member, the winning deployment serves
``1000 / energy_per_request_mj`` requests per joule at a tail latency of
``p99_latency_ms``; its score is requests-per-joule *discounted by that
tail*::

    score = (1000 / energy_per_request_mj) / p99_latency_ms

A platform only scores highly when it is simultaneously energy-frugal and
tail-tight under contention — an energy-optimal board whose queues blow up
under bursts loses exactly where it should.  The cell score is the geometric
mean over the family's members (scores are ratio-scaled, so the geometric
mean keeps one pathological member from drowning the rest linearly).

the policy axis
---------------
``policies=("static", "switcher", "dvfs-governor")`` additionally replays
every member's request stream through the adaptive runtime policies, built
deterministically over the member's best static winner and the deployed
front (:func:`repro.serving.policies.build_policy`).  Each cell then carries
one :class:`PolicyOutcome` per (member, policy), and
:meth:`ServingCampaignResult.adaptivity_wins` answers the deployment
question the static sweep cannot: *when does runtime adaptivity beat the
best static point?*  The static baseline is the ranked winner itself, so a
governor win is against the strongest static choice for that exact traffic.

Like the search campaign, everything is seed-deterministic: member
parameters and traffic seeds derive from ``(seed, family name, index)``
only, so serial, cell-parallel and checkpoint-resumed sweeps render a
byte-identical :func:`repro.core.report.traffic_ranking_summary`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..engine.cache import EvaluationCache
from ..engine.surrogate import SurrogateSettings
from ..errors import ConfigurationError
from ..nn.graph import NetworkGraph
from ..search.evaluation import EvaluatedConfig
from ..search.objectives import MeasuredObjectives, ObjectiveSet
from ..serving.bridge import (
    measured_serving_metrics,
    rank_under_traffic,
    simulate_deployment,
)
from ..serving.families import WorkloadFamily, member_traffic_seed, resolve_families
from ..serving.metrics import ServingMetrics, compute_metrics, metric_direction
from ..serving.policies import POLICY_KINDS, Deployment, build_policy
from ..serving.result_cache import ServingResultCache, deployment_digest
from ..soc.platform import Platform
from ..utils import check_positive, geometric_mean
from .checkpoint import (
    CampaignCheckpoint,
    CellExpectation,
    ServingCellKey,
    campaign_fingerprint,
)
from .runner import (
    CampaignResult,
    CampaignScenario,
    CellOutcome,
    _resolve_platforms,
    fan_out_cells,
    run_campaign,
)

__all__ = [
    "MemberOutcome",
    "PolicyOutcome",
    "ServingCellResult",
    "ServingCampaignResult",
    "run_serving_campaign",
    "served_p99_per_joule",
]

logger = logging.getLogger(__name__)


def served_p99_per_joule(metrics: ServingMetrics) -> float:
    """Requests-per-joule discounted by the p99 tail, 0.0 when degenerate.

    The single definition of the headline score *and* of its degenerate
    case: a replay that completed nothing
    (:attr:`~repro.serving.metrics.ServingMetrics.completed` ``== 0``), or
    whose energy-per-request / p99 is zero, non-finite or otherwise
    score-breaking, scores ``0.0`` — strictly below every real outcome — so
    saturated cells rank last instead of raising ``ZeroDivisionError`` (or
    tripping :func:`repro.utils.geometric_mean` on a non-positive value)
    and killing the whole campaign.
    """
    if metrics.completed == 0:
        return 0.0
    energy = metrics.energy_per_request_mj
    p99 = metrics.p99_latency_ms
    if not (0.0 < energy < math.inf) or not (0.0 < p99 < math.inf):
        return 0.0
    requests_per_joule = 1000.0 / energy
    return requests_per_joule / p99


def _score_geometric_mean(scores: Sequence[float]) -> float:
    """Geometric mean of member scores; 0.0 as soon as any member is degenerate.

    ``geometric_mean`` rightly rejects non-positive values — but a member
    that shed everything scores exactly 0.0 by convention, and one drowned
    member must sink the whole cell (a platform is only as good as its worst
    family member), so the cell collapses to 0.0 instead of raising.
    """
    values = [float(score) for score in scores]
    if any(value <= 0.0 for value in values):
        return 0.0
    return geometric_mean(values)


@dataclass(frozen=True)
class MemberOutcome:
    """One family member replayed against one platform's front.

    ``winner`` is the deployment (front member) that ranked best on the
    campaign's serving metric under this member's traffic; ``metrics`` are
    that winner's aggregates for the replay.
    """

    label: str
    traffic_seed: int
    winner: str
    metrics: ServingMetrics

    @property
    def joules_per_request(self) -> float:
        """Energy per served request, in joules."""
        return self.metrics.energy_per_request_mj / 1000.0

    @property
    def served_p99_per_joule(self) -> float:
        """Requests-per-joule discounted by the p99 tail (see module docs)."""
        return served_p99_per_joule(self.metrics)


@dataclass(frozen=True)
class PolicyOutcome:
    """One runtime policy replaying one family member on one platform.

    ``policy`` is the campaign policy kind (``"static"``, ``"switcher"``,
    ``"dvfs-governor"``); ``deployment`` names the concrete policy instance
    that served (e.g. which front member the static baseline used).  The
    static outcome is byte-identical to the member's
    :class:`MemberOutcome` — it is the baseline every adaptivity comparison
    is made against.
    """

    policy: str
    label: str
    deployment: str
    metrics: ServingMetrics

    @property
    def served_p99_per_joule(self) -> float:
        """Requests-per-joule discounted by the p99 tail (see module docs)."""
        return served_p99_per_joule(self.metrics)


@dataclass(frozen=True)
class ServingCellResult:
    """How one platform served one workload family (all members aggregated).

    ``policy_outcomes`` is empty for default (static-only) campaigns and
    carries one :class:`PolicyOutcome` per ``(member, policy)`` pair when the
    campaign swept a policy axis; cells restored from pre-policy checkpoints
    simply lack the attribute, which readers treat as empty.
    """

    platform_name: str
    family_name: str
    members: Tuple[MemberOutcome, ...]
    policy_outcomes: Tuple[PolicyOutcome, ...] = ()

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("a serving cell needs at least one member outcome")

    @property
    def policies(self) -> Tuple[str, ...]:
        """Policy kinds this cell replayed, in campaign order."""
        seen: List[str] = []
        for outcome in getattr(self, "policy_outcomes", ()):
            if outcome.policy not in seen:
                seen.append(outcome.policy)
        return tuple(seen)

    def _policy_outcomes(self, policy: str) -> List[PolicyOutcome]:
        outcomes = [
            outcome
            for outcome in getattr(self, "policy_outcomes", ())
            if outcome.policy == policy
        ]
        if not outcomes:
            raise ConfigurationError(
                f"cell ({self.platform_name!r}, {self.family_name!r}) replayed "
                f"no {policy!r} policy; have {list(self.policies)}"
            )
        return outcomes

    def policy_score(self, policy: str) -> float:
        """Geometric-mean served-p99-per-joule of one policy across members.

        0.0 when any member replay was degenerate (shed everything)."""
        return _score_geometric_mean(
            [outcome.served_p99_per_joule for outcome in self._policy_outcomes(policy)]
        )

    def policy_mean(self, policy: str, metric: str) -> float:
        """Mean of one :class:`~repro.serving.metrics.ServingMetrics` field
        across the members one policy replayed."""
        outcomes = self._policy_outcomes(policy)
        return sum(float(getattr(o.metrics, metric)) for o in outcomes) / len(outcomes)

    def _mean(self, metric: str) -> float:
        values = [float(getattr(outcome.metrics, metric)) for outcome in self.members]
        return sum(values) / len(values)

    @property
    def p50_latency_ms(self) -> float:
        """Mean of the member winners' p50 latencies."""
        return self._mean("p50_latency_ms")

    @property
    def p95_latency_ms(self) -> float:
        """Mean of the member winners' p95 latencies."""
        return self._mean("p95_latency_ms")

    @property
    def p99_latency_ms(self) -> float:
        """Mean of the member winners' p99 latencies."""
        return self._mean("p99_latency_ms")

    @property
    def deadline_miss_rate(self) -> float:
        """Mean of the member winners' deadline-miss rates."""
        return self._mean("deadline_miss_rate")

    @property
    def joules_per_request(self) -> float:
        """Mean energy per served request across members, in joules."""
        return sum(outcome.joules_per_request for outcome in self.members) / len(
            self.members
        )

    @property
    def served_p99_per_joule(self) -> float:
        """Geometric mean of the members' served-p99-per-joule scores.

        0.0 when any member replay was degenerate, so a platform that sheds a
        whole member ranks strictly below every platform that served."""
        return _score_geometric_mean(
            [outcome.served_p99_per_joule for outcome in self.members]
        )

    def summary_row(self) -> dict:
        """Flat dictionary for :func:`repro.core.report.format_table`."""
        return {
            "family": self.family_name,
            "platform": self.platform_name,
            "members": len(self.members),
            "p50_ms": self.p50_latency_ms,
            "p95_ms": self.p95_latency_ms,
            "p99_ms": self.p99_latency_ms,
            "miss_%": 100.0 * self.deadline_miss_rate,
            "mJ/req": 1000.0 * self.joules_per_request,
            "served_p99/J": f"{self.served_p99_per_joule:.4f}",
        }


@dataclass(frozen=True)
class ServingCampaignResult:
    """Everything one serving campaign produced.

    ``campaign`` is the underlying search campaign (fronts, portability
    matrix); ``cells`` hold one :class:`ServingCellResult` per
    ``(platform, family)`` pair in family-major order.
    """

    campaign: CampaignResult
    platform_names: Tuple[str, ...]
    family_names: Tuple[str, ...]
    cells: Tuple[ServingCellResult, ...]
    members_per_family: int
    duration_ms: float
    metric: str
    seed: int
    policies: Tuple[str, ...] = ("static",)
    _index: Optional[Dict[ServingCellKey, ServingCellResult]] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_index",
            {(cell.platform_name, cell.family_name): cell for cell in self.cells},
        )

    @property
    def network_name(self) -> str:
        """The mapped network's name."""
        return self.campaign.network_name

    def cell(self, platform: str, family: str) -> ServingCellResult:
        """The serving outcome of ``platform`` under ``family``."""
        found = self._index.get((platform, family))
        if found is None:
            raise ConfigurationError(
                f"no serving cell for platform {platform!r} / family {family!r}; "
                f"have platforms {list(self.platform_names)} and "
                f"families {list(self.family_names)}"
            )
        return found

    def ranking(self, family: str) -> List[ServingCellResult]:
        """Platform cells for ``family``, best served-p99-per-joule first.

        Ties (vanishingly unlikely with real numbers, but systematic for
        degenerate cells, which all score exactly 0.0 and therefore rank
        strictly last) break on the platform name so the ordering stays
        deterministic.
        """
        cells = [cell for cell in self.cells if cell.family_name == family]
        if not cells:
            raise ConfigurationError(
                f"no serving cells for family {family!r}; "
                f"have families {list(self.family_names)}"
            )
        return sorted(
            cells, key=lambda cell: (-cell.served_p99_per_joule, cell.platform_name)
        )

    def best_platform(self, family: str) -> str:
        """The platform serving ``family`` at the best served-p99-per-joule."""
        return self.ranking(family)[0].platform_name

    def traffic_matrix(self) -> Dict[ServingCellKey, float]:
        """``(platform, family) -> served-p99-per-joule`` for every cell."""
        return {
            (cell.platform_name, cell.family_name): cell.served_p99_per_joule
            for cell in self.cells
        }

    def policy_matrix(self) -> Dict[Tuple[str, str, str], float]:
        """``(platform, family, policy) -> served-p99-per-joule`` per cell.

        Empty for static-only campaigns (no policy axis was swept).
        """
        matrix: Dict[Tuple[str, str, str], float] = {}
        for cell in self.cells:
            for policy in cell.policies:
                matrix[(cell.platform_name, cell.family_name, policy)] = (
                    cell.policy_score(policy)
                )
        return matrix

    def adaptivity_wins(self, policy: str = "dvfs-governor") -> List[ServingCellKey]:
        """Cells where ``policy`` beats the best static point on
        served-p99-per-joule, as ``(platform, family)`` keys in cell order.

        The static baseline per member is the front member that won
        ``rank_under_traffic`` — the best static choice for that exact
        traffic — so a win here means runtime adaptivity beat the best
        static point, not a strawman.
        """
        wins: List[ServingCellKey] = []
        for cell in self.cells:
            kinds = cell.policies
            if policy not in kinds or "static" not in kinds:
                continue
            if cell.policy_score(policy) > cell.policy_score("static"):
                wins.append((cell.platform_name, cell.family_name))
        return wins

    def isolated_energy_best(self) -> str:
        """The platform whose searched front holds the lowest-energy mapping.

        This is the winner the *isolated* per-sample view would deploy on;
        comparing it against :meth:`best_platform` per family is the
        campaign's headline (the serving winner is frequently a different
        board once queueing enters the picture).
        """
        scenario = self.campaign.scenario_names[0]
        best_name = None
        best_energy = float("inf")
        for platform in self.platform_names:
            front = self.campaign.front(platform, scenario)
            energy = min(item.energy_mj for item in front)
            if energy < best_energy:
                best_energy = energy
                best_name = platform
        return best_name


@dataclass(frozen=True)
class _ServingCellTask:
    """Picklable description of one serving cell, runnable in any process.

    ``cached_replays`` routes the member replays through a
    :class:`~repro.serving.result_cache.ServingResultCache` so deployments
    the measured search already simulated are not re-simulated;
    ``serving_cache_path`` points workers at the campaign's shared JSONL
    (``None`` keeps worker caches in-memory; their new entries merge back via
    :class:`~repro.campaign.runner.CellOutcome`).  Both default off, so
    tasks pickled before the fields existed behave identically.
    """

    platform: Platform
    family: WorkloadFamily
    front: Tuple[EvaluatedConfig, ...]
    members: int
    duration_ms: float
    metric: str
    deadline_ms: Optional[float]
    seed: int
    policies: Tuple[str, ...] = ("static",)
    cached_replays: bool = False
    serving_cache_path: Optional[str] = None


def _policy_front_tag(kind: str, deployed: Sequence[Deployment]) -> str:
    """Cache tag identifying a policy kind *and* the front it switches over.

    Adaptive policies serve from the whole deployed front, but the serving
    digest keys on the anchor deployment alone — so the tag must carry the
    front's content, or two campaigns deploying different fronts behind the
    same winner would collide in the shared cache.
    """
    blob = repr(tuple(deployment_digest(item) for item in deployed)).encode("utf-8")
    return f"{kind}:{hashlib.sha256(blob).hexdigest()[:12]}"


def _rank_front_cached(
    task: _ServingCellTask,
    process,
    traffic_seed: int,
    cache,
) -> List[Tuple[Deployment, ServingMetrics]]:
    """Rank the deployed front under one member via the serving cache.

    Mirrors :func:`~repro.serving.bridge.rank_under_traffic` exactly — same
    ``pareto-{position}`` deployment names, same metric extraction, same
    stable best-first sort — but each candidate goes through
    :func:`~repro.serving.bridge.measured_serving_metrics`, so replays of
    deployments the measured search (or an earlier run sharing the JSONL)
    already simulated cost a cache lookup instead of a simulation.  A cache
    hit may carry the *storer's* policy label, so the label is normalised to
    the fresh-simulation spelling; everything else in the metrics is already
    byte-identical because arrivals and simulator seeding are pure functions
    of ``(workload, duration, seed)``.
    """
    reverse = metric_direction(task.metric) == "desc"
    entries = []
    for position, candidate in enumerate(task.front):
        deployment = (
            candidate
            if isinstance(candidate, Deployment)
            else Deployment.from_evaluated(candidate, name=f"pareto-{position}")
        )
        metrics = measured_serving_metrics(
            deployment,
            task.platform,
            process,
            task.duration_ms,
            seed=traffic_seed,
            deadline_ms=task.deadline_ms,
            cache=cache,
            family_name=task.family.name,
        )
        expected_policy = f"static({deployment.name})"
        if metrics.policy != expected_policy:
            metrics = dataclasses.replace(metrics, policy=expected_policy)
        entries.append((deployment, metrics))
    entries.sort(
        key=lambda entry: float(getattr(entry[1], task.metric)), reverse=reverse
    )
    return entries


def _run_serving_cell(
    task: _ServingCellTask,
    serving_cache: Optional[ServingResultCache] = None,
) -> Union[ServingCellResult, CellOutcome]:
    """Replay one family against one platform's front (worker-safe).

    Member scenarios and traffic seeds derive from the task contents alone,
    so the same task yields bit-identical outcomes in any process.  Each
    member is first ranked under static deployment (picking the best static
    front member for its traffic); every additional policy kind then replays
    the *same* request stream through a policy built deterministically from
    that winner and the deployed front (:func:`~repro.serving.policies.build_policy`),
    so per-member policy comparisons share identical arrivals and difficulty
    draws.

    When the task asks for cached replays, every simulation goes through a
    :class:`~repro.serving.result_cache.ServingResultCache`: the caller's
    handle when given (serial sweeps), else a worker-local handle appending
    to the shared JSONL (or purely in-memory), whose new entries ship back
    inside a :class:`~repro.campaign.runner.CellOutcome` for the parent to
    absorb.  Cached and uncached replays produce byte-identical cells.
    """
    local: Optional[ServingResultCache] = None
    cache = serving_cache
    if cache is None and getattr(task, "cached_replays", False):
        local = ServingResultCache(path=getattr(task, "serving_cache_path", None))
        cache = local
    outcomes = []
    policy_outcomes = []
    processes = task.family.expand(task.seed, task.members)
    labels = task.family.member_labels(task.members)
    policy_kinds = tuple(getattr(task, "policies", ("static",)))
    for index, process in enumerate(processes):
        traffic_seed = member_traffic_seed(task.seed, task.family.name, index)
        if cache is None:
            rankings = rank_under_traffic(
                list(task.front),
                task.platform,
                process,
                duration_ms=task.duration_ms,
                metric=task.metric,
                seed=traffic_seed,
                deadline_ms=task.deadline_ms,
            )
            ranked = [(ranking.deployment, ranking.metrics) for ranking in rankings]
        else:
            ranked = _rank_front_cached(task, process, traffic_seed, cache)
        winner_deployment, winner_metrics = ranked[0]
        outcomes.append(
            MemberOutcome(
                label=labels[index],
                traffic_seed=traffic_seed,
                winner=winner_deployment.name,
                metrics=winner_metrics,
            )
        )
        if policy_kinds == ("static",):
            continue
        deployed = tuple(deployment for deployment, _ in ranked)
        for kind in policy_kinds:
            if kind == "static":
                # The ranked winner *is* the static policy's replay — reuse
                # its metrics byte-for-byte instead of re-simulating.
                policy_outcomes.append(
                    PolicyOutcome(
                        policy=kind,
                        label=labels[index],
                        deployment=winner_deployment.name,
                        metrics=winner_metrics,
                    )
                )
                continue
            policy = build_policy(
                kind, winner_deployment, task.platform, front=deployed
            )
            if cache is None:
                result = simulate_deployment(
                    None,
                    task.platform,
                    process,
                    duration_ms=task.duration_ms,
                    policy=policy,
                    seed=traffic_seed,
                    deadline_ms=task.deadline_ms,
                )
                metrics = compute_metrics(result)
            else:
                metrics = measured_serving_metrics(
                    winner_deployment,
                    task.platform,
                    process,
                    task.duration_ms,
                    seed=traffic_seed,
                    deadline_ms=task.deadline_ms,
                    cache=cache,
                    family_name=task.family.name,
                    policy=policy,
                    policy_tag=_policy_front_tag(kind, deployed),
                )
                if metrics.policy != policy.name:
                    metrics = dataclasses.replace(metrics, policy=policy.name)
            policy_outcomes.append(
                PolicyOutcome(
                    policy=kind,
                    label=labels[index],
                    deployment=policy.name,
                    metrics=metrics,
                )
            )
    result = ServingCellResult(
        platform_name=task.platform.name,
        family_name=task.family.name,
        members=tuple(outcomes),
        policy_outcomes=tuple(policy_outcomes),
    )
    if local is not None:
        return CellOutcome(result=result, cache_export=local.export_session())
    return result


def _front_fingerprint(front: Sequence[EvaluatedConfig]) -> tuple:
    """Content summary of a Pareto front for the serving-cell fingerprint."""
    return tuple(
        (item.config.describe(), item.latency_ms, item.energy_mj, item.accuracy)
        for item in front
    )


def run_serving_campaign(
    network: NetworkGraph,
    platforms: Sequence[Union[str, Platform]],
    families: Optional[Sequence[Union[str, WorkloadFamily]]] = None,
    members_per_family: int = 3,
    duration_ms: float = 1500.0,
    metric: str = "p99_latency_ms",
    deadline_ms: Optional[float] = None,
    scenario: Optional[CampaignScenario] = None,
    strategy: str = "evolutionary",
    backend: Optional[str] = None,
    n_workers: Optional[int] = None,
    cache: Union[EvaluationCache, str, Path, None] = None,
    generations: int = 10,
    population_size: int = 16,
    num_stages: Optional[int] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    reorder_channels: bool = True,
    validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
    seed: int = 0,
    checkpoint_dir: Union[str, Path, None] = None,
    cell_workers: Optional[int] = None,
    warm_start: bool = False,
    surrogate: Optional[SurrogateSettings] = None,
    objectives: Optional[ObjectiveSet] = None,
    policies: Sequence[str] = ("static",),
    measured_objectives: Optional[MeasuredObjectives] = None,
    serving_cache: Union[ServingResultCache, str, Path, None] = None,
) -> ServingCampaignResult:
    """Search every platform, then sweep workload families over the fronts.

    Parameters
    ----------
    network, platforms:
        As in :func:`repro.campaign.runner.run_campaign`.
    families:
        Workload families to sweep: registry names (see
        :func:`repro.serving.families.family_names`) and/or ready
        :class:`~repro.serving.families.WorkloadFamily` instances; ``None``
        sweeps :func:`~repro.serving.families.default_families`.
    members_per_family:
        How many seeded member scenarios each family expands into.
    duration_ms:
        Replay window per member scenario.
    metric:
        Serving metric the front is ranked on per member (validated against
        :func:`repro.serving.metrics.metric_direction` before any work).
    deadline_ms:
        Default relative deadline applied during replays (drives the
        deadline-miss aggregate); families whose processes carry their own
        deadlines override it per request.
    scenario:
        Optional search scenario for the underlying campaign (reuse caps,
        budget overrides); ``None`` searches unconstrained.
    strategy, backend, n_workers, cache, generations, population_size,
    num_stages, accuracy_model, reorder_channels, validation_samples, seed,
    checkpoint_dir, cell_workers, warm_start, surrogate, objectives:
        Forwarded to :func:`~repro.campaign.runner.run_campaign` for the
        search phase.  ``objectives`` (e.g.
        :func:`~repro.search.objectives.serving_objectives`) makes every
        search serving-aware; it enters both the search cells' checkpoint
        tags and the serving-cell fingerprints, so changing the set re-runs
        exactly the affected cells.  ``surrogate`` accelerates the per-platform searches;
        replays always deploy the oracle-validated fronts, and the serving
        fingerprint covers the deployed front, so a surrogate-shaped front
        refreshes exactly the affected serving cells.  ``checkpoint_dir``
        additionally persists every
        finished *serving* cell (record kind ``serving``) in the same JSONL
        file, so an interrupted sweep resumes where it stopped; a serving
        cell whose family definition, replay budget or deployed front
        changed is re-run instead of restored.  ``cell_workers`` fans
        independent serving cells over the same-size process pool used for
        search cells; results merge deterministically.
    policies:
        Runtime policy kinds each cell deploys its front under (see
        :data:`repro.serving.policies.POLICY_KINDS`).  The default
        ``("static",)`` reproduces the historical behaviour byte-for-byte —
        including checkpoint fingerprints, so existing checkpoints stay
        restorable.  Adding ``"switcher"`` and/or ``"dvfs-governor"`` replays
        every member's request stream through those policies too (built over
        the member's best static winner and the deployed front), records one
        :class:`PolicyOutcome` per (member, policy), and tags the serving
        fingerprint with the policy set — changing it re-runs exactly the
        affected cells, counted in
        :attr:`~repro.campaign.checkpoint.CheckpointStats.refreshed`.
        ``"static"`` must always be present: it is the baseline the
        adaptivity comparison is made against.
    measured_objectives:
        Optional :class:`~repro.search.objectives.MeasuredObjectives` factory
        (mutually exclusive with ``objectives``): every search cell binds it
        to its own platform at fan-out time, so each platform searches under
        *measured* serving objectives — and the serving replays afterwards
        reuse the very simulations the search already paid for, through the
        shared ``serving_cache``.  Each cell's checkpoint tag carries the
        bound per-platform descriptor, and so do the serving-cell
        fingerprints, so changing the family, seed or replay duration re-runs
        exactly the affected cells (counted in
        :attr:`~repro.campaign.checkpoint.CheckpointStats.refreshed`).
    serving_cache:
        The campaign-wide :class:`~repro.serving.result_cache.ServingResultCache`
        (instance or JSONL path) shared by the measured searches *and* the
        serving replays; defaults to a fresh in-memory cache when
        ``measured_objectives`` is given.  Passing a path persists every
        simulated replay, so re-runs and resumes skip simulations across
        process boundaries.  Cached and uncached replays produce
        byte-identical cells — the cache only removes duplicate simulator
        invocations, it never changes results.
    """
    platform_objs = _resolve_platforms(platforms)
    family_objs = resolve_families(families)
    if int(members_per_family) < 1:
        raise ConfigurationError(
            f"members_per_family must be >= 1, got {members_per_family}"
        )
    members = int(members_per_family)
    check_positive(duration_ms, "duration_ms")
    # Validate the ranking metric before any search work is spent.
    metric_direction(metric)
    policy_kinds = tuple(policies)
    if not policy_kinds:
        raise ConfigurationError(
            "policies must name at least one policy kind; the default is ('static',)"
        )
    unknown = [kind for kind in policy_kinds if kind not in POLICY_KINDS]
    if unknown:
        raise ConfigurationError(
            f"unknown policy kinds {unknown}; expected a subset of {list(POLICY_KINDS)}"
        )
    if len(set(policy_kinds)) != len(policy_kinds):
        raise ConfigurationError(f"policy kinds must be unique, got {list(policy_kinds)}")
    if "static" not in policy_kinds:
        raise ConfigurationError(
            "policies must include 'static': it is the baseline the adaptivity "
            "comparison is made against"
        )

    # One shared serving-result handle spans the whole campaign: the measured
    # searches fill it (via run_campaign) and the serving replays below drain
    # it, so a deployment the search already simulated under a family member
    # is never re-simulated by that member's replay.
    shared_serving: Optional[ServingResultCache] = None
    if isinstance(serving_cache, ServingResultCache):
        shared_serving = serving_cache
    elif serving_cache is not None:
        shared_serving = ServingResultCache(path=serving_cache)
    elif measured_objectives is not None:
        shared_serving = ServingResultCache()

    campaign = run_campaign(
        network,
        platform_objs,
        scenarios=None if scenario is None else [scenario],
        strategy=strategy,
        backend=backend,
        n_workers=n_workers,
        cache=cache,
        generations=generations,
        population_size=population_size,
        num_stages=num_stages,
        accuracy_model=accuracy_model,
        reorder_channels=reorder_channels,
        validation_samples=validation_samples,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        cell_workers=cell_workers,
        warm_start=warm_start,
        surrogate=surrogate,
        objectives=objectives,
        measured_objectives=measured_objectives,
        serving_cache=shared_serving,
    )
    scenario_name = campaign.scenario_names[0]
    fronts = {
        platform.name: campaign.front(platform.name, scenario_name)
        for platform in platform_objs
    }
    # The objectives tag per platform: measured sets bind to their platform,
    # so each cell's fingerprint carries its *own* bound descriptor (family,
    # duration, traffic seed, platform) — a changed recipe re-runs exactly
    # the affected cells.  Proxy sets keep the shared campaign-wide tag.
    if measured_objectives is not None:
        objectives_descriptors = {
            platform.name: measured_objectives.bind(platform, seed=int(seed)).describe()
            for platform in platform_objs
        }
    else:
        objectives_descriptor = "" if objectives is None else objectives.describe()
        objectives_descriptors = {
            platform.name: objectives_descriptor for platform in platform_objs
        }

    # The serving-cell fingerprint covers everything that shapes the cell:
    # the platform and family *contents*, the replay budget, and the exact
    # front being deployed — so a re-searched front or an edited family
    # refreshes precisely the affected cells.
    front_fingerprints = {
        platform.name: _front_fingerprint(fronts[platform.name])
        for platform in platform_objs
    }
    expectations: Dict[ServingCellKey, CellExpectation] = {}
    for family in family_objs:
        for platform in platform_objs:
            fingerprint_fields = dict(
                network=network.name,
                platform=platform,
                family=family,
                members=members,
                duration_ms=float(duration_ms),
                metric=metric,
                deadline_ms=deadline_ms,
                front=front_fingerprints[platform.name],
                objectives=objectives_descriptors[platform.name],
            )
            # The policy tag is default-tagged: a static-only campaign adds
            # no field at all, so its fingerprints are byte-identical to
            # pre-policy checkpoints and those stay restorable.  Any other
            # policy set changes the digest, and a changed set re-runs
            # exactly the affected cells (counted in CheckpointStats.refreshed).
            if policy_kinds != ("static",):
                fingerprint_fields["policies"] = policy_kinds
            fingerprint = campaign_fingerprint(**fingerprint_fields)
            expectations[(platform.name, family.name)] = CellExpectation(
                fingerprint=fingerprint
            )

    checkpoint: Optional[CampaignCheckpoint] = None
    completed: Dict[ServingCellKey, ServingCellResult] = {}
    if checkpoint_dir is not None:
        checkpoint = CampaignCheckpoint(checkpoint_dir, seed=int(seed))
        completed = checkpoint.load_serving(expectations)
        if completed:
            logger.info(
                "serving campaign resume: %d of %d cells restored from %s",
                len(completed),
                len(expectations),
                checkpoint.path,
            )

    family_by_name = {family.name: family for family in family_objs}
    platform_by_name = {platform.name: platform for platform in platform_objs}

    def make_task(key: ServingCellKey) -> _ServingCellTask:
        platform_name, family_name = key
        return _ServingCellTask(
            platform=platform_by_name[platform_name],
            family=family_by_name[family_name],
            front=tuple(fronts[platform_name]),
            members=members,
            duration_ms=float(duration_ms),
            metric=metric,
            deadline_ms=deadline_ms,
            seed=int(seed),
            policies=policy_kinds,
            cached_replays=shared_serving is not None,
            serving_cache_path=(
                None
                if shared_serving is None or shared_serving.path is None
                else str(shared_serving.path)
            ),
        )

    def finish_cell(key: ServingCellKey, result: ServingCellResult) -> None:
        completed[key] = result
        if checkpoint is not None:
            checkpoint.store_serving(key, expectations[key], result)

    pending = [key for key in expectations if key not in completed]
    workers = 1 if cell_workers is None else int(cell_workers)
    fan_out_cells(
        pending,
        make_task,
        _run_serving_cell,
        finish_cell,
        workers,
        serving_cache=shared_serving,
    )

    cells = tuple(
        completed[(platform.name, family.name)]
        for family in family_objs
        for platform in platform_objs
    )
    return ServingCampaignResult(
        campaign=campaign,
        platform_names=tuple(platform.name for platform in platform_objs),
        family_names=tuple(family.name for family in family_objs),
        cells=cells,
        members_per_family=members,
        duration_ms=float(duration_ms),
        metric=metric,
        seed=int(seed),
        policies=policy_kinds,
    )
