"""Persistent campaign checkpoints: restart a grid where it stopped.

A campaign is embarrassingly resumable — every ``(platform, scenario)`` cell
is an independent seeded search — so :class:`CampaignCheckpoint` persists
each finished cell as one JSON line (next to the evaluation cache's JSONL,
same append-only discipline) and :func:`repro.campaign.runner.run_campaign`
skips restored cells on restart.  Restored results are pickle round-trips of
the originals, so a resumed campaign renders a
:func:`repro.core.report.campaign_summary` byte-identical to an
uninterrupted run.

Safety model
------------
Every line carries the campaign ``seed`` and a per-cell *fingerprint* of
everything else that shapes that cell's search (network and platform
contents — not just their names — stage count, strategy, resolved budget,
scenario constraints, evaluator settings, warm-start mode).  On load:

* a **seed or fingerprint mismatch raises**
  :class:`~repro.errors.ConfigurationError` — silently mixing results from a
  different seed or budget would poison the whole grid;
* a cell for a **platform/scenario no longer in the grid** is ignored
  (stale), and cells *added* to the grid simply are not in the file, so a
  grown grid re-runs exactly the new cells;
* a cell whose **warm-start donor chain changed** (platforms inserted before
  it) is dropped and re-run — its seed population would differ;
* a **malformed line** (truncated by a mid-write crash, foreign writer) is
  skipped and logged, never fatal.

.. warning::
   The payload is a pickle, exactly like the evaluation cache's: only load
   checkpoint files you wrote yourself or obtained from a trusted source.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from ..errors import ConfigurationError
from ..search.evolutionary import SearchResult

__all__ = [
    "CampaignCheckpoint",
    "CellExpectation",
    "CheckpointStats",
    "campaign_fingerprint",
]

logger = logging.getLogger(__name__)

#: Format marker written into every persisted line; bump on layout changes.
_CHECKPOINT_VERSION = 1

#: A cell's identity within one campaign grid.
CellKey = Tuple[str, str]


def campaign_fingerprint(**fields: object) -> str:
    """Stable short digest of the settings that determine a cell's result.

    Values are rendered with ``repr`` through a canonical JSON encoding, so
    any change to the search budget, scenario constraints or evaluator
    settings yields a different fingerprint and checkpointed cells written
    under the old settings refuse to mix with the new run.
    """
    canonical = json.dumps(
        {name: repr(value) for name, value in fields.items()}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CellExpectation:
    """What the current run demands of a checkpointed cell to accept it."""

    fingerprint: str
    donors: Tuple[str, ...] = ()


@dataclass
class CheckpointStats:
    """What one :meth:`CampaignCheckpoint.load` pass found."""

    restored: int = 0
    stale: int = 0
    donor_mismatch: int = 0
    malformed: int = 0


class CampaignCheckpoint:
    """Append-only JSONL store of completed campaign cells.

    Parameters
    ----------
    directory:
        Directory holding the checkpoint file (created on first store).
    seed:
        The campaign's master seed; lines written under any other seed make
        :meth:`load` raise instead of silently mixing results.
    """

    FILENAME = "campaign_cells.jsonl"

    def __init__(self, directory: Union[str, Path], seed: int) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.seed = int(seed)
        self.stats = CheckpointStats()

    # -- restore -----------------------------------------------------------------
    def load(
        self, expected: Mapping[CellKey, CellExpectation]
    ) -> Dict[CellKey, SearchResult]:
        """Restore every completed cell of the current grid.

        ``expected`` maps each ``(platform, scenario)`` key of the *current*
        grid to the fingerprint and warm-start donor chain the run would use
        for it; keys not in the mapping are stale cells from an older grid
        and are ignored.
        """
        restored: Dict[CellKey, SearchResult] = {}
        self.stats = CheckpointStats()
        if not self.path.exists():
            return restored
        with self.path.open("r", encoding="utf-8") as stream:
            for line in stream:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if record.get("version") != _CHECKPOINT_VERSION:
                        self.stats.malformed += 1
                        continue
                    seed = int(record["seed"])
                    fingerprint = str(record["fingerprint"])
                    key = (str(record["platform"]), str(record["scenario"]))
                    donors = tuple(str(name) for name in record["donors"])
                except (KeyError, TypeError, ValueError):
                    self.stats.malformed += 1
                    continue
                if seed != self.seed:
                    raise ConfigurationError(
                        f"checkpoint {self.path} holds cell {key} written under seed "
                        f"{seed}, but this campaign runs under seed {self.seed}; "
                        f"refusing to mix seeds — use a fresh checkpoint_dir or "
                        f"re-run with the original seed"
                    )
                expectation = expected.get(key)
                if expectation is None:
                    self.stats.stale += 1
                    continue
                if fingerprint != expectation.fingerprint:
                    raise ConfigurationError(
                        f"checkpoint {self.path} holds cell {key} written under a "
                        f"different campaign configuration (fingerprint {fingerprint} "
                        f"vs {expectation.fingerprint}): the search budget, scenario "
                        f"constraints, stage count or evaluator settings changed; "
                        f"use a fresh checkpoint_dir"
                    )
                if donors != expectation.donors:
                    self.stats.donor_mismatch += 1
                    continue
                try:
                    result = pickle.loads(base64.b64decode(record["payload"]))
                    if not isinstance(result, SearchResult):
                        self.stats.malformed += 1
                        continue
                except Exception:  # noqa: BLE001 - truncated payloads are survivable
                    self.stats.malformed += 1
                    continue
                restored[key] = result
        self.stats.restored = len(restored)
        if self.stats.malformed:
            logger.warning(
                "campaign checkpoint %s: restored %d cells, skipped %d malformed "
                "lines (expected after an interrupted write)",
                self.path,
                self.stats.restored,
                self.stats.malformed,
            )
        if self.stats.donor_mismatch:
            logger.info(
                "campaign checkpoint %s: re-running %d cells whose warm-start "
                "donor chain changed with the grid",
                self.path,
                self.stats.donor_mismatch,
            )
        return restored

    # -- persist -----------------------------------------------------------------
    def store(
        self,
        key: CellKey,
        expectation: CellExpectation,
        result: SearchResult,
    ) -> None:
        """Append one finished cell; flushed immediately so a later crash
        costs at most the line being written."""
        platform_name, scenario_name = key
        record = {
            "version": _CHECKPOINT_VERSION,
            "seed": self.seed,
            "fingerprint": expectation.fingerprint,
            "platform": platform_name,
            "scenario": scenario_name,
            "donors": list(expectation.donors),
            "metrics": {
                "evaluations": result.num_evaluations,
                "front": len(result.pareto),
                "best_latency_ms": result.best.latency_ms,
                "best_energy_mj": result.best.energy_mj,
            },
            "payload": base64.b64encode(pickle.dumps(result)).decode("ascii"),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(record) + "\n")
            stream.flush()
