"""Persistent campaign checkpoints: restart a grid where it stopped.

A campaign is embarrassingly resumable — every ``(platform, scenario)`` cell
is an independent seeded search — so :class:`CampaignCheckpoint` persists
each finished cell as one JSON line (next to the evaluation cache's JSONL,
same append-only discipline) and :func:`repro.campaign.runner.run_campaign`
skips restored cells on restart.  Restored results are pickle round-trips of
the originals, so a resumed campaign renders a
:func:`repro.core.report.campaign_summary` byte-identical to an
uninterrupted run.

The file holds three record *kinds* side by side (older files, written
before the field existed, are read as ``search``):

* ``search`` — one ``(platform, scenario)`` search cell carrying a
  :class:`~repro.search.evolutionary.SearchResult`
  (:meth:`CampaignCheckpoint.store` / :meth:`CampaignCheckpoint.load`);
* ``serving`` — one ``(platform, family)`` serving cell of a
  :func:`repro.campaign.serving_runner.run_serving_campaign`, carrying a
  :class:`~repro.campaign.serving_runner.ServingCellResult`
  (:meth:`CampaignCheckpoint.store_serving` /
  :meth:`CampaignCheckpoint.load_serving`);
* ``fleet`` — one ``(mix, family)`` fleet cell of a
  :func:`repro.campaign.fleet_runner.run_fleet_campaign`, carrying a
  :class:`~repro.campaign.fleet_runner.FleetCellResult`
  (:meth:`CampaignCheckpoint.store_fleet` /
  :meth:`CampaignCheckpoint.load_fleet`).  Fleet cells follow the serving
  refresh discipline: a fingerprint mismatch (edited mix, re-searched
  fronts, changed replay budget) drops the cell for re-running.

Safety model
------------
Every line carries the campaign ``seed`` and a per-cell *fingerprint* of
everything else that shapes that cell's result (network and platform
contents — not just their names — stage count, strategy, resolved budget,
scenario constraints, evaluator settings, warm-start mode; for serving
cells: the family definition, the replay budget and the Pareto front it
deploys).  On load:

* a **seed mismatch raises** :class:`~repro.errors.ConfigurationError` —
  silently mixing results from a different seed would poison the whole grid;
* a **search-cell fingerprint mismatch raises** too — the search budget or
  evaluator settings changed, and re-using any part of the old grid would
  mix incompatible searches;
* a **serving-cell fingerprint mismatch is dropped and re-run** instead: a
  family definition is *expected* to be tweaked between runs, and the right
  response to a stale family (or a front re-searched under new settings) is
  recomputing exactly the affected cells, never refusing the whole resume;
* a cell for a **platform/scenario/family no longer in the grid** is ignored
  (stale), and cells *added* to the grid simply are not in the file, so a
  grown grid re-runs exactly the new cells;
* a cell whose **warm-start donor chain changed** (platforms inserted before
  it) is dropped and re-run — its seed population would differ;
* a **malformed line** (truncated by a mid-write crash, foreign writer) is
  skipped and logged, never fatal.

.. warning::
   The payload is a pickle, exactly like the evaluation cache's: only load
   checkpoint files you wrote yourself or obtained from a trusted source.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from ..errors import ConfigurationError
from ..search.evolutionary import SearchResult

__all__ = [
    "CampaignCheckpoint",
    "CellExpectation",
    "CheckpointStats",
    "campaign_fingerprint",
]  # CellKey/ServingCellKey/FleetCellKey are type aliases, importable directly

logger = logging.getLogger(__name__)

#: Format marker written into every persisted line; bump on layout changes.
_CHECKPOINT_VERSION = 1

#: A search cell's identity within one campaign grid: (platform, scenario).
CellKey = Tuple[str, str]

#: A serving cell's identity within one serving campaign: (platform, family).
ServingCellKey = Tuple[str, str]

#: A fleet cell's identity within one fleet campaign: (mix, family).
FleetCellKey = Tuple[str, str]

#: The two JSON fields forming each kind's cell key, in key order.
_KEY_FIELDS = {
    "search": ("platform", "scenario"),
    "serving": ("platform", "family"),
    "fleet": ("mix", "family"),
}


def campaign_fingerprint(**fields: object) -> str:
    """Stable short digest of the settings that determine a cell's result.

    Values are rendered with ``repr`` through a canonical JSON encoding, so
    any change to the search budget, scenario constraints or evaluator
    settings yields a different fingerprint and checkpointed cells written
    under the old settings refuse to mix with the new run.
    """
    canonical = json.dumps(
        {name: repr(value) for name, value in fields.items()}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CellExpectation:
    """What the current run demands of a checkpointed cell to accept it.

    ``surrogate`` is the fingerprint tag of the cell's surrogate settings
    (``""`` for a pure-oracle cell) and ``objectives`` the tag of the cell's
    :class:`~repro.search.objectives.ObjectiveSet` (``""`` for the default
    latency/energy/accuracy axes, so files written before the objective
    layer existed keep restoring).  A measured campaign
    (``measured_objectives=``) puts each cell's *bound* per-platform
    fingerprint here — platform, workload family, traffic seed, replay
    duration — so changing the measured recipe re-runs exactly the affected
    cells while pre-measured checkpoints restore unchanged.  Both tags are
    deliberately *not* folded into the base fingerprint: a base mismatch
    means incompatible searches and raises, while a surrogate or objectives
    mismatch only means the acceleration or the optimised axes changed — the
    affected cells are silently re-run (counted in
    :attr:`CheckpointStats.refreshed`), exactly like serving cells whose
    family definition changed.
    """

    fingerprint: str
    donors: Tuple[str, ...] = ()
    surrogate: str = ""
    objectives: str = ""


@dataclass
class CheckpointStats:
    """What one :meth:`CampaignCheckpoint.load` / ``load_serving`` pass found."""

    restored: int = 0
    stale: int = 0
    donor_mismatch: int = 0
    malformed: int = 0
    #: Cells dropped for re-running rather than raising: serving cells whose
    #: fingerprint (family definition, replay budget or deployed front) no
    #: longer matches, and search cells whose surrogate settings or
    #: objective set changed.
    refreshed: int = 0


class CampaignCheckpoint:
    """Append-only JSONL store of completed campaign cells.

    Parameters
    ----------
    directory:
        Directory holding the checkpoint file (created on first store).
    seed:
        The campaign's master seed; lines written under any other seed make
        :meth:`load` raise instead of silently mixing results.
    """

    FILENAME = "campaign_cells.jsonl"

    def __init__(self, directory: Union[str, Path], seed: int) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.seed = int(seed)
        self.stats = CheckpointStats()

    # -- restore -----------------------------------------------------------------
    def load(
        self, expected: Mapping[CellKey, CellExpectation]
    ) -> Dict[CellKey, SearchResult]:
        """Restore every completed cell of the current grid.

        ``expected`` maps each ``(platform, scenario)`` key of the *current*
        grid to the fingerprint and warm-start donor chain the run would use
        for it; keys not in the mapping are stale cells from an older grid
        and are ignored.
        """
        restored: Dict[CellKey, SearchResult] = {}
        self.stats = CheckpointStats()
        mismatched = set()
        stale_surrogate = set()
        for record, fingerprint, key in self._iter_records("search"):
            expectation = expected.get(key)
            if expectation is None:
                self.stats.stale += 1
                continue
            if fingerprint != expectation.fingerprint:
                raise ConfigurationError(
                    f"checkpoint {self.path} holds cell {key} written under a "
                    f"different campaign configuration (fingerprint {fingerprint} "
                    f"vs {expectation.fingerprint}): the search budget, scenario "
                    f"constraints, stage count or evaluator settings changed; "
                    f"use a fresh checkpoint_dir"
                )
            try:
                donors = tuple(str(name) for name in record["donors"])
            except (KeyError, TypeError):
                self.stats.malformed += 1
                continue
            if donors != expectation.donors:
                mismatched.add(key)
                continue
            if (
                str(record.get("surrogate", "")) != expectation.surrogate
                or str(record.get("objectives", "")) != expectation.objectives
            ):
                stale_surrogate.add(key)
                continue
            result = self._decode_payload(record, SearchResult)
            if result is not None:
                restored[key] = result
        self.stats.restored = len(restored)
        # A mismatched line may be superseded by a later line for the same
        # cell (the file is append-only); only cells left unrestored re-run.
        self.stats.donor_mismatch = len(mismatched - set(restored))
        self.stats.refreshed = len(stale_surrogate - set(restored))
        if self.stats.malformed:
            logger.warning(
                "campaign checkpoint %s: restored %d cells, skipped %d malformed "
                "lines (expected after an interrupted write)",
                self.path,
                self.stats.restored,
                self.stats.malformed,
            )
        if self.stats.donor_mismatch:
            logger.info(
                "campaign checkpoint %s: re-running %d cells whose warm-start "
                "donor chain changed with the grid",
                self.path,
                self.stats.donor_mismatch,
            )
        if self.stats.refreshed:
            logger.info(
                "campaign checkpoint %s: re-running %d cells whose surrogate "
                "settings or objective set changed",
                self.path,
                self.stats.refreshed,
            )
        return restored

    def load_serving(
        self, expected: Mapping[ServingCellKey, CellExpectation]
    ) -> Dict[ServingCellKey, object]:
        """Restore every completed serving cell of the current sweep.

        ``expected`` maps each ``(platform, family)`` key of the *current*
        sweep to its fingerprint (family definition, replay budget, deployed
        front).  A fingerprint mismatch drops the cell for re-running — a
        stale family definition must never serve stale records — and is
        counted in :attr:`CheckpointStats.refreshed`; unknown keys are
        stale; a wrong seed raises, exactly as for search cells.
        """
        from .serving_runner import ServingCellResult  # local: runner imports us

        return self._load_refreshable(
            "serving",
            expected,
            ServingCellResult,
            "family definition, replay budget or deployed front",
        )

    def load_fleet(
        self, expected: Mapping[FleetCellKey, CellExpectation]
    ) -> Dict[FleetCellKey, object]:
        """Restore every completed fleet cell of the current sweep.

        ``expected`` maps each ``(mix, family)`` key of the *current* sweep
        to its fingerprint (mix definition, family, replay budget and the
        deployed fronts).  Same refresh discipline as serving cells: a
        fingerprint mismatch drops the cell for re-running, unknown keys are
        stale, a wrong seed raises.
        """
        from .fleet_runner import FleetCellResult  # local: runner imports us

        return self._load_refreshable(
            "fleet",
            expected,
            FleetCellResult,
            "mix definition, family, replay budget or deployed fronts",
        )

    def _load_refreshable(
        self,
        kind: str,
        expected: Mapping[Tuple[str, str], CellExpectation],
        expected_type: type,
        refresh_reason: str,
    ) -> Dict[Tuple[str, str], object]:
        """Shared loader of the refresh-on-mismatch kinds (serving, fleet)."""
        restored: Dict[Tuple[str, str], object] = {}
        self.stats = CheckpointStats()
        mismatched = set()
        for record, fingerprint, key in self._iter_records(kind):
            expectation = expected.get(key)
            if expectation is None:
                self.stats.stale += 1
                continue
            if fingerprint != expectation.fingerprint:
                mismatched.add(key)
                continue
            result = self._decode_payload(record, expected_type)
            if result is not None:
                restored[key] = result
        self.stats.restored = len(restored)
        # A stale line may be superseded by a later line written under the
        # current fingerprint; only cells left unrestored actually re-run.
        self.stats.refreshed = len(mismatched - set(restored))
        if self.stats.malformed:
            logger.warning(
                "campaign checkpoint %s: restored %d %s cells, skipped %d "
                "malformed lines (expected after an interrupted write)",
                self.path,
                self.stats.restored,
                kind,
                self.stats.malformed,
            )
        if self.stats.refreshed:
            logger.info(
                "campaign checkpoint %s: re-running %d %s cells whose %s changed",
                self.path,
                self.stats.refreshed,
                kind,
                refresh_reason,
            )
        return restored

    def _iter_records(self, kind: str):
        """Well-formed records of ``kind``: yields (record, fingerprint, key).

        Shared parsing/safety layer of both loaders: blank and malformed
        lines are skipped (and counted), records of other kinds are ignored,
        and a foreign seed raises before any payload is touched.
        """
        first_field, second_field = _KEY_FIELDS[kind]
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as stream:
            for line in stream:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if record.get("version") != _CHECKPOINT_VERSION:
                        self.stats.malformed += 1
                        continue
                    if record.get("kind", "search") != kind:
                        continue
                    seed = int(record["seed"])
                    fingerprint = str(record["fingerprint"])
                    key = (str(record[first_field]), str(record[second_field]))
                except (KeyError, TypeError, ValueError):
                    self.stats.malformed += 1
                    continue
                self._check_seed(seed, key)
                yield record, fingerprint, key

    def _decode_payload(self, record: dict, expected_type: type):
        """The record's unpickled payload, or ``None`` (counted) if broken."""
        try:
            result = pickle.loads(base64.b64decode(record["payload"]))
        except Exception:  # noqa: BLE001 - truncated payloads are survivable
            self.stats.malformed += 1
            return None
        if not isinstance(result, expected_type):
            self.stats.malformed += 1
            return None
        return result

    def _check_seed(self, seed: int, key: Tuple[str, str]) -> None:
        if seed != self.seed:
            raise ConfigurationError(
                f"checkpoint {self.path} holds cell {key} written under seed "
                f"{seed}, but this campaign runs under seed {self.seed}; "
                f"refusing to mix seeds — use a fresh checkpoint_dir or "
                f"re-run with the original seed"
            )

    # -- persist -----------------------------------------------------------------
    def store(
        self,
        key: CellKey,
        expectation: CellExpectation,
        result: SearchResult,
    ) -> None:
        """Append one finished search cell; flushed immediately so a later
        crash costs at most the line being written."""
        platform_name, scenario_name = key
        self._append(
            {
                "version": _CHECKPOINT_VERSION,
                "kind": "search",
                "seed": self.seed,
                "fingerprint": expectation.fingerprint,
                "platform": platform_name,
                "scenario": scenario_name,
                "donors": list(expectation.donors),
                "surrogate": expectation.surrogate,
                "objectives": expectation.objectives,
                "metrics": {
                    "evaluations": result.num_evaluations,
                    "front": len(result.pareto),
                    "best_latency_ms": result.best.latency_ms,
                    "best_energy_mj": result.best.energy_mj,
                },
                "payload": base64.b64encode(pickle.dumps(result)).decode("ascii"),
            }
        )

    def store_serving(
        self,
        key: ServingCellKey,
        expectation: CellExpectation,
        result,
    ) -> None:
        """Append one finished serving cell (same discipline as :meth:`store`)."""
        platform_name, family_name = key
        self._append(
            {
                "version": _CHECKPOINT_VERSION,
                "kind": "serving",
                "seed": self.seed,
                "fingerprint": expectation.fingerprint,
                "platform": platform_name,
                "family": family_name,
                "metrics": {
                    "members": len(result.members),
                    "p99_latency_ms": result.p99_latency_ms,
                    "served_p99_per_joule": result.served_p99_per_joule,
                },
                "payload": base64.b64encode(pickle.dumps(result)).decode("ascii"),
            }
        )

    def store_fleet(
        self,
        key: FleetCellKey,
        expectation: CellExpectation,
        result,
    ) -> None:
        """Append one finished fleet cell (same discipline as :meth:`store`)."""
        mix_name, family_name = key
        self._append(
            {
                "version": _CHECKPOINT_VERSION,
                "kind": "fleet",
                "seed": self.seed,
                "fingerprint": expectation.fingerprint,
                "mix": mix_name,
                "family": family_name,
                "metrics": {
                    "members": len(result.members),
                    "p99_latency_ms": result.p99_latency_ms,
                    "total_joules": result.total_joules,
                },
                "payload": base64.b64encode(pickle.dumps(result)).decode("ascii"),
            }
        )

    def _append(self, record: dict) -> None:
        # ensure_ascii=False keeps non-ASCII platform/family names readable in
        # the file; the explicit utf-8 handle makes that safe on any locale.
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(record, ensure_ascii=False) + "\n")
            stream.flush()
