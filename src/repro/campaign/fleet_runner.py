"""Fleet campaigns: which fleet mix serves the daily load at the fewest joules?

:func:`repro.campaign.serving_runner.run_serving_campaign` ranks *single
boards* under traffic families; this module asks the ROADMAP's fleet
question instead: **what mix of boards serves 1M requests/day at the lowest
total joules within the p99 SLO?**  :func:`run_fleet_campaign`

1. searches every platform appearing in any mix exactly like
   :func:`~repro.campaign.runner.run_campaign` (shared cache, checkpoints,
   cell parallelism, warm starts all apply),
2. distils one deployment per platform from its searched Pareto front
   according to each mix's *selection* mode (``"energy"`` / ``"latency"`` /
   ``"balanced"``),
3. simulates every :class:`FleetMix` — platform counts x front-point choice
   x router x autoscaler policy — under every member of every workload
   family via :func:`repro.serving.fleet.simulate_fleet`, and
4. aggregates each ``(mix, family)`` cell into a :class:`FleetCellResult`
   and ranks the mixes **by total joules among mixes inside the p99 SLO**
   (SLO violators sort after, by how badly they miss).

The ranking is deliberately lexicographic rather than a blended score: an
operator first discards mixes that blow the tail-latency budget, then buys
the cheapest joules among the survivors — a mix is never allowed to trade
SLO violations for energy.

Everything is seed-deterministic (member parameters, traffic seeds and
routing derive from values only), so serial, cell-parallel and
checkpoint-resumed sweeps render a byte-identical
:func:`repro.core.report.fleet_summary`.  Fleet cells checkpoint under
record kind ``fleet`` with the serving refresh discipline: editing a mix,
re-searching a front or changing the replay budget re-runs exactly the
affected cells.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..engine.cache import EvaluationCache
from ..engine.surrogate import SurrogateSettings
from ..errors import ConfigurationError
from ..nn.graph import NetworkGraph
from ..search.evaluation import EvaluatedConfig
from ..search.objectives import MeasuredObjectives, ObjectiveSet
from ..search.pareto import select_energy_oriented, select_latency_oriented
from ..serving.families import WorkloadFamily, member_traffic_seed, resolve_families
from ..serving.fleet import AutoscalerPolicy, FleetInstance, get_router, simulate_fleet
from ..serving.fleet_metrics import FleetMetrics, compute_fleet_metrics
from ..serving.policies import Deployment
from ..serving.result_cache import ServingResultCache
from ..soc.platform import Platform
from ..soc.presets import get_platform
from ..utils import check_positive
from .checkpoint import (
    CampaignCheckpoint,
    CellExpectation,
    FleetCellKey,
    campaign_fingerprint,
)
from .runner import CampaignResult, CampaignScenario, fan_out_cells, run_campaign
from .serving_runner import _front_fingerprint

__all__ = [
    "FleetMix",
    "FleetMemberOutcome",
    "FleetCellResult",
    "FleetCampaignResult",
    "select_front_point",
    "run_fleet_campaign",
]

logger = logging.getLogger(__name__)

#: Front-point selection modes a mix may ask for.
_SELECTIONS = ("energy", "latency", "balanced")


@dataclass(frozen=True)
class FleetMix:
    """One candidate fleet: platform counts + front point + router + scaling.

    Parameters
    ----------
    name:
        Label used in tables, rankings and checkpoint keys; unique within a
        campaign.
    counts:
        ``((platform, count), ...)`` — how many instances of each platform
        the fleet runs, in priority order (routers and the autoscaler prefer
        earlier instances).  Platforms are registry preset names or ready
        :class:`~repro.soc.platform.Platform` instances.
    selection:
        Which point of each platform's searched Pareto front the instances
        deploy: ``"energy"`` (Ours-E), ``"latency"`` (Ours-L) or
        ``"balanced"`` (smallest normalised latency x energy product).
    router:
        Registered router name (:func:`repro.serving.fleet.router_names`).
    autoscaler:
        Optional :class:`~repro.serving.fleet.AutoscalerPolicy`; ``None``
        keeps every instance powered for the whole replay.
    boot_ms:
        Cold-start latency of every instance in this mix.
    shed_backlog_ms:
        Optional load-shedding bound forwarded to
        :func:`repro.serving.fleet.simulate_fleet`: a request is dropped when
        every ready instance's estimated backlog exceeds it.  ``None`` (the
        default) never sheds, reproducing the historical behaviour — and the
        historical checkpoint fingerprints — byte-for-byte.  An undersized
        mix with an aggressive bound can shed *every* request of a hot
        member; such a cell aggregates to the degenerate
        :class:`~repro.serving.fleet_metrics.FleetMetrics` (zero completed,
        infinite tails) and ranks last instead of crashing the campaign.
    """

    name: str
    counts: Tuple[Tuple[Union[str, Platform], int], ...]
    selection: str = "energy"
    router: str = "least-loaded"
    autoscaler: Optional[AutoscalerPolicy] = None
    boot_ms: float = 250.0
    shed_backlog_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a fleet mix needs a non-empty name")
        if not self.counts:
            raise ConfigurationError(f"mix {self.name!r} declares no platforms")
        for _, count in self.counts:
            if int(count) < 1:
                raise ConfigurationError(
                    f"mix {self.name!r}: instance counts must be >= 1, got {count}"
                )
        if self.selection not in _SELECTIONS:
            raise ConfigurationError(
                f"mix {self.name!r}: unknown selection {self.selection!r}; "
                f"expected one of {list(_SELECTIONS)}"
            )
        get_router(self.router)  # validate the name before any search is spent
        check_positive(self.boot_ms, "boot_ms")
        if self.shed_backlog_ms is not None:
            check_positive(self.shed_backlog_ms, "shed_backlog_ms")

    @property
    def total_instances(self) -> int:
        """How many instances the mix fields in total."""
        return sum(int(count) for _, count in self.counts)


def select_front_point(
    front: Sequence[EvaluatedConfig], selection: str
) -> EvaluatedConfig:
    """The front member a mix's ``selection`` mode deploys.

    ``"energy"`` and ``"latency"`` reuse the paper's Ours-E / Ours-L
    selectors; ``"balanced"`` minimises the product of latency and energy,
    each normalised by the front's own minimum so neither unit dominates.
    Ties break deterministically on the selectors' own objectives.
    """
    if not front:
        raise ConfigurationError("cannot select a deployment from an empty front")
    if selection == "energy":
        return select_energy_oriented(list(front))
    if selection == "latency":
        return select_latency_oriented(list(front))
    if selection == "balanced":
        min_latency = min(item.latency_ms for item in front)
        min_energy = min(item.energy_mj for item in front)
        return min(
            front,
            key=lambda item: (
                (item.latency_ms / min_latency) * (item.energy_mj / min_energy),
                item.latency_ms,
                item.energy_mj,
            ),
        )
    raise ConfigurationError(
        f"unknown selection {selection!r}; expected one of {list(_SELECTIONS)}"
    )


@dataclass(frozen=True)
class FleetMemberOutcome:
    """One family member served by one fleet mix."""

    label: str
    traffic_seed: int
    metrics: FleetMetrics

    @property
    def joules_total(self) -> float:
        """Total fleet energy over the member's replay, in joules."""
        return self.metrics.total_energy_mj / 1000.0

    @property
    def joules_per_request(self) -> float:
        """Energy per served request (dynamic + idle amortised), in joules."""
        return self.metrics.energy_per_request_mj / 1000.0


@dataclass(frozen=True)
class FleetCellResult:
    """How one fleet mix served one workload family (all members aggregated).

    ``within_slo`` demands the SLO of *every* member — the worst member's
    p99 must stay inside ``p99_slo_ms`` and no member may drop requests —
    because a daily family's peak member is exactly where an undersized
    fleet fails.
    """

    mix_name: str
    family_name: str
    members: Tuple[FleetMemberOutcome, ...]
    p99_slo_ms: float

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("a fleet cell needs at least one member outcome")
        check_positive(self.p99_slo_ms, "p99_slo_ms")

    def _mean(self, metric: str) -> float:
        values = [float(getattr(outcome.metrics, metric)) for outcome in self.members]
        return sum(values) / len(values)

    @property
    def p99_latency_ms(self) -> float:
        """Mean of the members' pooled p99 latencies."""
        return self._mean("p99_latency_ms")

    @property
    def worst_p99_latency_ms(self) -> float:
        """The worst member's p99 — what the SLO is judged on."""
        return max(outcome.metrics.p99_latency_ms for outcome in self.members)

    @property
    def deadline_miss_rate(self) -> float:
        """Mean of the members' deadline-miss rates."""
        return self._mean("deadline_miss_rate")

    @property
    def drop_rate(self) -> float:
        """Mean of the members' drop rates."""
        return self._mean("drop_rate")

    @property
    def total_joules(self) -> float:
        """Mean total fleet energy per member replay (dynamic + idle), joules."""
        return sum(outcome.joules_total for outcome in self.members) / len(self.members)

    @property
    def joules_per_request(self) -> float:
        """Mean energy per served request across members, in joules."""
        return sum(outcome.joules_per_request for outcome in self.members) / len(
            self.members
        )

    @property
    def mean_active_instances(self) -> float:
        """Mean of the members' time-averaged powered-instance counts."""
        return self._mean("mean_active_instances")

    @property
    def within_slo(self) -> bool:
        """Whether every member met the p99 SLO without dropping requests."""
        return self.worst_p99_latency_ms <= self.p99_slo_ms and all(
            outcome.metrics.num_dropped == 0 for outcome in self.members
        )

    def daily_joules(self, requests_per_day: float = 1_000_000.0) -> float:
        """Projected joules to serve ``requests_per_day`` at this efficiency.

        The replay window is a scaled day (the family's diurnal period), so
        the per-request energy — which already amortises idle power and boot
        overheads over the window — extrapolates linearly.
        """
        check_positive(requests_per_day, "requests_per_day")
        return self.joules_per_request * requests_per_day

    def summary_row(self) -> dict:
        """Flat dictionary for :func:`repro.core.report.format_table`."""
        return {
            "family": self.family_name,
            "mix": self.mix_name,
            "members": len(self.members),
            "p99_ms": self.p99_latency_ms,
            "worst_p99_ms": self.worst_p99_latency_ms,
            "slo": "ok" if self.within_slo else "MISS",
            "miss_%": 100.0 * self.deadline_miss_rate,
            "J/replay": self.total_joules,
            "mJ/req": 1000.0 * self.joules_per_request,
            "MJ/day@1M": self.daily_joules() / 1e6,
            "mean_active": self.mean_active_instances,
        }


@dataclass(frozen=True)
class FleetCampaignResult:
    """Everything one fleet campaign produced.

    ``campaign`` is the underlying search campaign over the union of the
    mixes' platforms; ``cells`` hold one :class:`FleetCellResult` per
    ``(mix, family)`` pair in family-major order; ``deployments`` maps
    ``(platform, selection)`` to the distilled deployment the mixes field.
    """

    campaign: CampaignResult
    mixes: Tuple[FleetMix, ...]
    family_names: Tuple[str, ...]
    cells: Tuple[FleetCellResult, ...]
    deployments: Dict[Tuple[str, str], Deployment]
    members_per_family: int
    duration_ms: float
    p99_slo_ms: float
    seed: int
    _index: Optional[Dict[FleetCellKey, FleetCellResult]] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_index",
            {(cell.mix_name, cell.family_name): cell for cell in self.cells},
        )

    @property
    def network_name(self) -> str:
        """The mapped network's name."""
        return self.campaign.network_name

    @property
    def mix_names(self) -> Tuple[str, ...]:
        """Names of the swept mixes, in declaration order."""
        return tuple(mix.name for mix in self.mixes)

    def cell(self, mix: str, family: str) -> FleetCellResult:
        """The outcome of ``mix`` serving ``family``."""
        found = self._index.get((mix, family))
        if found is None:
            raise ConfigurationError(
                f"no fleet cell for mix {mix!r} / family {family!r}; "
                f"have mixes {list(self.mix_names)} and "
                f"families {list(self.family_names)}"
            )
        return found

    def ranking(self, family: str) -> List[FleetCellResult]:
        """Mix cells for ``family``: within-SLO by total joules, violators after.

        Within-SLO mixes sort by mean total joules ascending (cheapest daily
        energy first); mixes outside the SLO sort after them by their worst
        member p99 (least-bad violator first).  Ties break on the mix name
        so the ordering stays deterministic.
        """
        cells = [cell for cell in self.cells if cell.family_name == family]
        if not cells:
            raise ConfigurationError(
                f"no fleet cells for family {family!r}; "
                f"have families {list(self.family_names)}"
            )
        within = sorted(
            (cell for cell in cells if cell.within_slo),
            key=lambda cell: (cell.total_joules, cell.mix_name),
        )
        beyond = sorted(
            (cell for cell in cells if not cell.within_slo),
            key=lambda cell: (cell.worst_p99_latency_ms, cell.mix_name),
        )
        return within + beyond

    def best_mix(self, family: str) -> str:
        """The cheapest within-SLO mix for ``family``.

        Raises :class:`~repro.errors.ConfigurationError` when no swept mix
        meets the SLO — there is no honest winner to report then.
        """
        ranked = self.ranking(family)
        if not ranked[0].within_slo:
            raise ConfigurationError(
                f"no swept mix serves family {family!r} within the "
                f"{self.p99_slo_ms:.0f} ms p99 SLO; the closest is "
                f"{ranked[0].mix_name!r} at {ranked[0].worst_p99_latency_ms:.1f} ms"
            )
        return ranked[0].mix_name


@dataclass(frozen=True)
class _FleetCellTask:
    """Picklable description of one fleet cell, runnable in any process."""

    mix_name: str
    family: WorkloadFamily
    instances: Tuple[FleetInstance, ...]
    router: str
    autoscaler: Optional[AutoscalerPolicy]
    members: int
    duration_ms: float
    p99_slo_ms: float
    deadline_ms: Optional[float]
    seed: int
    shed_backlog_ms: Optional[float] = None


def _run_fleet_cell(task: _FleetCellTask) -> FleetCellResult:
    """Serve one family with one mix (worker-safe).

    Member scenarios, traffic seeds, routing and replays derive from the
    task contents alone, so the same task yields bit-identical outcomes in
    any process.
    """
    outcomes = []
    processes = task.family.expand(task.seed, task.members)
    labels = task.family.member_labels(task.members)
    for index, process in enumerate(processes):
        traffic_seed = member_traffic_seed(task.seed, task.family.name, index)
        result = simulate_fleet(
            task.instances,
            process,
            duration_ms=task.duration_ms,
            router=task.router,
            autoscaler=task.autoscaler,
            seed=traffic_seed,
            deadline_ms=task.deadline_ms,
            shed_backlog_ms=getattr(task, "shed_backlog_ms", None),
        )
        outcomes.append(
            FleetMemberOutcome(
                label=labels[index],
                traffic_seed=traffic_seed,
                metrics=compute_fleet_metrics(result),
            )
        )
    return FleetCellResult(
        mix_name=task.mix_name,
        family_name=task.family.name,
        members=tuple(outcomes),
        p99_slo_ms=task.p99_slo_ms,
    )


def _resolve_mixes(
    mixes: Sequence[FleetMix],
) -> Tuple[Tuple[FleetMix, ...], Dict[str, List[Tuple[Platform, int]]], Tuple[Platform, ...]]:
    """Validate mixes and resolve their platforms against the preset registry.

    Returns the mixes, each mix's resolved ``(platform, count)`` entries,
    and the union of distinct platforms in first-appearance order (the
    search grid).  Two platforms sharing a name must be the same board —
    content differing under one name would silently alias search cells.
    """
    if not mixes:
        raise ConfigurationError("run_fleet_campaign needs at least one mix")
    for mix in mixes:
        if not isinstance(mix, FleetMix):
            raise ConfigurationError(
                f"mixes must be FleetMix instances, got {type(mix).__name__}"
            )
    names = [mix.name for mix in mixes]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"fleet mixes must have distinct names, got {names}")
    union: Dict[str, Platform] = {}
    entries: Dict[str, List[Tuple[Platform, int]]] = {}
    for mix in mixes:
        resolved = []
        for spec, count in mix.counts:
            platform = spec if isinstance(spec, Platform) else get_platform(spec)
            known = union.get(platform.name)
            if known is None:
                union[platform.name] = platform
            elif known != platform:
                raise ConfigurationError(
                    f"two different platforms named {platform.name!r} appear in "
                    f"the mixes; rename one — same-named boards must be identical"
                )
            resolved.append((union[platform.name], int(count)))
        entries[mix.name] = resolved
    return tuple(mixes), entries, tuple(union.values())


def _mix_instances(
    mix: FleetMix,
    entries: Sequence[Tuple[Platform, int]],
    deployments: Dict[Tuple[str, str], Deployment],
) -> Tuple[FleetInstance, ...]:
    """The mix's fleet: ``count`` instances per entry, named deterministically."""
    instances = []
    per_platform: Counter = Counter()
    for platform, count in entries:
        deployment = deployments[(platform.name, mix.selection)]
        for _ in range(count):
            index = per_platform[platform.name]
            per_platform[platform.name] += 1
            instances.append(
                FleetInstance(
                    name=f"{platform.name}-{index}",
                    platform=platform,
                    deployment=deployment,
                    boot_ms=mix.boot_ms,
                )
            )
    return tuple(instances)


def run_fleet_campaign(
    network: NetworkGraph,
    mixes: Sequence[FleetMix],
    families: Optional[Sequence[Union[str, WorkloadFamily]]] = None,
    members_per_family: int = 2,
    duration_ms: float = 1500.0,
    p99_slo_ms: float = 100.0,
    deadline_ms: Optional[float] = None,
    scenario: Optional[CampaignScenario] = None,
    strategy: str = "evolutionary",
    backend: Optional[str] = None,
    n_workers: Optional[int] = None,
    cache: Union[EvaluationCache, str, Path, None] = None,
    generations: int = 10,
    population_size: int = 16,
    num_stages: Optional[int] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    reorder_channels: bool = True,
    validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
    seed: int = 0,
    checkpoint_dir: Union[str, Path, None] = None,
    cell_workers: Optional[int] = None,
    warm_start: bool = False,
    surrogate: Optional[SurrogateSettings] = None,
    objectives: Optional[ObjectiveSet] = None,
    measured_objectives: Optional[MeasuredObjectives] = None,
    serving_cache: Union[ServingResultCache, str, Path, None] = None,
) -> FleetCampaignResult:
    """Search the mixes' platforms, then sweep fleet mixes over families.

    Parameters
    ----------
    network:
        The network every instance serves.
    mixes:
        The fleet mixes to sweep (see :class:`FleetMix`).
    families:
        Workload families shared by the whole fleet: registry names and/or
        ready :class:`~repro.serving.families.WorkloadFamily` instances;
        ``None`` sweeps :func:`~repro.serving.families.default_families`.
    members_per_family:
        How many seeded member scenarios each family expands into.
    duration_ms:
        Replay window per member scenario (a scaled "day" for diurnal
        families).
    p99_slo_ms:
        The tail-latency budget the ranking is gated on: a mix only
        competes on joules while every member's pooled p99 stays inside it.
    deadline_ms:
        Default relative deadline applied during replays; families whose
        processes carry their own deadlines override it per request.
    scenario:
        Optional search scenario for the underlying platform campaign.
    strategy, backend, n_workers, cache, generations, population_size,
    num_stages, accuracy_model, reorder_channels, validation_samples, seed,
    checkpoint_dir, cell_workers, warm_start, surrogate, objectives:
        Forwarded to :func:`~repro.campaign.runner.run_campaign` for the
        search over the union of the mixes' platforms.  ``objectives``
        additionally enters every fleet-cell fingerprint, so a changed
        :class:`~repro.search.objectives.ObjectiveSet` re-runs the affected
        cells.  ``checkpoint_dir``
        additionally persists every finished *fleet* cell (record kind
        ``fleet``): an interrupted sweep resumes where it stopped, and a
        cell whose mix definition, family, replay budget or deployed fronts
        changed is re-run instead of restored.  ``cell_workers`` fans
        independent fleet cells over a process pool with a deterministic
        merge, so serial == cell-parallel == kill-and-resume byte for byte.
    measured_objectives:
        Optional :class:`~repro.search.objectives.MeasuredObjectives` factory
        (mutually exclusive with ``objectives``): every platform's search
        cell binds it at fan-out time, so the fronts the mixes deploy were
        selected under *measured* serving behaviour.  The bound per-platform
        descriptors of every platform a mix fields enter that mix's cell
        fingerprints, so a changed recipe re-runs exactly the affected
        cells.
    serving_cache:
        Shared :class:`~repro.serving.result_cache.ServingResultCache`
        (instance or JSONL path) behind the measured searches; defaults to a
        fresh in-memory cache when ``measured_objectives`` is given.
    """
    mix_objs, mix_entries, platform_objs = _resolve_mixes(mixes)
    family_objs = resolve_families(families)
    if int(members_per_family) < 1:
        raise ConfigurationError(
            f"members_per_family must be >= 1, got {members_per_family}"
        )
    members = int(members_per_family)
    check_positive(duration_ms, "duration_ms")
    check_positive(p99_slo_ms, "p99_slo_ms")

    shared_serving: Optional[ServingResultCache] = None
    if isinstance(serving_cache, ServingResultCache):
        shared_serving = serving_cache
    elif serving_cache is not None:
        shared_serving = ServingResultCache(path=serving_cache)
    elif measured_objectives is not None:
        shared_serving = ServingResultCache()

    campaign = run_campaign(
        network,
        platform_objs,
        scenarios=None if scenario is None else [scenario],
        strategy=strategy,
        backend=backend,
        n_workers=n_workers,
        cache=cache,
        generations=generations,
        population_size=population_size,
        num_stages=num_stages,
        accuracy_model=accuracy_model,
        reorder_channels=reorder_channels,
        validation_samples=validation_samples,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        cell_workers=cell_workers,
        warm_start=warm_start,
        surrogate=surrogate,
        objectives=objectives,
        measured_objectives=measured_objectives,
        serving_cache=shared_serving,
    )
    scenario_name = campaign.scenario_names[0]
    fronts = {
        platform.name: campaign.front(platform.name, scenario_name)
        for platform in platform_objs
    }
    front_fingerprints = {
        name: _front_fingerprint(front) for name, front in fronts.items()
    }

    # One distilled deployment per (platform, selection) actually used by a
    # mix — named deterministically so traces and tables read cleanly.
    deployments: Dict[Tuple[str, str], Deployment] = {}
    for mix in mix_objs:
        for platform, _ in mix_entries[mix.name]:
            key = (platform.name, mix.selection)
            if key not in deployments:
                deployments[key] = Deployment.from_evaluated(
                    select_front_point(fronts[platform.name], mix.selection),
                    name=f"{platform.name}:{mix.selection}",
                )

    # The fleet-cell fingerprint covers everything that shapes the cell: the
    # mix definition (counts by *content*, router, selection, autoscaler,
    # boot latency), the family, the replay budget and SLO, and the exact
    # fronts the mix deploys — so a re-searched front or an edited mix
    # refreshes precisely the affected cells.
    # Measured objective sets bind per platform; a mix's tag is the tuple of
    # bound descriptors of the platforms it fields, so a changed recipe
    # re-runs exactly the cells whose fronts it shaped.  Proxy sets keep the
    # shared campaign-wide descriptor, byte-identical to older checkpoints.
    measured_descriptors: Dict[str, str] = {}
    if measured_objectives is not None:
        measured_descriptors = {
            platform.name: measured_objectives.bind(platform, seed=int(seed)).describe()
            for platform in platform_objs
        }

    expectations: Dict[FleetCellKey, CellExpectation] = {}
    for family in family_objs:
        for mix in mix_objs:
            # The mix tuple only grows a shedding entry when the bound is
            # set, so fingerprints of never-shedding mixes — the only kind
            # that existed before the field — are byte-identical to the
            # checkpoints older runs wrote.
            mix_fields = [
                mix.name,
                tuple((platform, count) for platform, count in mix_entries[mix.name]),
                mix.selection,
                mix.router,
                mix.autoscaler,
                mix.boot_ms,
            ]
            if mix.shed_backlog_ms is not None:
                mix_fields.append(float(mix.shed_backlog_ms))
            if measured_objectives is not None:
                objectives_tag: object = tuple(
                    measured_descriptors[platform.name]
                    for platform, _ in mix_entries[mix.name]
                )
            else:
                objectives_tag = "" if objectives is None else objectives.describe()
            fingerprint = campaign_fingerprint(
                network=network.name,
                mix=tuple(mix_fields),
                family=family,
                members=members,
                duration_ms=float(duration_ms),
                p99_slo_ms=float(p99_slo_ms),
                deadline_ms=deadline_ms,
                fronts=tuple(
                    front_fingerprints[platform.name]
                    for platform, _ in mix_entries[mix.name]
                ),
                objectives=objectives_tag,
            )
            expectations[(mix.name, family.name)] = CellExpectation(
                fingerprint=fingerprint
            )

    checkpoint: Optional[CampaignCheckpoint] = None
    completed: Dict[FleetCellKey, FleetCellResult] = {}
    if checkpoint_dir is not None:
        checkpoint = CampaignCheckpoint(checkpoint_dir, seed=int(seed))
        completed = checkpoint.load_fleet(expectations)
        if completed:
            logger.info(
                "fleet campaign resume: %d of %d cells restored from %s",
                len(completed),
                len(expectations),
                checkpoint.path,
            )

    mix_by_name = {mix.name: mix for mix in mix_objs}
    family_by_name = {family.name: family for family in family_objs}

    def make_task(key: FleetCellKey) -> _FleetCellTask:
        mix_name, family_name = key
        mix = mix_by_name[mix_name]
        return _FleetCellTask(
            mix_name=mix_name,
            family=family_by_name[family_name],
            instances=_mix_instances(mix, mix_entries[mix_name], deployments),
            router=mix.router,
            autoscaler=mix.autoscaler,
            members=members,
            duration_ms=float(duration_ms),
            p99_slo_ms=float(p99_slo_ms),
            deadline_ms=deadline_ms,
            seed=int(seed),
            shed_backlog_ms=mix.shed_backlog_ms,
        )

    def finish_cell(key: FleetCellKey, result: FleetCellResult) -> None:
        completed[key] = result
        if checkpoint is not None:
            checkpoint.store_fleet(key, expectations[key], result)

    pending = [key for key in expectations if key not in completed]
    workers = 1 if cell_workers is None else int(cell_workers)
    fan_out_cells(pending, make_task, _run_fleet_cell, finish_cell, workers)

    cells = tuple(
        completed[(mix.name, family.name)]
        for family in family_objs
        for mix in mix_objs
    )
    return FleetCampaignResult(
        campaign=campaign,
        mixes=mix_objs,
        family_names=tuple(family.name for family in family_objs),
        cells=cells,
        deployments=deployments,
        members_per_family=members,
        duration_ms=float(duration_ms),
        p99_slo_ms=float(p99_slo_ms),
        seed=int(seed),
    )
