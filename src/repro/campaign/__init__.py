"""Cross-platform search campaigns over the platform zoo.

The paper's method is pitched as general over heterogeneous MPSoCs; this
subsystem actually exercises that generality.  It fans the mapping search
out across a grid of calibrated platforms (:mod:`repro.soc.presets`) and
search scenarios, then quantifies how platform-specific the searched
mappings are:

* :mod:`repro.campaign.runner` -- :func:`run_campaign`, the grid driver
  producing per-platform Pareto fronts, the portability matrix and optional
  under-traffic re-rankings,
* :mod:`repro.campaign.portability` -- translating a mapping searched on
  one platform into another platform's unit/DVFS vocabulary and scoring the
  transfer.

Surfaced on the facade as :meth:`repro.core.framework.MapAndConquer.campaign`
and rendered by :func:`repro.core.report.campaign_table` /
:func:`repro.core.report.campaign_summary`.
"""

from .portability import count_surviving_on_front, translate_config
from .runner import (
    CampaignCell,
    CampaignResult,
    CampaignScenario,
    PortabilityEntry,
    run_campaign,
)

__all__ = [
    "CampaignScenario",
    "CampaignCell",
    "PortabilityEntry",
    "CampaignResult",
    "run_campaign",
    "translate_config",
    "count_surviving_on_front",
]
