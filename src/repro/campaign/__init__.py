"""Cross-platform search campaigns over the platform zoo.

The paper's method is pitched as general over heterogeneous MPSoCs; this
subsystem actually exercises that generality.  It fans the mapping search
out across a grid of calibrated platforms (:mod:`repro.soc.presets`) and
search scenarios, then quantifies how platform-specific the searched
mappings are:

* :mod:`repro.campaign.runner` -- :func:`run_campaign`, the grid driver
  producing per-platform Pareto fronts, the portability matrix and optional
  under-traffic re-rankings; resumable (``checkpoint_dir=``), cell-parallel
  (``cell_workers=``) and transfer-aware (``warm_start=True``),
* :mod:`repro.campaign.checkpoint` -- persistent per-cell checkpoints with
  seed/fingerprint safety so interrupted grids restart where they stopped,
* :mod:`repro.campaign.portability` -- translating a mapping searched on
  one platform into another platform's unit/DVFS vocabulary and scoring the
  transfer (or seeding a warm start with it),
* :mod:`repro.campaign.serving_runner` -- :func:`run_serving_campaign`, the
  serving layer on top: every front deployed under every member of every
  workload family (:mod:`repro.serving.families`) and the platforms ranked
  by served-p99-per-joule — "which platform should serve this traffic?",
* :mod:`repro.campaign.fleet_runner` -- :func:`run_fleet_campaign`, the
  fleet layer above that: heterogeneous fleet *mixes* (platform counts x
  front-point choice x router x autoscaler, :mod:`repro.serving.fleet`)
  swept under daily workload families and ranked by served joules within a
  p99 SLO — "which fleet should serve this traffic?".

Surfaced on the facade as :meth:`repro.core.framework.MapAndConquer.campaign`
/ :meth:`~repro.core.framework.MapAndConquer.serving_campaign` /
:meth:`~repro.core.framework.MapAndConquer.fleet_campaign` and rendered
by :func:`repro.core.report.campaign_summary` /
:func:`repro.core.report.traffic_ranking_summary` /
:func:`repro.core.report.fleet_summary`.
"""

from .checkpoint import CampaignCheckpoint, CellExpectation, campaign_fingerprint
from .fleet_runner import (
    FleetCampaignResult,
    FleetCellResult,
    FleetMemberOutcome,
    FleetMix,
    run_fleet_campaign,
    select_front_point,
)
from .portability import count_surviving_on_front, translate_config, translate_front
from .runner import (
    CampaignCell,
    CampaignResult,
    CampaignScenario,
    PortabilityEntry,
    run_campaign,
)
from .serving_runner import (
    MemberOutcome,
    PolicyOutcome,
    ServingCampaignResult,
    ServingCellResult,
    run_serving_campaign,
)

__all__ = [
    "CampaignScenario",
    "CampaignCell",
    "PortabilityEntry",
    "CampaignResult",
    "run_campaign",
    "translate_config",
    "translate_front",
    "count_surviving_on_front",
    "CampaignCheckpoint",
    "CellExpectation",
    "campaign_fingerprint",
    "MemberOutcome",
    "PolicyOutcome",
    "ServingCellResult",
    "ServingCampaignResult",
    "run_serving_campaign",
    "FleetMix",
    "FleetMemberOutcome",
    "FleetCellResult",
    "FleetCampaignResult",
    "select_front_point",
    "run_fleet_campaign",
]
